//! The data plane proper: ingress, primitive dispatch, egress, memory
//! management and audit-record generation.
//!
//! One [`DataPlane`] instance corresponds to the StreamBox-TZ trusted
//! application loaded into the secure world of one platform. It is `Sync`:
//! many control-plane worker threads invoke primitives concurrently (each
//! through its own SMC session), sharing one cache-coherent TEE address
//! space exactly as in the paper. Internally, the record store is read-mostly
//! (`RwLock` around `Arc`-shared arrays: lookups clone the `Arc`, drop the
//! lock and compute without holding it), while the allocator, reference
//! tables and audit logs take short critical sections.
//!
//! # Multi-tenancy
//!
//! The data plane serves many independent pipelines (**tenants**) over the
//! one TEE. Each tenant owns a private namespace inside the enclave:
//!
//! * a per-tenant **opaque-reference table** — a reference minted for one
//!   tenant's control plane does not resolve under any other tenant, so a
//!   compromised control plane cannot invoke primitives on another tenant's
//!   state even if it learns the raw reference value;
//! * a per-tenant **audit log** whose segments are tagged with (and signed
//!   under) the tenant id, so the cloud verifies each trail independently;
//! * a per-tenant **memory quota** enforced through the uArray allocator's
//!   owner accounting — a tenant that fills its quota is rejected without
//!   disturbing the others' committed memory.
//!
//! Single-pipeline deployments (the paper's setting) run everything under
//! [`TenantId::DEFAULT`], which is registered unconstrained at load time;
//! the original single-tenant entry points delegate to it.

use crate::egress::EgressMessage;
use crate::error::DataPlaneError;
use crate::opaque::{OpaqueRef, RefTable};
use crate::parallel::{lane_plan, IngestPool, WIRE_CHUNK};
use crate::params::{InvokeOutput, PrimitiveParams};
use crate::snapshot::{
    seal_snapshot, unseal_snapshot, CheckpointManifest, RestoredTenant, RestoredWindow,
    SealedSnapshot, SnapshotPlaintext, SnapshotWindow,
};
use crate::stats::{DataPlaneStats, InvocationBreakdown};
use crate::store::StoredData;
use parking_lot::{Mutex, RwLock};
use sbt_attest::{AuditLog, AuditRecord, DataRef, DepartureReason, LogSegment, UArrayRef};
use sbt_crypto::{AesCtr, Key128, KeySet, MasterSecret, Nonce, SigningKey, TenantKeychain};
use sbt_primitives as prim;
use sbt_telemetry::{decrypt_span_payload, LatencyKind, MetricsRegistry, SpanKind};
use sbt_types::{Event, KeyValue, PowerEvent, PrimitiveKind, TenantId, Watermark, WindowId};
use sbt_tz::{Platform, WorldTracker};
use sbt_uarray::{
    Allocator, AllocatorConfig, ConsumptionHint, DisjointWriter, HintSet, MemoryReport, TeePager,
    UArrayId, UArrayState, PAGE_SIZE,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Configuration of a data plane instance.
///
/// No raw key material appears here: every tenant's source, cloud and
/// signing keys are derived on demand from the platform's [`MasterSecret`]
/// per `(tenant, epoch)`, so a leaked configuration exposes only what the
/// master secret protects, and per-tenant keys never need to be plumbed.
#[derive(Clone)]
pub struct DataPlaneConfig {
    /// The platform master secret every per-tenant key set is derived from.
    pub master: MasterSecret,
    /// Allocator configuration (placement policy, reservation size).
    pub allocator: AllocatorConfig,
    /// Flush the audit log every this many records (in addition to flushes
    /// at egress).
    pub audit_flush_threshold: usize,
    /// Seed for the opaque-reference RNG (tests pass a fixed value).
    pub ref_seed: u64,
}

impl Default for DataPlaneConfig {
    fn default() -> Self {
        DataPlaneConfig {
            master: MasterSecret::demo(),
            allocator: AllocatorConfig::default(),
            audit_flush_threshold: 256,
            ref_seed: 0x5b7_57a7e,
        }
    }
}

/// Mutable bookkeeping guarded by one mutex (allocator + id minting +
/// committed-size map). These are all short, metadata-only operations.
struct AllocState {
    allocator: Allocator,
    next_id: UArrayId,
    /// committed bytes per live uArray (needed to release pages on reclaim,
    /// since the record storage itself is dropped via `Arc`).
    committed: HashMap<UArrayId, u64>,
}

/// The per-tenant namespace inside the TEE.
struct TenantState {
    /// The tenant's private opaque-reference table.
    refs: RefTable,
    /// The tenant's current-epoch key set (source decrypt, cloud encrypt,
    /// trail signing). Replaced wholesale on rekey.
    keys: KeySet,
    /// The tenant's audit log (segments tagged with the tenant and epoch,
    /// signed under the epoch's derived key).
    audit: AuditLog,
    /// Flushed-but-undrained segments.
    segments: Vec<LogSegment>,
    /// Egress sequence counter of the tenant's result stream.
    egress_seq: u64,
    /// Events the tenant has ingested.
    events_ingested: u64,
    /// Plaintext bytes the tenant has ingested.
    bytes_ingested: u64,
    /// Monotone checkpoint counter (the next snapshot's `ckpt_seq`).
    next_ckpt_seq: u64,
    /// Key epoch of the tenant's most recent sealed checkpoint.
    last_ckpt_epoch: Option<u32>,
    /// Epoch-retirement horizon: epochs below this are retired — excluded
    /// from the tenant's verifier keychain and refused at restore.
    retired_before: u32,
}

/// What [`DataPlane::deregister_tenant`] hands back: the tenant's final
/// trail and an accounting of everything the teardown reclaimed.
pub struct TenantTeardown {
    /// The departed tenant.
    pub tenant: TenantId,
    /// Why it left (also recorded in the trail's final record).
    pub reason: DepartureReason,
    /// The key epoch the tenant departed under.
    pub final_epoch: u32,
    /// The remaining audit segments, ending with the departure record. The
    /// cloud appends these to whatever it already drained and verifies the
    /// whole trail under the tenant's keychain.
    pub segments: Vec<LogSegment>,
    /// Secure-memory bytes freed by the one-pass owner teardown.
    pub reclaimed_bytes: u64,
    /// Opaque references revoked with the tenant's namespace.
    pub refs_revoked: usize,
}

/// Point-in-time memory accounting of one tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantMemory {
    /// Bytes currently charged to the tenant.
    pub used_bytes: u64,
    /// The tenant's quota, or `None` when unconstrained.
    pub quota_bytes: Option<u64>,
}

impl TenantMemory {
    /// Whether the tenant is near its quota (≥ 80 %, mirroring the global
    /// backpressure threshold): its sources should slow down.
    pub fn under_pressure(&self) -> bool {
        match self.quota_bytes {
            Some(quota) => self.used_bytes >= quota - quota / 5,
            None => false,
        }
    }
}

/// The StreamBox-TZ trusted data plane.
pub struct DataPlane {
    platform: Arc<Platform>,
    config: DataPlaneConfig,
    pager: TeePager,
    store: RwLock<HashMap<UArrayId, Arc<StoredData>>>,
    tenants: RwLock<HashMap<TenantId, Arc<Mutex<TenantState>>>>,
    alloc: Mutex<AllocState>,
    stats: Arc<DataPlaneStats>,
    /// Unified observability: span tracer, per-tenant latency histograms,
    /// counter registry, flight recorder. Disabled by default (hot paths
    /// pay one relaxed atomic load).
    telemetry: Arc<MetricsRegistry>,
    /// Worker pool lent by the control plane for parallel in-enclave ingest
    /// (lane decrypt/parse). `None` keeps ingest serial.
    ingest_pool: RwLock<Option<Arc<dyn IngestPool>>>,
    /// Recycled lane buffers for [`DisjointWriter`]: each grows once to its
    /// high-water capacity, so steady-state parallel ingest allocates
    /// nothing beyond the destination extent.
    lane_buffers: Mutex<Vec<Vec<Event>>>,
    start: Instant,
}

impl DataPlane {
    /// Load the data plane onto a platform (the `Initialize` entry function).
    /// The default tenant is registered unconstrained, so single-pipeline
    /// deployments work without any tenant management.
    pub fn new(platform: Arc<Platform>, config: DataPlaneConfig) -> Arc<Self> {
        let pager = TeePager::new(
            platform.secure_mem().clone(),
            platform.stats().clone(),
            *platform.cost(),
        );
        let stats = Arc::new(DataPlaneStats::new());
        let telemetry = Arc::new(MetricsRegistry::new());
        // Every layer below the control plane reports into this registry:
        // the platform's TZ counters, the plane's own stats, and (via the
        // installed tracer) SMC world-switch spans.
        telemetry.register_source(platform.stats());
        telemetry.register_source(&stats);
        platform.smc().install_tracer(telemetry.tracer().clone());
        let dp = DataPlane {
            pager,
            store: RwLock::new(HashMap::new()),
            tenants: RwLock::new(HashMap::new()),
            alloc: Mutex::new(AllocState {
                allocator: Allocator::new(config.allocator),
                next_id: UArrayId(0),
                committed: HashMap::new(),
            }),
            stats,
            telemetry,
            ingest_pool: RwLock::new(None),
            lane_buffers: Mutex::new(Vec::new()),
            start: Instant::now(),
            config,
            platform,
        };
        dp.register_tenant(TenantId::DEFAULT, None).expect("default tenant registers once");
        Arc::new(dp)
    }

    /// Register a tenant with an optional TEE memory quota in bytes
    /// (`None` = unconstrained). The tenant's epoch-0 key set is derived
    /// from the platform master secret. Fails if the tenant already exists.
    pub fn register_tenant(
        &self,
        tenant: TenantId,
        quota_bytes: Option<u64>,
    ) -> Result<(), DataPlaneError> {
        {
            let mut tenants = self.tenants.write();
            if tenants.contains_key(&tenant) {
                return Err(DataPlaneError::BadArguments("tenant already registered"));
            }
            // Distinct per-tenant RNG streams for the reference namespaces.
            let seed = self
                .config
                .ref_seed
                .wrapping_add((tenant.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let keys = self.config.master.tenant_keys(tenant.0, 0);
            tenants.insert(
                tenant,
                Arc::new(Mutex::new(TenantState {
                    refs: RefTable::new(seed),
                    audit: AuditLog::for_tenant(
                        keys.signing.clone(),
                        self.config.audit_flush_threshold,
                        tenant,
                    ),
                    keys,
                    segments: Vec::new(),
                    egress_seq: 0,
                    events_ingested: 0,
                    bytes_ingested: 0,
                    next_ckpt_seq: 0,
                    last_ckpt_epoch: None,
                    retired_before: 0,
                })),
            );
        }
        if let Some(quota) = quota_bytes {
            self.alloc.lock().allocator.set_owner_quota(tenant.owner_tag(), quota);
        }
        // Pre-create the tenant's latency histograms so the ingest hot
        // path never takes the registry's write lock.
        self.telemetry.register_tenant(tenant.0);
        Ok(())
    }

    /// Replace (or install) a tenant's TEE memory quota. `None` makes the
    /// tenant unconstrained. Usage above a shrunken quota is not evicted;
    /// further charges simply fail until the tenant's usage drops.
    pub fn set_tenant_quota(
        &self,
        tenant: TenantId,
        quota_bytes: Option<u64>,
    ) -> Result<(), DataPlaneError> {
        self.tenant_state(tenant)?;
        let mut alloc = self.alloc.lock();
        match quota_bytes {
            Some(bytes) => alloc.allocator.set_owner_quota(tenant.owner_tag(), bytes),
            None => alloc.allocator.clear_owner_quota(tenant.owner_tag()),
        }
        Ok(())
    }

    /// Rotate a tenant's key material to the next epoch. Records appended
    /// before the rotation flush as the old epoch's final segment; the new
    /// epoch opens with a [`AuditRecord::Rekey`] record. Other tenants are
    /// untouched. Returns the new epoch.
    pub fn rekey_tenant(&self, tenant: TenantId) -> Result<u32, DataPlaneError> {
        let ts = self.tenant_state(tenant)?;
        let mut t = ts.lock();
        let next_epoch = t.keys.epoch + 1;
        t.keys = self.config.master.tenant_keys(tenant.0, next_epoch);
        let signing = t.keys.signing.clone();
        if let Some(seg) = t.audit.rekey(signing, next_epoch) {
            t.segments.push(seg);
        }
        let record = AuditRecord::Rekey { ts_ms: self.now_ms(), epoch: next_epoch };
        if let Some(seg) = t.audit.append(record) {
            t.segments.push(seg);
        }
        Ok(next_epoch)
    }

    /// A tenant's current key epoch.
    pub fn tenant_epoch(&self, tenant: TenantId) -> Result<u32, DataPlaneError> {
        Ok(self.tenant_state(tenant)?.lock().keys.epoch)
    }

    /// The cloud-side keychain of a tenant: per-epoch verifier keys (cloud
    /// decrypt + trail signing) covering every epoch through the current
    /// one. This is all trail verification and result decryption need — the
    /// source-link keys are not included.
    pub fn verifier_keys(&self, tenant: TenantId) -> Result<TenantKeychain, DataPlaneError> {
        let ts = self.tenant_state(tenant)?;
        let (epoch, horizon) = {
            let t = ts.lock();
            (t.keys.epoch, t.retired_before)
        };
        let mut chain = self.config.master.keychain(tenant.0, epoch);
        if horizon > 0 {
            chain.retire_before(horizon);
        }
        Ok(chain)
    }

    /// Tear a tenant down: append its departure record, flush and hand back
    /// its remaining trail, revoke every opaque reference, free every uArray
    /// charged to it in one allocator pass, and release the pages. The
    /// default tenant cannot be deregistered.
    pub fn deregister_tenant(
        &self,
        tenant: TenantId,
        reason: DepartureReason,
    ) -> Result<TenantTeardown, DataPlaneError> {
        if tenant == TenantId::DEFAULT {
            return Err(DataPlaneError::BadArguments("the default tenant cannot depart"));
        }
        // Remove from the map first: new calls fail with UnknownTenant from
        // here on; only calls already holding the state Arc can still race.
        let ts = self.tenants.write().remove(&tenant).ok_or(DataPlaneError::UnknownTenant)?;
        let (segments, final_epoch, refs_revoked) = {
            let mut t = ts.lock();
            let refs_revoked = t.refs.live_count();
            let record = AuditRecord::Departure { ts_ms: self.now_ms(), reason };
            if let Some(seg) = t.audit.append(record) {
                t.segments.push(seg);
            }
            if let Some(seg) = t.audit.flush() {
                t.segments.push(seg);
            }
            (std::mem::take(&mut t.segments), t.keys.epoch, refs_revoked)
        };
        let torn = {
            let mut alloc = self.alloc.lock();
            // Seal before sweeping: an in-flight invocation that raced past
            // the tenant-map removal can no longer charge new arrays to the
            // departed owner — it fails its quota check and unpublishes its
            // own store entries and pages (commits are published before they
            // charge, so anything this sweep finds charged is in the store).
            alloc.allocator.set_owner_quota(tenant.owner_tag(), 0);
            let torn = alloc.allocator.release_owner(tenant.owner_tag());
            for (id, _) in &torn.arrays {
                alloc.committed.remove(id);
            }
            torn
        };
        if !torn.arrays.is_empty() {
            let mut store = self.store.write();
            for (id, bytes) in &torn.arrays {
                store.remove(id);
                self.pager.release_pages(bytes / PAGE_SIZE);
            }
        }
        // Purge the tenant's observability state along with its namespace:
        // histogram rows, the checkpoint gauge, and the flight-recorder ring
        // all key on the tenant id, which deployments recycle.
        self.telemetry.deregister_tenant(tenant.0);
        Ok(TenantTeardown {
            tenant,
            reason,
            final_epoch,
            segments,
            reclaimed_bytes: torn.reclaimed_bytes,
            refs_revoked,
        })
    }

    // ----- crash recovery: checkpoint / restore / epoch retirement -------

    /// Seal a checkpoint of one tenant's streaming state.
    ///
    /// The control plane supplies a [`CheckpointManifest`] captured at a
    /// quiescent point (no window mid-fire, no ingest in flight for this
    /// tenant); the data plane materializes every referenced partition,
    /// serializes the `SBTC` plaintext, chains its hash into the signed
    /// trail as an [`AuditRecord::Checkpoint`] record (flushed as its own
    /// segment, so the recorded audit cursor is exactly where a restored
    /// log resumes), and seals it under keys derived per
    /// `(tenant, epoch, ckpt_seq)`. Only the sealed container leaves the
    /// enclave.
    pub fn checkpoint_tenant(
        &self,
        tenant: TenantId,
        manifest: &CheckpointManifest,
    ) -> Result<SealedSnapshot, DataPlaneError> {
        WorldTracker::assert_secure("DataPlane::checkpoint");
        let span_start = self.telemetry.tracer().start();
        let ts = self.tenant_state(tenant)?;
        // Materialize the windowed state before taking the tenant lock
        // (`lookup` takes it per reference). The quiescent-point contract
        // means nothing mutates these windows concurrently.
        let mut windows = Vec::with_capacity(manifest.windows.len());
        for w in &manifest.windows {
            let mut sides: [Vec<Vec<Event>>; 2] = [Vec::new(), Vec::new()];
            for (side, refs) in sides.iter_mut().zip([&w.left, &w.right]) {
                for r in refs {
                    let (_, data) = self.lookup(&ts, *r)?;
                    side.push(data.as_events()?.to_vec());
                }
            }
            let [left, right] = sides;
            windows.push(SnapshotWindow { win_no: w.win_no, left, right });
        }
        let next_uarray_id = self.alloc.lock().next_id.0;
        let sealed = {
            let mut t = ts.lock();
            // Flush whatever is pending so the checkpoint record becomes a
            // segment of its own: the cursor names the segment right after
            // it, which is where the resumed log continues.
            if let Some(seg) = t.audit.flush() {
                t.segments.push(seg);
            }
            let audit_cursor = t.audit.next_seq() + 1;
            let ckpt_seq = t.next_ckpt_seq;
            let epoch = t.keys.epoch;
            let plain = SnapshotPlaintext {
                tenant: tenant.0,
                ckpt_seq,
                epoch,
                retired_before: t.retired_before,
                audit_cursor,
                egress_seq: t.egress_seq,
                events_ingested: t.events_ingested,
                bytes_ingested: t.bytes_ingested,
                left_watermark_ms: manifest.left_watermark_ms,
                right_watermark_ms: manifest.right_watermark_ms,
                next_unexecuted: manifest.next_unexecuted,
                next_uarray_id,
                windows: std::mem::take(&mut windows),
            };
            let (sealed, hash) = seal_snapshot(&self.config.master, &plain);
            let record = AuditRecord::Checkpoint {
                ts_ms: self.now_ms(),
                seq: ckpt_seq,
                resumed: false,
                hash,
            };
            self.stats.record_audit(1);
            if let Some(seg) = t.audit.append(record) {
                t.segments.push(seg);
            }
            if let Some(seg) = t.audit.flush() {
                t.segments.push(seg);
            }
            t.next_ckpt_seq = ckpt_seq + 1;
            t.last_ckpt_epoch = Some(epoch);
            sealed
        };
        self.telemetry.note_checkpoint(tenant.0);
        self.telemetry.tracer().record(
            SpanKind::Checkpoint,
            tenant.0,
            span_start,
            sealed.len() as u64,
        );
        Ok(sealed)
    }

    /// Restore a tenant from a sealed checkpoint into this (fresh) plane.
    ///
    /// Fails closed: the snapshot must authenticate, parse, belong to
    /// `tenant`, and be sealed under an epoch at or above both `min_epoch`
    /// (the caller's retirement floor, e.g. from vault metadata) and the
    /// horizon recorded in the snapshot itself. The tenant's audit log
    /// resumes at the recorded cursor, opening with the matching
    /// `resumed` checkpoint record so the cloud can stitch the suffix onto
    /// its retained prefix and detect rollback; every restored partition is
    /// re-committed to secure memory and re-announced to the trail as an
    /// ordinary ingress + windowing pair.
    ///
    /// A failed restore can leave the tenant partially registered (e.g. on
    /// quota rejection mid-recommit); callers must treat any error as fatal
    /// for this plane instance and discard it.
    pub fn restore_tenant(
        &self,
        tenant: TenantId,
        quota_bytes: Option<u64>,
        sealed: &SealedSnapshot,
        min_epoch: u32,
    ) -> Result<RestoredTenant, DataPlaneError> {
        WorldTracker::assert_secure("DataPlane::restore");
        let span_start = self.telemetry.tracer().start();
        if sealed.tenant != tenant.0 {
            return Err(DataPlaneError::SnapshotRejected("snapshot belongs to another tenant"));
        }
        let (plain, hash) = unseal_snapshot(&self.config.master, sealed)?;
        let horizon = min_epoch.max(plain.retired_before);
        if plain.epoch < horizon {
            return Err(DataPlaneError::RetiredEpoch { epoch: plain.epoch, horizon });
        }
        {
            let mut tenants = self.tenants.write();
            if tenants.contains_key(&tenant) {
                return Err(DataPlaneError::BadArguments("tenant already registered"));
            }
            let seed = self
                .config
                .ref_seed
                .wrapping_add((tenant.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let keys = self.config.master.tenant_keys(tenant.0, plain.epoch);
            let audit = AuditLog::resume(
                keys.signing.clone(),
                self.config.audit_flush_threshold,
                tenant,
                plain.epoch,
                plain.audit_cursor,
            );
            tenants.insert(
                tenant,
                Arc::new(Mutex::new(TenantState {
                    refs: RefTable::new(seed),
                    audit,
                    keys,
                    segments: Vec::new(),
                    egress_seq: plain.egress_seq,
                    events_ingested: plain.events_ingested,
                    bytes_ingested: plain.bytes_ingested,
                    next_ckpt_seq: plain.ckpt_seq + 1,
                    last_ckpt_epoch: Some(plain.epoch),
                    retired_before: horizon,
                })),
            );
        }
        if let Some(quota) = quota_bytes {
            self.alloc.lock().allocator.set_owner_quota(tenant.owner_tag(), quota);
        }
        self.telemetry.register_tenant(tenant.0);
        {
            // A fresh plane mints ids from zero; lift the floor past every
            // id the trail prefix can reference so the suffix never reuses
            // one in replay.
            let mut alloc = self.alloc.lock();
            if alloc.next_id.0 < plain.next_uarray_id {
                alloc.next_id = UArrayId(plain.next_uarray_id);
            }
        }
        let ts = self.tenant_state(tenant)?;
        // The resumed trail opens with the resumed-checkpoint record: same
        // sequence and hash as the sealed record the cloud already holds.
        self.append_audit(
            &ts,
            AuditRecord::Checkpoint {
                ts_ms: self.now_ms(),
                seq: plain.ckpt_seq,
                resumed: true,
                hash,
            },
        );
        // Re-commit every partition and re-announce it: the state re-enters
        // the TEE and is re-windowed, so replay sees an ordinary ingress +
        // windowing pair per array and rebuilds its lineage from there.
        let mut windows = Vec::with_capacity(plain.windows.len());
        let mut events_restored = 0u64;
        for w in &plain.windows {
            let mut restored =
                RestoredWindow { win_no: w.win_no, left: Vec::new(), right: Vec::new() };
            for (events_side, refs_side) in
                [(&w.left, &mut restored.left), (&w.right, &mut restored.right)]
            {
                for events in events_side.iter() {
                    events_restored += events.len() as u64;
                    let pre_id = self.next_id();
                    let data = StoredData::from_events(self.next_id(), events, &self.pager)?;
                    let (rid, opaque, _) = self.register_output(
                        tenant,
                        &ts,
                        data,
                        PrimitiveKind::Segment.code() as u64,
                        None,
                    )?;
                    self.append_audit(
                        &ts,
                        AuditRecord::Ingress {
                            ts_ms: self.now_ms(),
                            data: DataRef::UArray(UArrayRef(pre_id.0 as u32)),
                        },
                    );
                    self.append_audit(
                        &ts,
                        AuditRecord::Windowing {
                            ts_ms: self.now_ms(),
                            input: UArrayRef(pre_id.0 as u32),
                            win_no: w.win_no as u16,
                            output: UArrayRef(rid.0 as u32),
                        },
                    );
                    refs_side.push(opaque);
                }
            }
            windows.push(restored);
        }
        self.telemetry.note_checkpoint(tenant.0);
        self.telemetry.tracer().record(SpanKind::Restore, tenant.0, span_start, events_restored);
        Ok(RestoredTenant {
            tenant,
            ckpt_seq: plain.ckpt_seq,
            epoch: plain.epoch,
            left_watermark_ms: plain.left_watermark_ms,
            right_watermark_ms: plain.right_watermark_ms,
            next_unexecuted: plain.next_unexecuted,
            windows,
            events_restored,
        })
    }

    /// Retire a tenant's key epochs below `horizon` (forward secrecy):
    /// retired epochs disappear from [`DataPlane::verifier_keys`] and
    /// snapshots sealed under them are refused at restore. The horizon can
    /// only advance, never past the epoch of the latest sealed checkpoint
    /// (retiring it would make the tenant unrecoverable) and never past the
    /// current epoch. Returns the number of epochs newly retired.
    pub fn retire_epochs_before(
        &self,
        tenant: TenantId,
        horizon: u32,
    ) -> Result<usize, DataPlaneError> {
        let ts = self.tenant_state(tenant)?;
        let mut t = ts.lock();
        let ckpt_epoch =
            t.last_ckpt_epoch.ok_or(DataPlaneError::BadArguments("no checkpoint sealed yet"))?;
        if horizon > ckpt_epoch || horizon > t.keys.epoch {
            return Err(DataPlaneError::BadArguments("horizon beyond the checkpoint epoch"));
        }
        let newly = horizon.saturating_sub(t.retired_before);
        t.retired_before = t.retired_before.max(horizon);
        Ok(newly as usize)
    }

    /// A tenant's epoch-retirement horizon (0 = nothing retired).
    pub fn tenant_retired_before(&self, tenant: TenantId) -> Result<u32, DataPlaneError> {
        Ok(self.tenant_state(tenant)?.lock().retired_before)
    }

    /// The registered tenants, in ascending id order.
    pub fn tenants(&self) -> Vec<TenantId> {
        let mut ids: Vec<TenantId> = self.tenants.read().keys().copied().collect();
        ids.sort();
        ids
    }

    fn tenant_state(&self, tenant: TenantId) -> Result<Arc<Mutex<TenantState>>, DataPlaneError> {
        self.tenants.read().get(&tenant).cloned().ok_or(DataPlaneError::UnknownTenant)
    }

    /// Data-plane timestamp (milliseconds since initialization), as stamped
    /// on audit records.
    fn now_ms(&self) -> u32 {
        self.start.elapsed().as_millis() as u32
    }

    /// The platform this data plane runs on.
    pub fn platform(&self) -> &Arc<Platform> {
        &self.platform
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> &DataPlaneStats {
        &self.stats
    }

    /// The unified metrics registry (tracer, histograms, counter sources,
    /// flight recorder). One per data plane; enable with
    /// [`MetricsRegistry::set_enabled`] to start recording.
    pub fn telemetry(&self) -> &Arc<MetricsRegistry> {
        &self.telemetry
    }

    /// Current memory report from the allocator.
    pub fn memory_report(&self) -> MemoryReport {
        self.alloc.lock().allocator.report()
    }

    /// Memory accounting of one tenant: bytes charged and quota.
    pub fn tenant_memory(&self, tenant: TenantId) -> Result<TenantMemory, DataPlaneError> {
        self.tenant_state(tenant)?;
        let alloc = self.alloc.lock();
        Ok(TenantMemory {
            used_bytes: alloc.allocator.owner_used(tenant.owner_tag()),
            quota_bytes: alloc.allocator.owner_quota(tenant.owner_tag()),
        })
    }

    /// One tenant's ingest counters: `(events, plaintext bytes)`.
    pub fn tenant_ingest(&self, tenant: TenantId) -> Result<(u64, u64), DataPlaneError> {
        let ts = self.tenant_state(tenant)?;
        let t = ts.lock();
        Ok((t.events_ingested, t.bytes_ingested))
    }

    /// Roll back a tenant's ingest counters for a batch the control plane
    /// dropped after ingress (its windowing was rejected, e.g. by the
    /// tenant's quota): the events never reached windowed state, so they do
    /// not count as ingested. Platform-wide throughput stats are untouched
    /// (the decryption work really happened).
    pub fn uncount_ingest_for(&self, tenant: TenantId, events: u64, bytes: u64) {
        if let Ok(ts) = self.tenant_state(tenant) {
            let mut t = ts.lock();
            t.events_ingested = t.events_ingested.saturating_sub(events);
            t.bytes_ingested = t.bytes_ingested.saturating_sub(bytes);
        }
    }

    /// Whether the engine should apply backpressure to sources (platform-wide
    /// secure-memory pressure).
    pub fn under_memory_pressure(&self) -> bool {
        self.pager.under_pressure()
    }

    /// Whether one tenant's sources should slow down: near its own quota,
    /// independent of the other tenants.
    pub fn tenant_under_pressure(&self, tenant: TenantId) -> bool {
        self.tenant_memory(tenant).map(|m| m.under_pressure()).unwrap_or(false)
    }

    /// Number of live opaque references of the default tenant.
    pub fn live_refs(&self) -> usize {
        self.live_refs_for(TenantId::DEFAULT)
    }

    /// Number of live opaque references of one tenant.
    pub fn live_refs_for(&self, tenant: TenantId) -> usize {
        self.tenant_state(tenant).map(|t| t.lock().refs.live_count()).unwrap_or(0)
    }

    /// Drain the default tenant's audit segments (the engine uploads them).
    pub fn drain_audit_segments(&self) -> Vec<LogSegment> {
        self.drain_audit_segments_for(TenantId::DEFAULT).unwrap_or_default()
    }

    /// Drain one tenant's flushed audit segments.
    pub fn drain_audit_segments_for(
        &self,
        tenant: TenantId,
    ) -> Result<Vec<LogSegment>, DataPlaneError> {
        let ts = self.tenant_state(tenant)?;
        let mut t = ts.lock();
        let mut flushed = std::mem::take(&mut t.segments);
        if let Some(seg) = t.audit.flush() {
            flushed.push(seg);
        }
        Ok(flushed)
    }

    /// Compression statistics of the default tenant's audit log:
    /// (raw bytes, compressed bytes).
    pub fn audit_bytes(&self) -> (u64, u64) {
        let ts = match self.tenant_state(TenantId::DEFAULT) {
            Ok(ts) => ts,
            Err(_) => return (0, 0),
        };
        let t = ts.lock();
        (t.audit.total_raw_bytes(), t.audit.total_compressed_bytes())
    }

    // ----- internal helpers ---------------------------------------------

    /// Append one audit record to the tenant's log. This sits on every
    /// tenant's every-event path: the record's ports live inline
    /// (`PortList`) and `AuditLog::append` streams the fields straight into
    /// the segment's pre-laid-out column buffers, so the steady-state append
    /// performs no heap allocation and holds the tenant lock only for the
    /// column pushes (plus, once per threshold, the cheap seal-and-sign).
    fn append_audit(&self, ts: &Mutex<TenantState>, record: AuditRecord) {
        self.stats.record_audit(1);
        let mut t = ts.lock();
        if let Some(segment) = t.audit.append(record) {
            t.segments.push(segment);
        }
    }

    /// Place, quota-charge and commit `produced` under one allocator critical
    /// section (all-or-nothing with respect to the tenant's quota), then
    /// publish the arrays to the store. Returns per-output
    /// `(id, len, window, paging_nanos)`; references are minted by the
    /// caller. On quota rejection every produced array's pages are released
    /// and nothing is published.
    #[allow(clippy::type_complexity)]
    fn commit_outputs(
        &self,
        tenant: TenantId,
        producer: u64,
        produced: Vec<(StoredData, Option<WindowId>)>,
        hints: &HintSet,
    ) -> Result<Vec<(UArrayId, usize, Option<WindowId>, u64)>, DataPlaneError> {
        let owner = tenant.owner_tag();
        let total: u64 = produced.iter().map(|(d, _)| d.committed_bytes()).sum();
        // Publish to the store *before* charging: the owner-teardown sweep
        // in `deregister_tenant` discovers a tenant's arrays through their
        // quota charges, so any array it can see charged is already in the
        // store and gets removed by the sweep's store pass. A commit that
        // instead hits the post-teardown sealed quota (or a plain quota
        // rejection) unpublishes its own entries below. Either way no store
        // entry can outlive both passes.
        let mut out = Vec::with_capacity(produced.len());
        let mut metas = Vec::with_capacity(produced.len());
        {
            let mut store = self.store.write();
            for (data, window) in produced {
                out.push((data.id(), data.len(), window, data.paging_nanos()));
                metas.push((data.id(), data.committed_bytes()));
                store.insert(data.id(), Arc::new(data));
            }
        }
        let rejected = {
            let mut alloc = self.alloc.lock();
            if alloc.allocator.owner_would_exceed(owner, total) {
                true
            } else {
                for (i, (id, bytes)) in metas.iter().enumerate() {
                    alloc.allocator.place(*id, producer, hints.get(i));
                    alloc.allocator.update(*id, UArrayState::Produced, *bytes);
                    alloc
                        .allocator
                        .charge_owner(owner, *id, *bytes)
                        .expect("quota checked under the same allocator lock");
                    alloc.committed.insert(*id, *bytes);
                }
                false
            }
        };
        if rejected {
            let mut store = self.store.write();
            for (id, bytes) in &metas {
                store.remove(id);
                self.pager.release_pages(bytes / PAGE_SIZE);
            }
            return Err(DataPlaneError::QuotaExceeded);
        }
        Ok(out)
    }

    /// Convenience wrapper for single-output boundary paths (ingress).
    fn register_output(
        &self,
        tenant: TenantId,
        ts: &Mutex<TenantState>,
        data: StoredData,
        producer: u64,
        hint: Option<ConsumptionHint>,
    ) -> Result<(UArrayId, OpaqueRef, usize), DataPlaneError> {
        let mut hints = HintSet::none();
        hints.push(hint);
        let committed = self.commit_outputs(tenant, producer, vec![(data, None)], &hints)?;
        let (id, len, _, _) = committed[0];
        let opaque = ts.lock().refs.mint(id);
        Ok((id, opaque, len))
    }

    fn next_id(&self) -> UArrayId {
        let mut alloc = self.alloc.lock();
        let id = alloc.next_id;
        alloc.next_id = id.next();
        id
    }

    fn lookup(
        &self,
        ts: &Mutex<TenantState>,
        r: OpaqueRef,
    ) -> Result<(UArrayId, Arc<StoredData>), DataPlaneError> {
        let id = ts.lock().refs.resolve(r)?;
        let store = self.store.read();
        let data = store.get(&id).cloned().ok_or(DataPlaneError::InvalidReference)?;
        Ok((id, data))
    }

    // ----- ingress -------------------------------------------------------

    /// Ingest a batch on the default tenant.
    pub fn ingress(
        &self,
        payload: &[u8],
        encrypted: bool,
        is_power: bool,
        keystream_block: u32,
    ) -> Result<InvokeOutput, DataPlaneError> {
        self.ingress_for(TenantId::DEFAULT, payload, encrypted, is_power, keystream_block)
    }

    /// Ingest a batch of events whose bytes have arrived in the secure world
    /// (through trusted IO or copied in via the OS — that cost is charged by
    /// the engine through `sbt_tz::IoChannel`).
    ///
    /// `encrypted` payloads are decrypted with the source key; `is_power`
    /// selects the 16-byte power-event layout, which is projected onto the
    /// generic layout for the shared primitives.
    ///
    /// `keystream_block` is the CTR block offset at which this payload was
    /// encrypted by the source (the source advances it per batch).
    pub fn ingress_for(
        &self,
        tenant: TenantId,
        payload: &[u8],
        encrypted: bool,
        is_power: bool,
        keystream_block: u32,
    ) -> Result<InvokeOutput, DataPlaneError> {
        WorldTracker::assert_secure("DataPlane::ingress");
        let ingest_start = self.telemetry.tracer().start();
        let ts = self.tenant_state(tenant)?;
        // Wire-format check first: the payload either is whole events or the
        // batch is rejected before any secure memory moves.
        let record_bytes =
            if is_power { sbt_types::POWER_EVENT_BYTES } else { sbt_types::EVENT_BYTES };
        if !payload.len().is_multiple_of(record_bytes) {
            return Err(DataPlaneError::BadIngress(if is_power {
                "power payload not a whole event"
            } else {
                "payload not a whole event"
            }));
        }
        let n_events = payload.len() / record_bytes;
        // Cheap early quota check before decrypting and parsing: the batch
        // will commit its page-rounded destination size.
        let estimate = TeePager::pages_for((n_events * sbt_types::EVENT_BYTES) as u64) * PAGE_SIZE;
        if self.alloc.lock().allocator.owner_would_exceed(tenant.owner_tag(), estimate) {
            return Err(DataPlaneError::QuotaExceeded);
        }
        // Decrypt under the calling tenant's current-epoch source key: a
        // batch encrypted under another tenant's key (or a stale epoch)
        // decrypts to garbage values — the wire format is position-based, so
        // garbage still parses, just never into meaningful records.
        let ctr = if encrypted {
            let t = ts.lock();
            Some(AesCtr::new(&t.keys.source_key, &t.keys.source_nonce))
        } else {
            None
        };

        // Zero-copy ingest: the destination uArray is reserved first (pages
        // committed up front, all-or-nothing), then ciphertext is decrypted
        // through a fixed stack window directly into it. No staging heap
        // allocation of the payload on either path.
        //
        // WIRE_CHUNK (see `parallel`) is a multiple of both event layouts
        // (lcm(12,16) = 48) and of the AES block size, so every window holds
        // whole events and starts on a CTR block boundary.
        let decrypt_start = Instant::now();
        let id = self.next_id();
        let data = StoredData::events_exact(id, n_events, &self.pager, |dst| {
            let mut window = [0u8; WIRE_CHUNK];
            for (i, chunk) in payload.chunks(WIRE_CHUNK).enumerate() {
                let cleartext: &[u8] = match &ctr {
                    Some(ctr) => {
                        let block = keystream_block.wrapping_add((i * (WIRE_CHUNK / 16)) as u32);
                        ctr.apply_keystream_into(chunk, &mut window[..chunk.len()], block);
                        &window[..chunk.len()]
                    }
                    None => chunk,
                };
                if is_power {
                    for rec in cleartext.chunks_exact(sbt_types::POWER_EVENT_BYTES) {
                        // from_bytes only fails on short input; rec is whole.
                        dst.push(PowerEvent::from_bytes(rec).unwrap().to_generic());
                    }
                } else {
                    for rec in cleartext.chunks_exact(sbt_types::EVENT_BYTES) {
                        dst.push(Event::from_bytes(rec).unwrap());
                    }
                }
            }
        })?;
        let decrypt_nanos = if encrypted { decrypt_start.elapsed().as_nanos() as u64 } else { 0 };
        let (id, opaque, len) =
            self.register_output(tenant, &ts, data, PrimitiveKind::Ingress.code() as u64, None)?;
        // Counters move only after the batch has actually been admitted
        // (registration can still fail on the tenant's quota).
        self.stats.record_ingress(n_events as u64, payload.len() as u64, decrypt_nanos);
        {
            let mut t = ts.lock();
            t.events_ingested += n_events as u64;
            t.bytes_ingested += payload.len() as u64;
        }
        self.append_audit(
            &ts,
            AuditRecord::Ingress {
                ts_ms: self.now_ms(),
                data: DataRef::UArray(UArrayRef(id.0 as u32)),
            },
        );
        // Ingest-to-store latency (call entry to registered output) plus a
        // decrypt span carrying the measured decrypt time. Both are relaxed
        // no-ops while telemetry is disabled.
        self.telemetry.record_latency(
            tenant.0,
            LatencyKind::IngestToStore,
            self.telemetry.tracer().elapsed_since(ingest_start),
        );
        if encrypted {
            // One sub-batch: the span carries the batch tag and its event
            // count in the same packed payload the parallel lanes use, so
            // span consumers sum decrypt time uniformly across both paths.
            self.telemetry.tracer().record_at(
                SpanKind::Decrypt,
                tenant.0,
                ingest_start,
                decrypt_nanos,
                decrypt_span_payload(id.0, n_events as u64),
            );
        }
        Ok(InvokeOutput { opaque, len, window: None })
    }

    /// Install the worker pool parallel ingest fans lane tasks onto
    /// (normally the engine's executor, lent when the engine is assembled).
    pub fn set_ingest_pool(&self, pool: Arc<dyn IngestPool>) {
        *self.ingest_pool.write() = Some(pool);
    }

    /// Ingest a batch whose payload arrived as a shared buffer, decrypting
    /// and parsing its sub-ranges in parallel on the installed
    /// [`IngestPool`].
    ///
    /// Semantically identical to [`ingress_for`](DataPlane::ingress_for) —
    /// same checks, same all-or-nothing reservation, same audit record and
    /// counters, and the stored events are byte-identical (lane boundaries
    /// are multiples of the serial path's decrypt window, so the window
    /// sequence is unchanged). The split happens strictly *inside* the one
    /// ingress invocation: sub-batching adds no boundary crossings. Falls
    /// back to the serial path when no pool is installed or the batch is too
    /// small to split.
    pub fn ingress_arc_for(
        &self,
        tenant: TenantId,
        payload: Arc<Vec<u8>>,
        encrypted: bool,
        is_power: bool,
        keystream_block: u32,
    ) -> Result<InvokeOutput, DataPlaneError> {
        let pool = self.ingest_pool.read().clone();
        let lanes = match &pool {
            Some(pool) => lane_plan(payload.len(), pool.workers()),
            None => Vec::new(),
        };
        if lanes.len() < 2 {
            return self.ingress_for(tenant, &payload, encrypted, is_power, keystream_block);
        }
        self.ingress_parallel(
            tenant,
            payload,
            encrypted,
            is_power,
            keystream_block,
            pool.expect("a multi-lane plan implies a pool").as_ref(),
            &lanes,
        )
    }

    /// The parallel body of [`ingress_arc_for`](DataPlane::ingress_arc_for):
    /// one lane task per sub-range, each stream-decrypting through its own
    /// fixed stack window into its own pooled buffer of the
    /// [`DisjointWriter`], stitched into the single reserved extent inside
    /// `produce_exact`'s fill.
    #[allow(clippy::too_many_arguments)]
    fn ingress_parallel(
        &self,
        tenant: TenantId,
        payload: Arc<Vec<u8>>,
        encrypted: bool,
        is_power: bool,
        keystream_block: u32,
        pool: &dyn IngestPool,
        lanes: &[(usize, usize)],
    ) -> Result<InvokeOutput, DataPlaneError> {
        WorldTracker::assert_secure("DataPlane::ingress");
        let ingest_start = self.telemetry.tracer().start();
        let ts = self.tenant_state(tenant)?;
        let record_bytes =
            if is_power { sbt_types::POWER_EVENT_BYTES } else { sbt_types::EVENT_BYTES };
        if !payload.len().is_multiple_of(record_bytes) {
            return Err(DataPlaneError::BadIngress(if is_power {
                "power payload not a whole event"
            } else {
                "payload not a whole event"
            }));
        }
        let n_events = payload.len() / record_bytes;
        let estimate = TeePager::pages_for((n_events * sbt_types::EVENT_BYTES) as u64) * PAGE_SIZE;
        if self.alloc.lock().allocator.owner_would_exceed(tenant.owner_tag(), estimate) {
            return Err(DataPlaneError::QuotaExceeded);
        }
        // Key material is copied out (128-bit arrays) so the `'static` lane
        // tasks never borrow tenant state; each lane builds its own cipher
        // and seeks the keystream to its byte offset.
        let key_material = if encrypted {
            let t = ts.lock();
            Some((t.keys.source_key, t.keys.source_nonce))
        } else {
            None
        };

        let counts: Vec<usize> = lanes.iter().map(|&(_, len)| len / record_bytes).collect();
        let recycled = std::mem::take(&mut *self.lane_buffers.lock());
        let writer = Arc::new(DisjointWriter::new(recycled, &counts));
        let decrypt_total = Arc::new(AtomicU64::new(0));
        let tracer = self.telemetry.tracer();
        let id = self.next_id();
        let tasks: Vec<Box<dyn FnOnce() + Send + 'static>> = lanes
            .iter()
            .enumerate()
            .map(|(ix, &(off, len))| {
                let payload = Arc::clone(&payload);
                let writer = Arc::clone(&writer);
                let decrypt_total = Arc::clone(&decrypt_total);
                let tracer = Arc::clone(tracer);
                let lane_block = AesCtr::block_at(keystream_block, off);
                let lane_events = (len / record_bytes) as u64;
                let tenant_raw = tenant.0;
                let batch_tag = id.0;
                Box::new(move || {
                    let lane_start = tracer.start();
                    let t0 = Instant::now();
                    writer.fill(ix, |buf| {
                        let mut window = [0u8; WIRE_CHUNK];
                        let ctr = key_material.map(|(key, nonce)| AesCtr::new(&key, &nonce));
                        let mut cursor = ctr.as_ref().map(|c| c.seek_to_block(lane_block));
                        for chunk in payload[off..off + len].chunks(WIRE_CHUNK) {
                            let cleartext: &[u8] = match &mut cursor {
                                Some(cur) => {
                                    cur.apply_into(chunk, &mut window[..chunk.len()]);
                                    &window[..chunk.len()]
                                }
                                None => chunk,
                            };
                            if is_power {
                                for rec in cleartext.chunks_exact(sbt_types::POWER_EVENT_BYTES) {
                                    buf.push(PowerEvent::from_bytes(rec).unwrap().to_generic());
                                }
                            } else {
                                for rec in cleartext.chunks_exact(sbt_types::EVENT_BYTES) {
                                    buf.push(Event::from_bytes(rec).unwrap());
                                }
                            }
                        }
                    });
                    if encrypted {
                        // Decrypt accounting is the *sum* of lane CPU time
                        // (not the batch's wall time), and every lane gets
                        // its own span tagged with the parent batch, so
                        // breakdowns stay correct under parallel ingest.
                        let lane_nanos = t0.elapsed().as_nanos() as u64;
                        decrypt_total.fetch_add(lane_nanos, Ordering::Relaxed);
                        tracer.record_at(
                            SpanKind::Decrypt,
                            tenant_raw,
                            lane_start,
                            lane_nanos,
                            decrypt_span_payload(batch_tag, lane_events),
                        );
                    }
                }) as Box<dyn FnOnce() + Send + 'static>
            })
            .collect();

        // Pages for the whole batch commit first (all-or-nothing, exactly as
        // the serial path); only then do the lanes run and stitch. On a
        // failed reservation the fill never runs: no decrypt work is done
        // and no lane buffer is filled.
        let result = StoredData::events_exact(id, n_events, &self.pager, |dst| {
            pool.run(tasks);
            writer.stitch_into(dst);
        });
        // Return the lane buffers to the pool on both outcomes.
        *self.lane_buffers.lock() = writer.reclaim();
        let data = result?;
        let decrypt_nanos = decrypt_total.load(Ordering::Relaxed);
        let (id, opaque, len) =
            self.register_output(tenant, &ts, data, PrimitiveKind::Ingress.code() as u64, None)?;
        self.stats.record_ingress(n_events as u64, payload.len() as u64, decrypt_nanos);
        {
            let mut t = ts.lock();
            t.events_ingested += n_events as u64;
            t.bytes_ingested += payload.len() as u64;
        }
        self.append_audit(
            &ts,
            AuditRecord::Ingress {
                ts_ms: self.now_ms(),
                data: DataRef::UArray(UArrayRef(id.0 as u32)),
            },
        );
        self.telemetry.record_latency(
            tenant.0,
            LatencyKind::IngestToStore,
            self.telemetry.tracer().elapsed_since(ingest_start),
        );
        Ok(InvokeOutput { opaque, len, window: None })
    }

    /// Ingest a watermark on the default tenant.
    pub fn ingress_watermark(&self, wm: Watermark) {
        let _ = self.ingress_watermark_for(TenantId::DEFAULT, wm);
    }

    /// Ingest a watermark (watermarks are control metadata, not protected
    /// data, but they are audited because freshness attestation depends on
    /// them).
    pub fn ingress_watermark_for(
        &self,
        tenant: TenantId,
        wm: Watermark,
    ) -> Result<(), DataPlaneError> {
        WorldTracker::assert_secure("DataPlane::ingress_watermark");
        let ts = self.tenant_state(tenant)?;
        self.append_audit(
            &ts,
            AuditRecord::Ingress {
                ts_ms: self.now_ms(),
                data: DataRef::Watermark(wm.event_time.as_millis() as u32),
            },
        );
        Ok(())
    }

    // ----- the shared primitive entry point ------------------------------

    /// Invoke a primitive on the default tenant.
    pub fn invoke(
        &self,
        op: PrimitiveKind,
        inputs: &[OpaqueRef],
        params: PrimitiveParams,
        hints: &HintSet,
    ) -> Result<Vec<InvokeOutput>, DataPlaneError> {
        self.invoke_for(TenantId::DEFAULT, op, inputs, params, hints)
    }

    /// Execute a trusted primitive over opaque inputs, producing opaque
    /// outputs (the single entry function shared by all 23 primitives).
    /// Inputs resolve only in the calling tenant's reference namespace;
    /// outputs are charged against the tenant's memory quota.
    pub fn invoke_for(
        &self,
        tenant: TenantId,
        op: PrimitiveKind,
        inputs: &[OpaqueRef],
        params: PrimitiveParams,
        hints: &HintSet,
    ) -> Result<Vec<InvokeOutput>, DataPlaneError> {
        WorldTracker::assert_secure("DataPlane::invoke");
        let ts = self.tenant_state(tenant)?;
        // Validate all references before doing any work.
        let mut resolved = Vec::with_capacity(inputs.len());
        for r in inputs {
            resolved.push(self.lookup(&ts, *r)?);
        }
        let input_ids: Vec<UArrayId> = resolved.iter().map(|(id, _)| *id).collect();

        let compute_start = Instant::now();
        let produced = self.execute(op, &resolved, &params)?;
        let compute_nanos = compute_start.elapsed().as_nanos() as u64;

        // Register outputs: allocator placement (guided by hints) with quota
        // charging, reference minting, audit records. The producer tag
        // identifies the primitive *type*: the Figure 10 baseline policy
        // treats all outputs of the same primitive as one generation and
        // co-locates them.
        let producer_tag = op.code() as u64;
        let committed = self.commit_outputs(tenant, producer_tag, produced, hints)?;
        let mut outputs = Vec::with_capacity(committed.len());
        let mut output_ids = Vec::with_capacity(committed.len());
        let mut memory_nanos = 0;
        for (id, len, window, paging_nanos) in committed {
            memory_nanos += paging_nanos;
            let opaque = ts.lock().refs.mint(id);
            output_ids.push(id);
            outputs.push(InvokeOutput { opaque, len, window });
            if let Some(w) = window {
                self.append_audit(
                    &ts,
                    AuditRecord::Windowing {
                        ts_ms: self.now_ms(),
                        input: UArrayRef(input_ids[0].0 as u32),
                        win_no: w.0 as u16,
                        output: UArrayRef(id.0 as u32),
                    },
                );
            }
        }
        // Windowing is fully described by its Windowing records; everything
        // else gets an Execution record.
        if op != PrimitiveKind::Segment {
            self.append_audit(
                &ts,
                AuditRecord::Execution {
                    ts_ms: self.now_ms(),
                    op,
                    inputs: input_ids.iter().map(|i| UArrayRef(i.0 as u32)).collect(),
                    outputs: output_ids.iter().map(|i| UArrayRef(i.0 as u32)).collect(),
                    hints: hints.iter().map(|h| h.encode()).collect(),
                },
            );
        }
        self.stats.record_invocation(InvocationBreakdown { compute_nanos, memory_nanos });
        Ok(outputs)
    }

    /// The primitive dispatch table. Returns the produced arrays, each with
    /// an optional window assignment (only `Segment` assigns windows).
    #[allow(clippy::type_complexity)]
    fn execute(
        &self,
        op: PrimitiveKind,
        inputs: &[(UArrayId, Arc<StoredData>)],
        params: &PrimitiveParams,
    ) -> Result<Vec<(StoredData, Option<WindowId>)>, DataPlaneError> {
        let one_events = |n: usize| -> Result<&[Event], DataPlaneError> {
            inputs.get(n).ok_or(DataPlaneError::BadArguments("missing input"))?.1.as_events()
        };
        let pager = &self.pager;
        let mut out: Vec<(StoredData, Option<WindowId>)> = Vec::new();
        match op {
            PrimitiveKind::Ingress | PrimitiveKind::Egress => {
                return Err(DataPlaneError::BadArguments(
                    "boundary operations are not invokable primitives",
                ))
            }
            PrimitiveKind::Sort => {
                let sorted = prim::sort_events_by_key(one_events(0)?);
                out.push((StoredData::from_events(self.next_id(), &sorted, pager)?, None));
            }
            PrimitiveKind::SortByValue => {
                let sorted = prim::sort_events_by_value(one_events(0)?);
                out.push((StoredData::from_events(self.next_id(), &sorted, pager)?, None));
            }
            PrimitiveKind::SortByTime => {
                let sorted = prim::sort_events_by_time(one_events(0)?);
                out.push((StoredData::from_events(self.next_id(), &sorted, pager)?, None));
            }
            PrimitiveKind::Merge => {
                let merged = prim::merge_sorted_by_key(one_events(0)?, one_events(1)?);
                out.push((StoredData::from_events(self.next_id(), &merged, pager)?, None));
            }
            PrimitiveKind::MergeK => {
                // Merge all event inputs pairwise.
                let mut acc: Vec<Event> = one_events(0)?.to_vec();
                for i in 1..inputs.len() {
                    acc = prim::merge_sorted_by_key(&acc, one_events(i)?);
                }
                out.push((StoredData::from_events(self.next_id(), &acc, pager)?, None));
            }
            PrimitiveKind::Segment => {
                let spec = match params {
                    PrimitiveParams::Window(spec) => *spec,
                    _ => return Err(DataPlaneError::BadArguments("Segment needs a window spec")),
                };
                for (win, events) in prim::segment_by_window(one_events(0)?, &spec) {
                    out.push((StoredData::from_events(self.next_id(), &events, pager)?, Some(win)));
                }
            }
            PrimitiveKind::SumCnt | PrimitiveKind::AveragePerKey => {
                let aggs = prim::sum_count_per_key(one_events(0)?);
                out.push((StoredData::from_aggs(self.next_id(), &aggs, pager)?, None));
            }
            PrimitiveKind::Sum => {
                let s = prim::sum(one_events(0)?);
                out.push((StoredData::from_scalars(self.next_id(), &[s], pager)?, None));
            }
            PrimitiveKind::Count => {
                let c = prim::count(one_events(0)?);
                out.push((StoredData::from_scalars(self.next_id(), &[c], pager)?, None));
            }
            PrimitiveKind::CountPerKey => {
                let counts = prim::count_per_key(one_events(0)?);
                let pairs: Vec<KeyValue> =
                    counts.iter().map(|kc| KeyValue::new(kc.key, kc.count)).collect();
                out.push((StoredData::from_pairs(self.next_id(), &pairs, pager)?, None));
            }
            PrimitiveKind::Average => {
                let avg = prim::average(one_events(0)?);
                out.push((StoredData::from_scalars(self.next_id(), &[avg], pager)?, None));
            }
            PrimitiveKind::Median => {
                let m = prim::median(one_events(0)?).unwrap_or(0) as u64;
                out.push((StoredData::from_scalars(self.next_id(), &[m], pager)?, None));
            }
            PrimitiveKind::MedianPerKey => {
                let med = prim::median_per_key(one_events(0)?);
                let pairs: Vec<KeyValue> =
                    med.iter().map(|(k, v)| KeyValue::new(*k, *v as u64)).collect();
                out.push((StoredData::from_pairs(self.next_id(), &pairs, pager)?, None));
            }
            PrimitiveKind::MinMax => {
                let (lo, hi) = prim::min_max(one_events(0)?).unwrap_or((0, 0));
                out.push((
                    StoredData::from_scalars(self.next_id(), &[lo as u64, hi as u64], pager)?,
                    None,
                ));
            }
            PrimitiveKind::Unique => {
                let keys = prim::unique_keys(one_events(0)?);
                let scalars: Vec<u64> = keys.iter().map(|k| *k as u64).collect();
                out.push((StoredData::from_scalars(self.next_id(), &scalars, pager)?, None));
            }
            PrimitiveKind::TopK => {
                let k = match params {
                    PrimitiveParams::K(k) => *k,
                    _ => return Err(DataPlaneError::BadArguments("TopK needs K")),
                };
                let top: Vec<u64> =
                    prim::top_k_by_value(one_events(0)?, k).iter().map(|v| *v as u64).collect();
                out.push((StoredData::from_scalars(self.next_id(), &top, pager)?, None));
            }
            PrimitiveKind::TopKPerKey => {
                let k = match params {
                    PrimitiveParams::K(k) => *k,
                    _ => return Err(DataPlaneError::BadArguments("TopKPerKey needs K")),
                };
                let mut pairs = Vec::new();
                for (key, values) in prim::top_k_per_key(one_events(0)?, k) {
                    for v in values {
                        pairs.push(KeyValue::new(key, v as u64));
                    }
                }
                out.push((StoredData::from_pairs(self.next_id(), &pairs, pager)?, None));
            }
            PrimitiveKind::FilterBand => {
                let (lo, hi) = match params {
                    PrimitiveParams::Band { lo, hi } => (*lo, *hi),
                    _ => return Err(DataPlaneError::BadArguments("FilterBand needs a band")),
                };
                let kept = prim::filter_band(one_events(0)?, lo, hi);
                out.push((StoredData::from_events(self.next_id(), &kept, pager)?, None));
            }
            PrimitiveKind::FilterTime => {
                let (start, end) = match params {
                    PrimitiveParams::TimeRange { start, end } => (*start, *end),
                    _ => return Err(DataPlaneError::BadArguments("FilterTime needs a range")),
                };
                let kept = prim::filter_time(one_events(0)?, start, end);
                out.push((StoredData::from_events(self.next_id(), &kept, pager)?, None));
            }
            PrimitiveKind::Project => {
                let keys = prim::project_keys(one_events(0)?);
                let scalars: Vec<u64> = keys.iter().map(|k| *k as u64).collect();
                out.push((StoredData::from_scalars(self.next_id(), &scalars, pager)?, None));
            }
            PrimitiveKind::Sample => {
                let every = match params {
                    PrimitiveParams::Every(n) => *n,
                    _ => return Err(DataPlaneError::BadArguments("Sample needs a period")),
                };
                let sampled = prim::sample_every(one_events(0)?, every);
                out.push((StoredData::from_events(self.next_id(), &sampled, pager)?, None));
            }
            PrimitiveKind::Concat => {
                let mut parts: Vec<&[Event]> = Vec::with_capacity(inputs.len());
                for i in 0..inputs.len() {
                    parts.push(one_events(i)?);
                }
                let joined = prim::concat_events(&parts);
                out.push((StoredData::from_events(self.next_id(), &joined, pager)?, None));
            }
            PrimitiveKind::Union => {
                let merged = prim::union_events(one_events(0)?, one_events(1)?);
                out.push((StoredData::from_events(self.next_id(), &merged, pager)?, None));
            }
            PrimitiveKind::Join => {
                let joined = prim::join_by_key(one_events(0)?, one_events(1)?);
                let pairs: Vec<KeyValue> = joined
                    .iter()
                    .map(|p| {
                        KeyValue::new(p.key, ((p.left_value as u64) << 32) | p.right_value as u64)
                    })
                    .collect();
                out.push((StoredData::from_pairs(self.next_id(), &pairs, pager)?, None));
            }
        }
        Ok(out)
    }

    // ----- egress and retirement -----------------------------------------

    /// Externalize a result of the default tenant.
    pub fn egress(&self, r: OpaqueRef) -> Result<EgressMessage, DataPlaneError> {
        self.egress_for(TenantId::DEFAULT, r)
    }

    /// Externalize a result: encrypt, sign, audit, flush the audit log. The
    /// reference must belong to the calling tenant; egress sequence numbers
    /// are per tenant, so each tenant's result stream is independently
    /// replay-protected.
    pub fn egress_for(
        &self,
        tenant: TenantId,
        r: OpaqueRef,
    ) -> Result<EgressMessage, DataPlaneError> {
        WorldTracker::assert_secure("DataPlane::egress");
        let ts = self.tenant_state(tenant)?;
        let (id, data) = self.lookup(&ts, r)?;
        let plaintext = data.to_wire_bytes();
        let (seq, cloud_key, cloud_nonce, signing) = {
            let mut t = ts.lock();
            let s = t.egress_seq;
            t.egress_seq += 1;
            (s, t.keys.cloud_key, t.keys.cloud_nonce, t.keys.signing.clone())
        };
        let msg = EgressMessage::seal(seq, &plaintext, &cloud_key, &cloud_nonce, &signing);
        self.stats.record_egress();
        self.append_audit(
            &ts,
            AuditRecord::Egress { ts_ms: self.now_ms(), data: UArrayRef(id.0 as u32) },
        );
        // Flush audit records on externalization, as the paper requires.
        let mut t = ts.lock();
        if let Some(segment) = t.audit.flush() {
            t.segments.push(segment);
        }
        Ok(msg)
    }

    /// Retire a reference of the default tenant.
    pub fn retire(&self, r: OpaqueRef) -> Result<(), DataPlaneError> {
        self.retire_for(TenantId::DEFAULT, r)
    }

    /// Retire a reference: the control plane will not consume it again. The
    /// uArray becomes reclaimable; memory is released in uGroup order and
    /// un-charged from the tenant's quota.
    pub fn retire_for(&self, tenant: TenantId, r: OpaqueRef) -> Result<(), DataPlaneError> {
        WorldTracker::assert_secure("DataPlane::retire");
        let ts = self.tenant_state(tenant)?;
        let id = ts.lock().refs.revoke(r)?;
        let reclaimed: Vec<(UArrayId, u64)> = {
            let mut alloc = self.alloc.lock();
            let committed = alloc.committed.get(&id).copied().unwrap_or(0);
            alloc.allocator.update(id, UArrayState::Retired, committed);
            let ids = alloc.allocator.reclaim();
            ids.into_iter()
                .map(|rid| {
                    let bytes = alloc.committed.remove(&rid).unwrap_or(0);
                    (rid, bytes)
                })
                .collect()
        };
        if !reclaimed.is_empty() {
            let mut store = self.store.write();
            for (rid, bytes) in reclaimed {
                store.remove(&rid);
                self.pager.release_pages(bytes / PAGE_SIZE);
            }
        }
        Ok(())
    }

    /// The default tenant's current cloud-side keys (what the cloud consumer
    /// of a single-pipeline deployment holds). Multi-tenant consumers use
    /// [`verifier_keys`](DataPlane::verifier_keys) instead.
    pub fn cloud_keys(&self) -> (Key128, Nonce, SigningKey) {
        let ts = self.tenant_state(TenantId::DEFAULT).expect("default tenant always registered");
        let t = ts.lock();
        (t.keys.cloud_key, t.keys.cloud_nonce, t.keys.signing.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::WindowManifest;
    use sbt_types::Duration;
    use sbt_types::WindowSpec;
    use sbt_tz::World;
    use sbt_tz::WorldGuard;

    fn plane() -> Arc<DataPlane> {
        DataPlane::new(Platform::hikey(), DataPlaneConfig::default())
    }

    /// Run a closure "in the secure world" as the SMC layer would.
    fn in_tee<R>(f: impl FnOnce() -> R) -> R {
        let _g = WorldGuard::enter(World::Secure);
        f()
    }

    fn ingest_events(dp: &DataPlane, events: &[Event]) -> InvokeOutput {
        let bytes = Event::slice_to_bytes(events);
        in_tee(|| dp.ingress(&bytes, false, false, 0)).unwrap()
    }

    fn ingest_events_for(dp: &DataPlane, tenant: TenantId, events: &[Event]) -> InvokeOutput {
        let bytes = Event::slice_to_bytes(events);
        in_tee(|| dp.ingress_for(tenant, &bytes, false, false, 0)).unwrap()
    }

    #[test]
    fn ingress_creates_opaque_reference() {
        let dp = plane();
        let events: Vec<Event> = (0..100).map(|i| Event::new(i, i * 2, i * 10)).collect();
        let out = ingest_events(&dp, &events);
        assert_eq!(out.len, 100);
        assert_eq!(dp.live_refs(), 1);
        assert_eq!(dp.stats().snapshot().events_ingested, 100);
        assert!(dp.memory_report().committed_bytes > 0);
    }

    #[test]
    fn encrypted_ingress_decrypts_with_source_key() {
        let dp = plane();
        let events: Vec<Event> = (0..50).map(|i| Event::new(i, i, i)).collect();
        let mut payload = Event::slice_to_bytes(&events);
        // The source provisions the default tenant's epoch-0 derived keys.
        let ks = MasterSecret::demo().tenant_keys(TenantId::DEFAULT.0, 0);
        AesCtr::new(&ks.source_key, &ks.source_nonce).apply_keystream_at(&mut payload, 0);
        let out = in_tee(|| dp.ingress(&payload, true, false, 0)).unwrap();
        assert_eq!(out.len, 50);
        // Sorting the ingested array gives back the events (proves the
        // decryption produced real data, not garbage).
        let sorted = in_tee(|| {
            dp.invoke(PrimitiveKind::Sort, &[out.opaque], PrimitiveParams::None, &HintSet::none())
        })
        .unwrap();
        assert_eq!(sorted[0].len, 50);
        assert!(dp.stats().snapshot().decrypt_nanos > 0);
    }

    #[test]
    fn power_ingress_projects_to_generic_layout() {
        let dp = plane();
        let events: Vec<PowerEvent> =
            (0..10).map(|i| PowerEvent::new(100 + i, i, i / 2, i * 5)).collect();
        let bytes = PowerEvent::slice_to_bytes(&events);
        let out = in_tee(|| dp.ingress(&bytes, false, true, 0)).unwrap();
        assert_eq!(out.len, 10);
    }

    #[test]
    fn malformed_ingress_is_rejected() {
        let dp = plane();
        let err = in_tee(|| dp.ingress(&[1, 2, 3], false, false, 0)).unwrap_err();
        assert_eq!(err, DataPlaneError::BadIngress("payload not a whole event"));
    }

    #[test]
    fn fabricated_reference_is_rejected() {
        let dp = plane();
        let err = in_tee(|| {
            dp.invoke(
                PrimitiveKind::Sort,
                &[OpaqueRef(0xBAD)],
                PrimitiveParams::None,
                &HintSet::none(),
            )
        })
        .unwrap_err();
        assert_eq!(err, DataPlaneError::InvalidReference);
        assert!(in_tee(|| dp.egress(OpaqueRef(0xBAD))).is_err());
        assert!(in_tee(|| dp.retire(OpaqueRef(0xBAD))).is_err());
    }

    #[test]
    #[should_panic(expected = "secure-world code reached")]
    fn normal_world_cannot_call_the_data_plane_directly() {
        let dp = plane();
        // No WorldGuard: this models a control-plane thread trying to call
        // into data-plane code without going through the SMC interface.
        let _ = dp.ingress(&[], false, false, 0);
    }

    #[test]
    fn groupby_chain_computes_correct_aggregates() {
        let dp = plane();
        let events = vec![
            Event::new(2, 10, 100),
            Event::new(1, 5, 200),
            Event::new(2, 20, 300),
            Event::new(1, 15, 400),
        ];
        let ingested = ingest_events(&dp, &events);
        let sorted = in_tee(|| {
            dp.invoke(
                PrimitiveKind::Sort,
                &[ingested.opaque],
                PrimitiveParams::None,
                &HintSet::none(),
            )
        })
        .unwrap();
        let aggs = in_tee(|| {
            dp.invoke(
                PrimitiveKind::SumCnt,
                &[sorted[0].opaque],
                PrimitiveParams::None,
                &HintSet::none(),
            )
        })
        .unwrap();
        assert_eq!(aggs[0].len, 2);
        // Egress and decrypt on the "cloud side" to check the values.
        let msg = in_tee(|| dp.egress(aggs[0].opaque)).unwrap();
        let (key, nonce, signing) = dp.cloud_keys();
        let plain = msg.open(&key, &nonce, &signing).unwrap();
        // KeyAgg wire layout: key(4) sum(8) count(8) per record.
        assert_eq!(plain.len(), 2 * 20);
        let key1 = u32::from_le_bytes(plain[0..4].try_into().unwrap());
        let sum1 = u64::from_le_bytes(plain[4..12].try_into().unwrap());
        assert_eq!(key1, 1);
        assert_eq!(sum1, 20);
    }

    #[test]
    fn segment_assigns_windows_and_emits_windowing_records() {
        let dp = plane();
        let events = vec![Event::new(1, 1, 100), Event::new(2, 2, 1100), Event::new(3, 3, 2100)];
        let ingested = ingest_events(&dp, &events);
        let spec = WindowSpec::fixed(Duration::from_secs(1));
        let outs = in_tee(|| {
            dp.invoke(
                PrimitiveKind::Segment,
                &[ingested.opaque],
                PrimitiveParams::Window(spec),
                &HintSet::none(),
            )
        })
        .unwrap();
        assert_eq!(outs.len(), 3);
        assert_eq!(outs[0].window, Some(WindowId(0)));
        assert_eq!(outs[2].window, Some(WindowId(2)));
        // Audit log contains ingress + 3 windowing records.
        let segments = dp.drain_audit_segments();
        let records: Vec<AuditRecord> = segments
            .iter()
            .flat_map(|s| sbt_attest::decompress_records(&s.compressed).unwrap())
            .collect();
        let windowing =
            records.iter().filter(|r| matches!(r, AuditRecord::Windowing { .. })).count();
        assert_eq!(windowing, 3);
    }

    #[test]
    fn retire_reclaims_memory() {
        let dp = plane();
        let events: Vec<Event> = (0..50_000).map(|i| Event::new(i, i, i % 1000)).collect();
        let ingested = ingest_events(&dp, &events);
        let before = dp.memory_report().committed_bytes;
        assert!(before > 0);
        in_tee(|| dp.retire(ingested.opaque)).unwrap();
        let after = dp.memory_report().committed_bytes;
        assert_eq!(after, 0);
        assert_eq!(dp.live_refs(), 0);
        // The reference is dead: further use is rejected.
        assert!(in_tee(|| dp.egress(ingested.opaque)).is_err());
    }

    #[test]
    fn wrong_arity_or_params_are_rejected() {
        let dp = plane();
        let ingested = ingest_events(&dp, &[Event::new(1, 1, 1)]);
        // Merge needs two inputs.
        assert!(matches!(
            in_tee(|| dp.invoke(
                PrimitiveKind::Merge,
                &[ingested.opaque],
                PrimitiveParams::None,
                &HintSet::none()
            )),
            Err(DataPlaneError::BadArguments(_))
        ));
        // TopK needs K.
        assert!(matches!(
            in_tee(|| dp.invoke(
                PrimitiveKind::TopK,
                &[ingested.opaque],
                PrimitiveParams::None,
                &HintSet::none()
            )),
            Err(DataPlaneError::BadArguments(_))
        ));
        // Boundary ops are not invokable.
        assert!(matches!(
            in_tee(|| dp.invoke(
                PrimitiveKind::Ingress,
                &[ingested.opaque],
                PrimitiveParams::None,
                &HintSet::none()
            )),
            Err(DataPlaneError::BadArguments(_))
        ));
    }

    #[test]
    fn hints_guide_allocator_placement() {
        let dp = plane();
        let a = ingest_events(&dp, &(0..100).map(|i| Event::new(i, i, 0)).collect::<Vec<_>>());
        // Sort with a consumed-in-parallel hint: output goes to its own group.
        let groups_before = dp.memory_report().live_groups;
        let _sorted = in_tee(|| {
            dp.invoke(
                PrimitiveKind::Sort,
                &[a.opaque],
                PrimitiveParams::None,
                &HintSet::consumed_in_parallel(1),
            )
        })
        .unwrap();
        assert!(dp.memory_report().live_groups > groups_before);
    }

    #[test]
    fn audit_stream_verifies_for_a_full_pipeline_run() {
        use sbt_attest::{PipelineSpec, Verifier};
        let dp = plane();
        // window 0 events then a watermark at 1s.
        let events: Vec<Event> = (0..1000).map(|i| Event::new(i % 7, i, i % 1000)).collect();
        let ingested = ingest_events(&dp, &events);
        let spec = WindowSpec::fixed(Duration::from_secs(1));
        let windows = in_tee(|| {
            dp.invoke(
                PrimitiveKind::Segment,
                &[ingested.opaque],
                PrimitiveParams::Window(spec),
                &HintSet::none(),
            )
        })
        .unwrap();
        in_tee(|| dp.ingress_watermark(Watermark::from_secs(1)));
        let sorted = in_tee(|| {
            dp.invoke(
                PrimitiveKind::Sort,
                &[windows[0].opaque],
                PrimitiveParams::None,
                &HintSet::none(),
            )
        })
        .unwrap();
        let aggs = in_tee(|| {
            dp.invoke(
                PrimitiveKind::SumCnt,
                &[sorted[0].opaque],
                PrimitiveParams::None,
                &HintSet::none(),
            )
        })
        .unwrap();
        in_tee(|| dp.egress(aggs[0].opaque)).unwrap();

        let records: Vec<AuditRecord> = dp
            .drain_audit_segments()
            .iter()
            .flat_map(|s| sbt_attest::decompress_records(&s.compressed).unwrap())
            .collect();
        let verifier = Verifier::new(PipelineSpec::new(
            "groupby-sum",
            vec![PrimitiveKind::Sort, PrimitiveKind::SumCnt],
            10_000,
        ));
        let report = verifier.replay(&records);
        assert!(report.is_correct(), "violations: {:?}", report.violations);
        assert_eq!(report.egressed, 1);
    }

    #[test]
    fn concurrent_invocations_from_many_threads() {
        let dp = plane();
        let refs: Vec<OpaqueRef> = (0..8)
            .map(|t| {
                ingest_events(
                    &dp,
                    &(0..5_000).map(|i| Event::new(i % 100, i + t, 0)).collect::<Vec<_>>(),
                )
                .opaque
            })
            .collect();
        let mut handles = Vec::new();
        for r in refs {
            let dp = dp.clone();
            handles.push(std::thread::spawn(move || {
                let sorted = in_tee(|| {
                    dp.invoke(PrimitiveKind::Sort, &[r], PrimitiveParams::None, &HintSet::none())
                })
                .unwrap();
                let aggs = in_tee(|| {
                    dp.invoke(
                        PrimitiveKind::SumCnt,
                        &[sorted[0].opaque],
                        PrimitiveParams::None,
                        &HintSet::none(),
                    )
                })
                .unwrap();
                aggs[0].len
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 100);
        }
        assert_eq!(dp.stats().snapshot().invocations, 16);
    }

    // ----- multi-tenant behaviour ----------------------------------------

    #[test]
    fn tenants_register_once_and_list_in_order() {
        let dp = plane();
        dp.register_tenant(TenantId(2), Some(1 << 20)).unwrap();
        dp.register_tenant(TenantId(1), None).unwrap();
        assert_eq!(dp.tenants(), vec![TenantId::DEFAULT, TenantId(1), TenantId(2)]);
        assert!(dp.register_tenant(TenantId(1), None).is_err());
        let mem = dp.tenant_memory(TenantId(2)).unwrap();
        assert_eq!(mem.quota_bytes, Some(1 << 20));
        assert_eq!(mem.used_bytes, 0);
    }

    #[test]
    fn unknown_tenants_are_rejected() {
        let dp = plane();
        let err = in_tee(|| dp.ingress_for(TenantId(9), &[], false, false, 0)).unwrap_err();
        assert_eq!(err, DataPlaneError::UnknownTenant);
        assert_eq!(dp.tenant_memory(TenantId(9)), Err(DataPlaneError::UnknownTenant));
        assert!(dp.drain_audit_segments_for(TenantId(9)).is_err());
    }

    #[test]
    fn cross_tenant_references_do_not_resolve() {
        let dp = plane();
        dp.register_tenant(TenantId(1), None).unwrap();
        dp.register_tenant(TenantId(2), None).unwrap();
        let events: Vec<Event> = (0..10).map(|i| Event::new(i, i, 0)).collect();
        let a = ingest_events_for(&dp, TenantId(1), &events);
        // Tenant 2 cannot invoke, egress or retire tenant 1's reference,
        // even knowing its exact value.
        let err = in_tee(|| {
            dp.invoke_for(
                TenantId(2),
                PrimitiveKind::Sort,
                &[a.opaque],
                PrimitiveParams::None,
                &HintSet::none(),
            )
        })
        .unwrap_err();
        assert_eq!(err, DataPlaneError::InvalidReference);
        assert!(in_tee(|| dp.egress_for(TenantId(2), a.opaque)).is_err());
        assert!(in_tee(|| dp.retire_for(TenantId(2), a.opaque)).is_err());
        // The rightful owner still can.
        assert!(in_tee(|| dp.egress_for(TenantId(1), a.opaque)).is_ok());
    }

    #[test]
    fn tenant_audit_trails_are_separate_and_tagged() {
        let dp = plane();
        dp.register_tenant(TenantId(1), None).unwrap();
        dp.register_tenant(TenantId(2), None).unwrap();
        let events: Vec<Event> = (0..5).map(|i| Event::new(i, i, 0)).collect();
        let a = ingest_events_for(&dp, TenantId(1), &events);
        in_tee(|| dp.egress_for(TenantId(1), a.opaque)).unwrap();
        let b = ingest_events_for(&dp, TenantId(2), &events);
        in_tee(|| dp.egress_for(TenantId(2), b.opaque)).unwrap();

        let keys1 = dp.verifier_keys(TenantId(1)).unwrap();
        let keys2 = dp.verifier_keys(TenantId(2)).unwrap();
        let seg1 = dp.drain_audit_segments_for(TenantId(1)).unwrap();
        let seg2 = dp.drain_audit_segments_for(TenantId(2)).unwrap();
        assert!(seg1.iter().all(|s| s.tenant == TenantId(1)));
        assert!(seg2.iter().all(|s| s.tenant == TenantId(2)));
        let r1 = sbt_attest::verify_tenant_trail(&seg1, TenantId(1), &keys1).unwrap();
        let r2 = sbt_attest::verify_tenant_trail(&seg2, TenantId(2), &keys2).unwrap();
        // Each trail holds exactly its own tenant's ingress + egress.
        assert_eq!(r1.len(), 2);
        assert_eq!(r2.len(), 2);
        // A trail cannot be passed off as the other tenant's: the other
        // tenant's keychain never vouches for it.
        assert!(sbt_attest::verify_tenant_trail(&seg1, TenantId(2), &keys2).is_err());
    }

    #[test]
    fn quota_rejects_the_exceeding_tenant_only() {
        let dp = plane();
        // Tenant 1 gets a 16 KiB quota; tenant 2 is unconstrained.
        dp.register_tenant(TenantId(1), Some(16 * 1024)).unwrap();
        dp.register_tenant(TenantId(2), None).unwrap();
        let big: Vec<Event> = (0..2_000).map(|i| Event::new(i, i, 0)).collect(); // ~24 KB
        let small: Vec<Event> = (0..100).map(|i| Event::new(i, i, 0)).collect();
        let bytes = Event::slice_to_bytes(&big);
        let err = in_tee(|| dp.ingress_for(TenantId(1), &bytes, false, false, 0)).unwrap_err();
        assert_eq!(err, DataPlaneError::QuotaExceeded);
        // The rejected batch is not counted as ingested.
        assert_eq!(dp.tenant_ingest(TenantId(1)).unwrap(), (0, 0));
        // Tenant 1 can still ingest within its quota...
        let a = ingest_events_for(&dp, TenantId(1), &small);
        // ...and tenant 2 is completely unaffected.
        let b = ingest_events_for(&dp, TenantId(2), &big);
        assert_eq!(a.len, 100);
        assert_eq!(b.len, 2_000);
        let m1 = dp.tenant_memory(TenantId(1)).unwrap();
        assert!(m1.used_bytes > 0 && m1.used_bytes <= 16 * 1024);
        // Retiring releases the quota.
        in_tee(|| dp.retire_for(TenantId(1), a.opaque)).unwrap();
        assert_eq!(dp.tenant_memory(TenantId(1)).unwrap().used_bytes, 0);
    }

    #[test]
    fn quota_rejection_of_invoke_outputs_releases_pages() {
        let dp = plane();
        // Quota fits the ingested array but not a sorted copy of it.
        dp.register_tenant(TenantId(1), Some(8 * 4096)).unwrap();
        let events: Vec<Event> = (0..2_000).map(|i| Event::new(i % 50, i, 0)).collect();
        let a = ingest_events_for(&dp, TenantId(1), &events); // ~6 pages
        let before = dp.platform().secure_mem().in_use();
        let err = in_tee(|| {
            dp.invoke_for(
                TenantId(1),
                PrimitiveKind::Sort,
                &[a.opaque],
                PrimitiveParams::None,
                &HintSet::none(),
            )
        })
        .unwrap_err();
        assert_eq!(err, DataPlaneError::QuotaExceeded);
        // The transiently committed output pages were released.
        assert_eq!(dp.platform().secure_mem().in_use(), before);
        // The input is still usable.
        assert!(in_tee(|| dp.egress_for(TenantId(1), a.opaque)).is_ok());
    }

    #[test]
    fn tenant_egress_seals_under_its_own_derived_keys() {
        let dp = plane();
        dp.register_tenant(TenantId(1), None).unwrap();
        dp.register_tenant(TenantId(2), None).unwrap();
        let events: Vec<Event> = (0..4).map(|i| Event::new(i, i, 0)).collect();
        let a = ingest_events_for(&dp, TenantId(1), &events);
        let msg = in_tee(|| dp.egress_for(TenantId(1), a.opaque)).unwrap();
        // Opens under tenant 1's keychain, not under tenant 2's or the
        // platform default tenant's keys.
        let k1 = dp.verifier_keys(TenantId(1)).unwrap();
        let k2 = dp.verifier_keys(TenantId(2)).unwrap();
        assert_eq!(msg.open_with(k1.latest()).unwrap(), Event::slice_to_bytes(&events));
        assert!(msg.open_with(k2.latest()).is_none());
        let (key, nonce, signing) = dp.cloud_keys();
        assert!(msg.open(&key, &nonce, &signing).is_none());
        // Trial decryption over the keychain finds the right epoch.
        assert!(msg.open_any(&k1).is_some());
    }

    #[test]
    fn rekey_rotates_only_the_target_tenant() {
        let dp = plane();
        dp.register_tenant(TenantId(1), None).unwrap();
        dp.register_tenant(TenantId(2), None).unwrap();
        let events: Vec<Event> = (0..4).map(|i| Event::new(i, i, 0)).collect();
        let a0 = ingest_events_for(&dp, TenantId(1), &events);
        let m0 = in_tee(|| dp.egress_for(TenantId(1), a0.opaque)).unwrap();
        assert_eq!(dp.rekey_tenant(TenantId(1)).unwrap(), 1);
        assert_eq!(dp.tenant_epoch(TenantId(1)).unwrap(), 1);
        assert_eq!(dp.tenant_epoch(TenantId(2)).unwrap(), 0, "neighbour undisturbed");
        let a1 = ingest_events_for(&dp, TenantId(1), &events);
        let m1 = in_tee(|| dp.egress_for(TenantId(1), a1.opaque)).unwrap();

        let chain = dp.verifier_keys(TenantId(1)).unwrap();
        assert_eq!(chain.epoch_count(), 2);
        // Pre-rekey result opens under epoch 0, post-rekey under epoch 1.
        assert!(m0.open_with(chain.epoch(0).unwrap()).is_some());
        assert!(m0.open_with(chain.epoch(1).unwrap()).is_none());
        assert!(m1.open_with(chain.epoch(1).unwrap()).is_some());
        assert!(m1.open_with(chain.epoch(0).unwrap()).is_none());

        // The trail spans both epochs, carries the rekey record, and
        // verifies only under the full keychain.
        let segs = dp.drain_audit_segments_for(TenantId(1)).unwrap();
        assert!(segs.iter().any(|s| s.epoch == 0) && segs.iter().any(|s| s.epoch == 1));
        let records = sbt_attest::verify_tenant_trail(&segs, TenantId(1), &chain).unwrap();
        assert!(records.iter().any(|r| matches!(r, AuditRecord::Rekey { epoch: 1, .. })));
        let epoch0_only = DataPlaneConfig::default().master.keychain(1, 0);
        assert!(sbt_attest::verify_tenant_trail(&segs, TenantId(1), &epoch0_only).is_err());
    }

    #[test]
    fn rekeyed_tenant_decrypts_only_current_epoch_ingress() {
        let dp = plane();
        dp.register_tenant(TenantId(1), None).unwrap();
        dp.rekey_tenant(TenantId(1)).unwrap();
        let events: Vec<Event> = (0..16).map(|i| Event::new(i, i, 0)).collect();
        let master = MasterSecret::demo();
        // Encrypted under the stale epoch-0 key: decrypts to garbage and is
        // rejected as unparseable (16 events x 12 B misaligns to nothing,
        // but values would be garbage regardless — use a length that stays
        // aligned to prove rejection isn't just a length check).
        let stale = master.tenant_keys(1, 0);
        let mut payload = Event::slice_to_bytes(&events);
        AesCtr::new(&stale.source_key, &stale.source_nonce).apply_keystream_at(&mut payload, 0);
        let out = in_tee(|| dp.ingress_for(TenantId(1), &payload, true, false, 0)).unwrap();
        let sorted = in_tee(|| {
            dp.invoke_for(
                TenantId(1),
                PrimitiveKind::Sort,
                &[out.opaque],
                PrimitiveParams::None,
                &HintSet::none(),
            )
        })
        .unwrap();
        // Garbage in, garbage out: the decrypted events do not match.
        let msg = in_tee(|| dp.egress_for(TenantId(1), sorted[0].opaque)).unwrap();
        let chain = dp.verifier_keys(TenantId(1)).unwrap();
        let plain = msg.open_with(chain.latest()).unwrap();
        assert_ne!(Event::slice_from_bytes(&plain), {
            let mut sorted_events = events.clone();
            sorted_events.sort_by_key(|e| e.key);
            sorted_events
        });
        // Under the fresh epoch-1 key the same batch round-trips cleanly.
        let fresh = master.tenant_keys(1, 1);
        let mut payload = Event::slice_to_bytes(&events);
        AesCtr::new(&fresh.source_key, &fresh.source_nonce).apply_keystream_at(&mut payload, 0);
        let ok = in_tee(|| dp.ingress_for(TenantId(1), &payload, true, false, 0)).unwrap();
        assert_eq!(ok.len, 16);
    }

    #[test]
    fn deregister_revokes_refs_frees_memory_and_emits_departure() {
        let dp = plane();
        dp.register_tenant(TenantId(1), Some(1 << 20)).unwrap();
        dp.register_tenant(TenantId(2), None).unwrap();
        let events: Vec<Event> = (0..2_000).map(|i| Event::new(i, i, 0)).collect();
        let doomed = ingest_events_for(&dp, TenantId(1), &events);
        let survivor = ingest_events_for(&dp, TenantId(2), &events);
        let used = dp.tenant_memory(TenantId(1)).unwrap().used_bytes;
        assert!(used > 0);
        let in_use_before = dp.platform().secure_mem().in_use();

        let chain = dp.verifier_keys(TenantId(1)).unwrap();
        let mut trail = dp.drain_audit_segments_for(TenantId(1)).unwrap();
        let teardown = dp.deregister_tenant(TenantId(1), DepartureReason::Evicted).unwrap();
        assert_eq!(teardown.reclaimed_bytes, used);
        assert_eq!(teardown.refs_revoked, 1);
        assert_eq!(teardown.final_epoch, 0);

        // The tenant is gone: its references and every entry point reject.
        assert!(in_tee(|| dp.egress_for(TenantId(1), doomed.opaque)).is_err());
        assert_eq!(
            in_tee(|| dp.ingress_for(TenantId(1), &[], false, false, 0)).unwrap_err(),
            DataPlaneError::UnknownTenant
        );
        assert_eq!(dp.tenant_memory(TenantId(1)), Err(DataPlaneError::UnknownTenant));
        assert!(dp.deregister_tenant(TenantId(1), DepartureReason::Evicted).is_err());
        // Its secure memory came back; the survivor is untouched.
        assert_eq!(dp.platform().secure_mem().in_use(), in_use_before - used);
        assert!(in_tee(|| dp.egress_for(TenantId(2), survivor.opaque)).is_ok());

        // The final trail verifies and ends with the departure record.
        trail.extend(teardown.segments);
        let records = sbt_attest::verify_tenant_trail(&trail, TenantId(1), &chain).unwrap();
        assert!(matches!(
            records.last(),
            Some(AuditRecord::Departure { reason: DepartureReason::Evicted, .. })
        ));
    }

    #[test]
    fn default_tenant_cannot_be_deregistered() {
        let dp = plane();
        assert!(dp.deregister_tenant(TenantId::DEFAULT, DepartureReason::Drained).is_err());
    }

    #[test]
    fn quota_resize_applies_immediately() {
        let dp = plane();
        dp.register_tenant(TenantId(1), Some(4 * 4096)).unwrap();
        let big: Vec<Event> = (0..2_000).map(|i| Event::new(i, i, 0)).collect();
        let bytes = Event::slice_to_bytes(&big);
        assert_eq!(
            in_tee(|| dp.ingress_for(TenantId(1), &bytes, false, false, 0)).unwrap_err(),
            DataPlaneError::QuotaExceeded
        );
        dp.set_tenant_quota(TenantId(1), Some(64 * 4096)).unwrap();
        assert!(in_tee(|| dp.ingress_for(TenantId(1), &bytes, false, false, 0)).is_ok());
        assert!(dp.set_tenant_quota(TenantId(9), Some(1)).is_err());
    }

    #[test]
    fn tenant_pressure_tracks_quota_usage() {
        let dp = plane();
        dp.register_tenant(TenantId(1), Some(10 * 4096)).unwrap();
        assert!(!dp.tenant_under_pressure(TenantId(1)));
        let events: Vec<Event> = (0..3_000).map(|i| Event::new(i, i, 0)).collect(); // 9 pages
        let _ = ingest_events_for(&dp, TenantId(1), &events);
        assert!(dp.tenant_under_pressure(TenantId(1)));
        // The default (unconstrained) tenant never reports quota pressure.
        assert!(!dp.tenant_under_pressure(TenantId::DEFAULT));
    }

    #[test]
    fn checkpoint_restore_round_trips_state_and_stitched_trail_verifies() {
        let dp = plane();
        dp.register_tenant(TenantId(1), None).unwrap();
        let events: Vec<Event> = (0..500).map(|i| Event::new(i % 7, i, i * 3)).collect();
        let a = ingest_events_for(&dp, TenantId(1), &events);
        let manifest = CheckpointManifest {
            left_watermark_ms: 1_500,
            right_watermark_ms: 0,
            next_unexecuted: 0,
            windows: vec![WindowManifest { win_no: 0, left: vec![a.opaque], right: Vec::new() }],
        };
        let sealed = in_tee(|| dp.checkpoint_tenant(TenantId(1), &manifest)).unwrap();
        assert_eq!((sealed.tenant, sealed.ckpt_seq, sealed.epoch), (1, 0, 0));
        assert!(dp.telemetry().last_checkpoint_age_nanos(1).is_some());
        let prefix = dp.drain_audit_segments_for(TenantId(1)).unwrap();

        // Crash: a fresh plane restores the tenant from the container as it
        // came back from untrusted storage.
        let dp2 = plane();
        let stored = SealedSnapshot::from_bytes(&sealed.to_bytes()).unwrap();
        let restored = in_tee(|| dp2.restore_tenant(TenantId(1), None, &stored, 0)).unwrap();
        assert_eq!(restored.ckpt_seq, 0);
        assert_eq!(restored.left_watermark_ms, 1_500);
        assert_eq!(restored.windows.len(), 1);
        assert_eq!(restored.events_restored, 500);
        // The restored partition holds exactly the original events.
        let chain = dp2.verifier_keys(TenantId(1)).unwrap();
        let msg = in_tee(|| dp2.egress_for(TenantId(1), restored.windows[0].left[0])).unwrap();
        assert_eq!(msg.open_with(chain.latest()).unwrap(), Event::slice_to_bytes(&events));
        // Prefix + post-restore suffix stitch into one verifiable trail
        // whose resume record matches the sealed checkpoint.
        let mut trail = prefix;
        trail.extend(dp2.drain_audit_segments_for(TenantId(1)).unwrap());
        let records = sbt_attest::verify_tenant_trail(&trail, TenantId(1), &chain).unwrap();
        assert!(records
            .iter()
            .any(|r| matches!(r, AuditRecord::Checkpoint { resumed: true, seq: 0, .. })));
        // Restoring over a live tenant is refused.
        assert!(in_tee(|| dp2.restore_tenant(TenantId(1), None, &stored, 0)).is_err());
    }

    #[test]
    fn restore_from_a_stale_checkpoint_is_detected_by_both_verifiers() {
        let dp = plane();
        dp.register_tenant(TenantId(1), None).unwrap();
        let events: Vec<Event> = (0..64).map(|i| Event::new(i, i, i)).collect();
        let a = ingest_events_for(&dp, TenantId(1), &events);
        let manifest = CheckpointManifest {
            windows: vec![WindowManifest { win_no: 0, left: vec![a.opaque], right: Vec::new() }],
            ..CheckpointManifest::default()
        };
        let stale = in_tee(|| dp.checkpoint_tenant(TenantId(1), &manifest)).unwrap();
        let _ = ingest_events_for(&dp, TenantId(1), &events);
        let fresh = in_tee(|| dp.checkpoint_tenant(TenantId(1), &manifest)).unwrap();
        assert_eq!((stale.ckpt_seq, fresh.ckpt_seq), (0, 1));
        let prefix = dp.drain_audit_segments_for(TenantId(1)).unwrap();

        // Restart from the *stale* snapshot: its suffix forks the sealed
        // history, so stitching the cloud's full prefix with the resumed
        // suffix cannot produce one verifiable trail.
        let dp2 = plane();
        in_tee(|| dp2.restore_tenant(TenantId(1), None, &stale, 0)).unwrap();
        let mut trail = prefix;
        trail.extend(dp2.drain_audit_segments_for(TenantId(1)).unwrap());
        let chain = dp2.verifier_keys(TenantId(1)).unwrap();
        let err = sbt_attest::verify_tenant_trail(&trail, TenantId(1), &chain).unwrap_err();
        // The parallel verifier reports the identical failure.
        struct Inline;
        impl sbt_attest::VerifyPool for Inline {
            fn workers(&self) -> usize {
                4
            }
            fn run(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'static>>) {
                for t in tasks {
                    t();
                }
            }
        }
        let arc = Arc::new(trail);
        let perr = sbt_attest::verify_tenant_trail_parallel_min_shard(
            &arc,
            TenantId(1),
            &chain,
            &Inline,
            0,
        )
        .unwrap_err();
        assert_eq!(perr, err);
    }

    #[test]
    fn retired_epochs_vanish_from_verifier_keys_and_refuse_old_snapshots() {
        let dp = plane();
        dp.register_tenant(TenantId(1), None).unwrap();
        let manifest = CheckpointManifest::default();
        let old = in_tee(|| dp.checkpoint_tenant(TenantId(1), &manifest)).unwrap();
        assert_eq!(old.epoch, 0);
        // The horizon can never pass the newest checkpoint's epoch: that
        // would make the tenant unrecoverable.
        assert!(dp.retire_epochs_before(TenantId(1), 1).is_err());
        dp.rekey_tenant(TenantId(1)).unwrap();
        let fresh = in_tee(|| dp.checkpoint_tenant(TenantId(1), &manifest)).unwrap();
        assert_eq!(fresh.epoch, 1);
        assert_eq!(dp.retire_epochs_before(TenantId(1), 1).unwrap(), 1);
        assert_eq!(dp.tenant_retired_before(TenantId(1)).unwrap(), 1);
        // Epoch 0's key material is gone from the verifier keychain.
        assert_eq!(dp.verifier_keys(TenantId(1)).unwrap().oldest_epoch(), 1);
        // A fresh enclave refuses the retired snapshot and takes the new one.
        let dp2 = plane();
        assert_eq!(
            in_tee(|| dp2.restore_tenant(TenantId(1), None, &old, 1)).unwrap_err(),
            DataPlaneError::RetiredEpoch { epoch: 0, horizon: 1 }
        );
        let restored = in_tee(|| dp2.restore_tenant(TenantId(1), None, &fresh, 1)).unwrap();
        assert_eq!(restored.epoch, 1);
        assert_eq!(dp2.tenant_retired_before(TenantId(1)).unwrap(), 1);
        // A snapshot sealed *after* retirement carries the horizon itself,
        // so even a caller with no vault metadata re-adopts it.
        let carried = in_tee(|| dp.checkpoint_tenant(TenantId(1), &manifest)).unwrap();
        let dp3 = plane();
        in_tee(|| dp3.restore_tenant(TenantId(1), None, &carried, 0)).unwrap();
        assert_eq!(dp3.tenant_retired_before(TenantId(1)).unwrap(), 1);
    }

    #[test]
    fn deregister_purges_telemetry_rows_with_the_tenant() {
        let dp = plane();
        dp.telemetry().set_enabled(true);
        dp.register_tenant(TenantId(1), None).unwrap();
        let events: Vec<Event> = (0..16).map(|i| Event::new(i, i, 0)).collect();
        let _ = ingest_events_for(&dp, TenantId(1), &events);
        in_tee(|| dp.checkpoint_tenant(TenantId(1), &CheckpointManifest::default())).unwrap();
        assert!(dp.telemetry().last_checkpoint_age_nanos(1).is_some());
        dp.deregister_tenant(TenantId(1), DepartureReason::Drained).unwrap();
        // Gauge, latency rows and flight ring all went with the tenant.
        assert!(dp.telemetry().last_checkpoint_age_nanos(1).is_none());
        let snap = dp.telemetry().snapshot();
        assert!(!snap.counters.iter().any(|c| c.name.starts_with("checkpoint.t1.")));
        assert!(snap.latencies.iter().all(|row| row.tenant != 1));
    }
}
