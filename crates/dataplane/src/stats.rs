//! Data-plane execution statistics.
//!
//! The Figure 9 breakdown separates, for a GroupBy operator, the time spent
//! in actual computation inside the TEE, in world switches, and in TEE
//! memory management, as a function of the input batch size. The data plane
//! measures the first and third per invocation (the switch cost lives in the
//! `sbt-tz` counters) and accumulates them here.

use std::sync::atomic::{AtomicU64, Ordering};

/// Breakdown of one invocation's cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InvocationBreakdown {
    /// Nanoseconds spent executing the primitive itself.
    pub compute_nanos: u64,
    /// Simulated nanoseconds spent committing pages for the outputs.
    pub memory_nanos: u64,
}

/// Aggregate counters over a data plane's lifetime.
#[derive(Debug, Default)]
pub struct DataPlaneStats {
    /// Total primitive invocations.
    pub invocations: AtomicU64,
    /// Total nanoseconds of primitive compute.
    pub compute_nanos: AtomicU64,
    /// Total simulated nanoseconds of TEE memory management.
    pub memory_nanos: AtomicU64,
    /// Total events ingested.
    pub events_ingested: AtomicU64,
    /// Total bytes ingested (plaintext size).
    pub bytes_ingested: AtomicU64,
    /// Total nanoseconds spent decrypting ingress data.
    pub decrypt_nanos: AtomicU64,
    /// Total results egressed.
    pub egress_count: AtomicU64,
    /// Total audit records generated.
    pub audit_records: AtomicU64,
}

impl DataPlaneStats {
    /// Create zeroed stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one primitive invocation's breakdown.
    pub fn record_invocation(&self, breakdown: InvocationBreakdown) {
        self.invocations.fetch_add(1, Ordering::Relaxed);
        self.compute_nanos.fetch_add(breakdown.compute_nanos, Ordering::Relaxed);
        self.memory_nanos.fetch_add(breakdown.memory_nanos, Ordering::Relaxed);
    }

    /// Record an ingress of `events` events / `bytes` bytes taking
    /// `decrypt_nanos` to decrypt (zero for cleartext links).
    pub fn record_ingress(&self, events: u64, bytes: u64, decrypt_nanos: u64) {
        self.events_ingested.fetch_add(events, Ordering::Relaxed);
        self.bytes_ingested.fetch_add(bytes, Ordering::Relaxed);
        self.decrypt_nanos.fetch_add(decrypt_nanos, Ordering::Relaxed);
    }

    /// Record one egress.
    pub fn record_egress(&self) {
        self.egress_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` audit records generated.
    pub fn record_audit(&self, n: u64) {
        self.audit_records.fetch_add(n, Ordering::Relaxed);
    }

    /// Snapshot of the counters.
    pub fn snapshot(&self) -> DataPlaneSnapshot {
        DataPlaneSnapshot {
            invocations: self.invocations.load(Ordering::Relaxed),
            compute_nanos: self.compute_nanos.load(Ordering::Relaxed),
            memory_nanos: self.memory_nanos.load(Ordering::Relaxed),
            events_ingested: self.events_ingested.load(Ordering::Relaxed),
            bytes_ingested: self.bytes_ingested.load(Ordering::Relaxed),
            decrypt_nanos: self.decrypt_nanos.load(Ordering::Relaxed),
            egress_count: self.egress_count.load(Ordering::Relaxed),
            audit_records: self.audit_records.load(Ordering::Relaxed),
        }
    }
}

impl sbt_telemetry::CounterSource for DataPlaneStats {
    fn section(&self) -> String {
        "plane".to_string()
    }

    fn collect(&self, emit: &mut dyn FnMut(&str, i64)) {
        let s = self.snapshot();
        emit("invocations", s.invocations as i64);
        emit("compute_nanos", s.compute_nanos as i64);
        emit("memory_nanos", s.memory_nanos as i64);
        emit("events_ingested", s.events_ingested as i64);
        emit("bytes_ingested", s.bytes_ingested as i64);
        emit("decrypt_nanos", s.decrypt_nanos as i64);
        emit("egress_count", s.egress_count as i64);
        emit("audit_records", s.audit_records as i64);
    }
}

/// Point-in-time copy of [`DataPlaneStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DataPlaneSnapshot {
    /// Total primitive invocations.
    pub invocations: u64,
    /// Total nanoseconds of primitive compute.
    pub compute_nanos: u64,
    /// Total simulated nanoseconds of TEE memory management.
    pub memory_nanos: u64,
    /// Total events ingested.
    pub events_ingested: u64,
    /// Total bytes ingested.
    pub bytes_ingested: u64,
    /// Total nanoseconds spent decrypting ingress data.
    pub decrypt_nanos: u64,
    /// Total results egressed.
    pub egress_count: u64,
    /// Total audit records generated.
    pub audit_records: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = DataPlaneStats::new();
        s.record_invocation(InvocationBreakdown { compute_nanos: 100, memory_nanos: 10 });
        s.record_invocation(InvocationBreakdown { compute_nanos: 50, memory_nanos: 5 });
        s.record_ingress(1000, 12_000, 77);
        s.record_egress();
        s.record_audit(3);
        let snap = s.snapshot();
        assert_eq!(snap.invocations, 2);
        assert_eq!(snap.compute_nanos, 150);
        assert_eq!(snap.memory_nanos, 15);
        assert_eq!(snap.events_ingested, 1000);
        assert_eq!(snap.bytes_ingested, 12_000);
        assert_eq!(snap.decrypt_nanos, 77);
        assert_eq!(snap.egress_count, 1);
        assert_eq!(snap.audit_records, 3);
    }

    #[test]
    fn default_snapshot_is_zero() {
        assert_eq!(DataPlaneStats::new().snapshot(), DataPlaneSnapshot::default());
    }
}
