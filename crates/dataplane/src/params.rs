//! Parameters and outputs of the single `InvokePrimitive` entry function.
//!
//! The interface is deliberately narrow and shared-nothing: the control
//! plane passes plain values (primitive identity, opaque references, scalar
//! parameters, encoded hints) and receives plain values back (opaque
//! references plus per-output metadata). No pointers or shared state cross
//! the boundary.

use crate::opaque::OpaqueRef;
use sbt_types::{Duration, EventTime, WindowId, WindowSpec};

/// Scalar parameters a primitive may need beyond its input arrays.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PrimitiveParams {
    /// No parameters.
    None,
    /// Window specification for `Segment`.
    Window(WindowSpec),
    /// Value band for `FilterBand` (inclusive).
    Band {
        /// Lower bound (inclusive).
        lo: u32,
        /// Upper bound (inclusive).
        hi: u32,
    },
    /// Event-time range for `FilterTime` (half-open).
    TimeRange {
        /// Start (inclusive).
        start: EventTime,
        /// End (exclusive).
        end: EventTime,
    },
    /// K for `TopK` / `TopKPerKey`.
    K(usize),
    /// Sampling period for `Sample`.
    Every(usize),
}

impl PrimitiveParams {
    /// Convenience constructor for 1-second fixed windows (the evaluation's
    /// default).
    pub fn one_second_windows() -> Self {
        PrimitiveParams::Window(WindowSpec::fixed(Duration::from_secs(1)))
    }
}

/// Metadata about one output uArray returned from an invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvokeOutput {
    /// The opaque reference the control plane uses to name this output.
    pub opaque: OpaqueRef,
    /// Number of records in the output.
    pub len: usize,
    /// The window this output belongs to, if the primitive assigned one
    /// (only `Segment` does).
    pub window: Option<WindowId>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_second_window_param() {
        match PrimitiveParams::one_second_windows() {
            PrimitiveParams::Window(WindowSpec::Fixed { size }) => {
                assert_eq!(size, Duration::from_secs(1));
            }
            other => panic!("unexpected params {other:?}"),
        }
    }

    #[test]
    fn params_compare_by_value() {
        assert_eq!(PrimitiveParams::Band { lo: 1, hi: 2 }, PrimitiveParams::Band { lo: 1, hi: 2 });
        assert_ne!(PrimitiveParams::K(3), PrimitiveParams::K(4));
    }
}
