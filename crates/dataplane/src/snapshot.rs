//! Sealed per-tenant checkpoint snapshots (crash recovery).
//!
//! A checkpoint captures everything a tenant needs to resume mid-stream
//! after the enclave is killed: its windowed state (the event arrays of
//! every not-yet-fired window), watermarks, ingest/egress counters, and
//! the audit-trail cursor the resumed log continues from. The plaintext
//! is serialized to the versioned `SBTC` wire format below, hashed
//! (the hash is chained into the signed audit trail through an
//! [`sbt_attest::AuditRecord::Checkpoint`] record, so the cloud detects
//! rollback to a stale snapshot), then sealed — AES-CTR encrypted and
//! HMAC-authenticated under keys derived from the platform master secret
//! per `(tenant, epoch, ckpt_seq)` — before it leaves the enclave. No
//! plaintext state ever crosses the boundary, and untrusted storage can
//! at worst withhold or corrupt a snapshot, which unsealing rejects.
//!
//! # Snapshot plaintext wire format (`SBTC` v1)
//!
//! ```text
//! magic            4 B   "SBTC"
//! version          u16   1
//! tenant           u32
//! ckpt_seq         u64   monotone per-tenant checkpoint counter
//! epoch            u32   key epoch the snapshot is sealed under
//! retired_before   u32   epoch-retirement horizon at seal time
//! audit_cursor     u64   segment seq the resumed audit log continues at
//! egress_seq       u64
//! events_ingested  u64
//! bytes_ingested   u64
//! left_watermark   u64   milliseconds
//! right_watermark  u64   milliseconds
//! next_unexecuted  u32   first window not yet fired
//! next_uarray_id   u64   id floor for the restored plane's allocator
//! n_windows        u32
//! per window:
//!   win_no         u32
//!   n_left         u32, then per array: n_events u32 + 12 B events
//!   n_right        u32, same layout
//! ```
//!
//! All integers little-endian. Parsing fails closed: any truncation,
//! length mismatch or bad magic/version rejects the whole snapshot.

use crate::error::DataPlaneError;
use crate::opaque::OpaqueRef;
use sbt_crypto::{sha256, AesCtr, MasterSecret, Signature};
use sbt_types::{Event, TenantId, EVENT_BYTES};

/// Magic opening every snapshot plaintext.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"SBTC";
/// Current snapshot wire-format version.
pub const SNAPSHOT_VERSION: u16 = 1;

/// One window's partitions as the control plane tracks them: the opaque
/// references of each stream side, in arrival order.
#[derive(Debug, Clone)]
pub struct WindowManifest {
    /// The window number.
    pub win_no: u32,
    /// Primary-stream partition references.
    pub left: Vec<OpaqueRef>,
    /// Secondary-stream partition references (joins only).
    pub right: Vec<OpaqueRef>,
}

/// What the control plane asks the data plane to checkpoint: its
/// window-state bookkeeping at a quiescent point (no window mid-fire).
#[derive(Debug, Clone, Default)]
pub struct CheckpointManifest {
    /// Primary-stream watermark, milliseconds.
    pub left_watermark_ms: u64,
    /// Secondary-stream watermark, milliseconds.
    pub right_watermark_ms: u64,
    /// First window not yet executed.
    pub next_unexecuted: u32,
    /// Pending windows and their partition references.
    pub windows: Vec<WindowManifest>,
}

/// A sealed snapshot: safe to hand to untrusted storage. The header
/// fields are authenticated by the MAC (and bound into the sealing-key
/// derivation), so tampering with any of them fails the unseal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedSnapshot {
    /// The owning tenant.
    pub tenant: u32,
    /// The checkpoint's monotone sequence number.
    pub ckpt_seq: u64,
    /// Key epoch the snapshot is sealed under.
    pub epoch: u32,
    /// AES-CTR ciphertext of the `SBTC` plaintext.
    pub ciphertext: Vec<u8>,
    /// HMAC over `tenant ‖ ckpt_seq ‖ epoch ‖ ciphertext`.
    pub mac: Signature,
}

impl SealedSnapshot {
    /// Total sealed size in bytes (as stored).
    pub fn len(&self) -> usize {
        4 + 8 + 4 + 4 + self.ciphertext.len() + 32
    }

    /// Whether the ciphertext is empty (never true for a real snapshot).
    pub fn is_empty(&self) -> bool {
        self.ciphertext.is_empty()
    }

    /// Serialize for untrusted storage.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.len());
        out.extend_from_slice(&self.tenant.to_le_bytes());
        out.extend_from_slice(&self.ckpt_seq.to_le_bytes());
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&(self.ciphertext.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.ciphertext);
        out.extend_from_slice(&self.mac.0);
        out
    }

    /// Parse stored bytes. Fails closed on truncation or trailing bytes
    /// (a torn write is not a snapshot).
    pub fn from_bytes(bytes: &[u8]) -> Result<SealedSnapshot, DataPlaneError> {
        let mut cur = Cursor::new(bytes);
        let tenant = cur.u32()?;
        let ckpt_seq = cur.u64()?;
        let epoch = cur.u32()?;
        let ct_len = cur.u32()? as usize;
        let ciphertext = cur.bytes(ct_len)?.to_vec();
        let mac = Signature(cur.bytes(32)?.try_into().expect("32 bytes"));
        if !cur.at_end() {
            return Err(DataPlaneError::SnapshotRejected("trailing bytes after snapshot"));
        }
        Ok(SealedSnapshot { tenant, ckpt_seq, epoch, ciphertext, mac })
    }
}

/// One restored window handed back to the control plane: freshly minted
/// references to the re-committed partition arrays.
#[derive(Debug, Clone)]
pub struct RestoredWindow {
    /// The window number.
    pub win_no: u32,
    /// Primary-stream partition references.
    pub left: Vec<OpaqueRef>,
    /// Secondary-stream partition references.
    pub right: Vec<OpaqueRef>,
}

/// The outcome of [`crate::DataPlane::restore_tenant`]: everything the
/// control plane needs to adopt the recovered state and resume serving.
#[derive(Debug, Clone)]
pub struct RestoredTenant {
    /// The restored tenant.
    pub tenant: TenantId,
    /// The checkpoint the tenant resumed from.
    pub ckpt_seq: u64,
    /// The key epoch it resumed under.
    pub epoch: u32,
    /// Primary-stream watermark at checkpoint time, milliseconds.
    pub left_watermark_ms: u64,
    /// Secondary-stream watermark at checkpoint time, milliseconds.
    pub right_watermark_ms: u64,
    /// First window not yet executed at checkpoint time.
    pub next_unexecuted: u32,
    /// Restored windows with fresh references.
    pub windows: Vec<RestoredWindow>,
    /// Total events re-committed into secure memory.
    pub events_restored: u64,
}

/// Decoded snapshot plaintext — never leaves the enclave.
pub(crate) struct SnapshotPlaintext {
    pub tenant: u32,
    pub ckpt_seq: u64,
    pub epoch: u32,
    pub retired_before: u32,
    pub audit_cursor: u64,
    pub egress_seq: u64,
    pub events_ingested: u64,
    pub bytes_ingested: u64,
    pub left_watermark_ms: u64,
    pub right_watermark_ms: u64,
    pub next_unexecuted: u32,
    pub next_uarray_id: u64,
    pub windows: Vec<SnapshotWindow>,
}

/// One window's materialized partitions inside a decoded snapshot.
pub(crate) struct SnapshotWindow {
    pub win_no: u32,
    pub left: Vec<Vec<Event>>,
    pub right: Vec<Vec<Event>>,
}

impl SnapshotPlaintext {
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(256);
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.tenant.to_le_bytes());
        out.extend_from_slice(&self.ckpt_seq.to_le_bytes());
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&self.retired_before.to_le_bytes());
        out.extend_from_slice(&self.audit_cursor.to_le_bytes());
        out.extend_from_slice(&self.egress_seq.to_le_bytes());
        out.extend_from_slice(&self.events_ingested.to_le_bytes());
        out.extend_from_slice(&self.bytes_ingested.to_le_bytes());
        out.extend_from_slice(&self.left_watermark_ms.to_le_bytes());
        out.extend_from_slice(&self.right_watermark_ms.to_le_bytes());
        out.extend_from_slice(&self.next_unexecuted.to_le_bytes());
        out.extend_from_slice(&self.next_uarray_id.to_le_bytes());
        out.extend_from_slice(&(self.windows.len() as u32).to_le_bytes());
        for w in &self.windows {
            out.extend_from_slice(&w.win_no.to_le_bytes());
            for side in [&w.left, &w.right] {
                out.extend_from_slice(&(side.len() as u32).to_le_bytes());
                for events in side.iter() {
                    out.extend_from_slice(&(events.len() as u32).to_le_bytes());
                    out.extend_from_slice(&Event::slice_to_bytes(events));
                }
            }
        }
        out
    }

    pub(crate) fn decode(bytes: &[u8]) -> Result<SnapshotPlaintext, DataPlaneError> {
        let mut cur = Cursor::new(bytes);
        if cur.bytes(4)? != SNAPSHOT_MAGIC {
            return Err(DataPlaneError::SnapshotRejected("bad snapshot magic"));
        }
        if cur.u16()? != SNAPSHOT_VERSION {
            return Err(DataPlaneError::SnapshotRejected("unsupported snapshot version"));
        }
        let tenant = cur.u32()?;
        let ckpt_seq = cur.u64()?;
        let epoch = cur.u32()?;
        let retired_before = cur.u32()?;
        let audit_cursor = cur.u64()?;
        let egress_seq = cur.u64()?;
        let events_ingested = cur.u64()?;
        let bytes_ingested = cur.u64()?;
        let left_watermark_ms = cur.u64()?;
        let right_watermark_ms = cur.u64()?;
        let next_unexecuted = cur.u32()?;
        let next_uarray_id = cur.u64()?;
        let n_windows = cur.u32()? as usize;
        let mut windows = Vec::new();
        for _ in 0..n_windows {
            let win_no = cur.u32()?;
            let mut sides: [Vec<Vec<Event>>; 2] = [Vec::new(), Vec::new()];
            for side in &mut sides {
                let n_arrays = cur.u32()? as usize;
                for _ in 0..n_arrays {
                    let n_events = cur.u32()? as usize;
                    let raw = cur.bytes(n_events * EVENT_BYTES)?;
                    side.push(Event::slice_from_bytes(raw));
                }
            }
            let [left, right] = sides;
            windows.push(SnapshotWindow { win_no, left, right });
        }
        if !cur.at_end() {
            return Err(DataPlaneError::SnapshotRejected("trailing bytes in snapshot"));
        }
        Ok(SnapshotPlaintext {
            tenant,
            ckpt_seq,
            epoch,
            retired_before,
            audit_cursor,
            egress_seq,
            events_ingested,
            bytes_ingested,
            left_watermark_ms,
            right_watermark_ms,
            next_unexecuted,
            next_uarray_id,
            windows,
        })
    }
}

/// Seal `plaintext`: AES-CTR under the `(tenant, epoch, ckpt_seq)`-derived
/// sealing keys (the checkpoint sequence is part of the derivation, so no
/// two checkpoints ever share a keystream), MAC over the header and
/// ciphertext. Returns the sealed container and the SHA-256 of the
/// plaintext (what the audit trail chains).
pub(crate) fn seal_snapshot(
    master: &MasterSecret,
    plain: &SnapshotPlaintext,
) -> (SealedSnapshot, [u8; 32]) {
    let bytes = plain.encode();
    let hash = sha256(&bytes);
    let keys = master.sealing_keys(plain.tenant, plain.epoch, plain.ckpt_seq);
    let mut ciphertext = bytes;
    AesCtr::new(&keys.key, &keys.nonce).apply_keystream_at(&mut ciphertext, 0);
    let mac = keys.mac.sign_parts(&[
        &plain.tenant.to_le_bytes(),
        &plain.ckpt_seq.to_le_bytes(),
        &plain.epoch.to_le_bytes(),
        &ciphertext,
    ]);
    (
        SealedSnapshot {
            tenant: plain.tenant,
            ckpt_seq: plain.ckpt_seq,
            epoch: plain.epoch,
            ciphertext,
            mac,
        },
        hash,
    )
}

/// Unseal and decode a snapshot, failing closed on any authentication or
/// parse failure. Returns the plaintext and its SHA-256 (for matching
/// against the trail's sealed-checkpoint record).
pub(crate) fn unseal_snapshot(
    master: &MasterSecret,
    sealed: &SealedSnapshot,
) -> Result<(SnapshotPlaintext, [u8; 32]), DataPlaneError> {
    let keys = master.sealing_keys(sealed.tenant, sealed.epoch, sealed.ckpt_seq);
    let authentic = keys.mac.verify_parts(
        &[
            &sealed.tenant.to_le_bytes(),
            &sealed.ckpt_seq.to_le_bytes(),
            &sealed.epoch.to_le_bytes(),
            &sealed.ciphertext,
        ],
        &sealed.mac,
    );
    if !authentic {
        return Err(DataPlaneError::SnapshotRejected("snapshot authentication failed"));
    }
    let mut bytes = sealed.ciphertext.clone();
    AesCtr::new(&keys.key, &keys.nonce).apply_keystream_at(&mut bytes, 0);
    let hash = sha256(&bytes);
    let plain = SnapshotPlaintext::decode(&bytes)?;
    // The authenticated header must agree with the sealed body.
    if plain.tenant != sealed.tenant
        || plain.ckpt_seq != sealed.ckpt_seq
        || plain.epoch != sealed.epoch
    {
        return Err(DataPlaneError::SnapshotRejected("snapshot header mismatch"));
    }
    Ok((plain, hash))
}

/// Bounds-checked little-endian reader that fails closed.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], DataPlaneError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(DataPlaneError::SnapshotRejected("truncated snapshot"))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u16(&mut self) -> Result<u16, DataPlaneError> {
        Ok(u16::from_le_bytes(self.bytes(2)?.try_into().expect("2 bytes")))
    }

    fn u32(&mut self) -> Result<u32, DataPlaneError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, DataPlaneError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().expect("8 bytes")))
    }

    fn at_end(&self) -> bool {
        self.pos == self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SnapshotPlaintext {
        SnapshotPlaintext {
            tenant: 3,
            ckpt_seq: 7,
            epoch: 2,
            retired_before: 1,
            audit_cursor: 42,
            egress_seq: 5,
            events_ingested: 1000,
            bytes_ingested: 12_000,
            left_watermark_ms: 9_000,
            right_watermark_ms: 0,
            next_unexecuted: 9,
            next_uarray_id: 77,
            windows: vec![
                SnapshotWindow {
                    win_no: 9,
                    left: vec![
                        (0..10u32).map(|i| Event::new(i, i * 2, 9_000 + i)).collect(),
                        vec![Event::new(99, 1, 9_500)],
                    ],
                    right: Vec::new(),
                },
                SnapshotWindow { win_no: 10, left: Vec::new(), right: Vec::new() },
            ],
        }
    }

    #[test]
    fn plaintext_round_trips() {
        let plain = sample();
        let decoded = SnapshotPlaintext::decode(&plain.encode()).unwrap();
        assert_eq!(decoded.tenant, 3);
        assert_eq!(decoded.ckpt_seq, 7);
        assert_eq!(decoded.audit_cursor, 42);
        assert_eq!(decoded.windows.len(), 2);
        assert_eq!(decoded.windows[0].left.len(), 2);
        assert_eq!(decoded.windows[0].left[0], plain.windows[0].left[0]);
        assert_eq!(decoded.windows[1].win_no, 10);
    }

    #[test]
    fn seal_then_unseal_round_trips_and_hashes_match() {
        let master = MasterSecret::demo();
        let (sealed, hash) = seal_snapshot(&master, &sample());
        assert_eq!(sealed.tenant, 3);
        let (plain, unhash) = unseal_snapshot(&master, &sealed).unwrap();
        assert_eq!(unhash, hash);
        assert_eq!(plain.windows[0].left[1], vec![Event::new(99, 1, 9_500)]);
        // The ciphertext is not the plaintext.
        assert_ne!(sealed.ciphertext, sample().encode());
    }

    #[test]
    fn corruption_fails_closed() {
        let master = MasterSecret::demo();
        let (sealed, _) = seal_snapshot(&master, &sample());
        // Bit flip in the ciphertext.
        let mut flipped = sealed.clone();
        flipped.ciphertext[10] ^= 0x40;
        assert!(matches!(
            unseal_snapshot(&master, &flipped),
            Err(DataPlaneError::SnapshotRejected(_))
        ));
        // Truncated ciphertext (torn write).
        let mut torn = sealed.clone();
        torn.ciphertext.truncate(torn.ciphertext.len() / 2);
        assert!(unseal_snapshot(&master, &torn).is_err());
        // Tampered header: claims another tenant / epoch / sequence.
        for tamper in [
            SealedSnapshot { tenant: 4, ..sealed.clone() },
            SealedSnapshot { epoch: 3, ..sealed.clone() },
            SealedSnapshot { ckpt_seq: 8, ..sealed.clone() },
        ] {
            assert!(unseal_snapshot(&master, &tamper).is_err());
        }
        // The wrong master secret cannot open it at all.
        let other = MasterSecret::new(b"not the platform secret");
        assert!(unseal_snapshot(&other, &sealed).is_err());
    }

    #[test]
    fn stored_bytes_round_trip() {
        let master = MasterSecret::demo();
        let (sealed, _) = seal_snapshot(&master, &sample());
        let bytes = sealed.to_bytes();
        assert_eq!(bytes.len(), sealed.len());
        assert_eq!(SealedSnapshot::from_bytes(&bytes).unwrap(), sealed);
        // Truncation at every prefix length fails closed, never panics.
        for cut in [0, 3, 10, bytes.len() / 2, bytes.len() - 1] {
            assert!(SealedSnapshot::from_bytes(&bytes[..cut]).is_err());
        }
        // Trailing garbage is rejected too.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(SealedSnapshot::from_bytes(&padded).is_err());
    }
}
