//! Typed storage for protected record arrays inside the TEE.
//!
//! Different primitives produce different record layouts (raw events, per-key
//! aggregates, key/value pairs, plain scalars). All of them are held in
//! uArrays; this module wraps the typed uArrays in one enum so the data
//! plane can keep a single reference table while every array stays a flat,
//! homogeneous buffer.

use sbt_types::{Event, KeyAgg, KeyValue};
use sbt_uarray::{TeePager, UArray, UArrayId};

use crate::error::DataPlaneError;

/// A protected record array of one of the layouts the primitives exchange.
#[derive(Debug)]
pub enum StoredData {
    /// Raw or derived events (12-byte layout).
    Events(UArray<Event>),
    /// Per-key aggregates (key, sum, count).
    Aggs(UArray<KeyAgg>),
    /// Key/value pairs (e.g. per-key results such as top-k entries).
    Pairs(UArray<KeyValue>),
    /// Plain 64-bit scalars (window totals, distinct keys, top-k values).
    Scalars(UArray<u64>),
}

impl StoredData {
    /// Build an events array from a slice.
    pub fn from_events(
        id: UArrayId,
        events: &[Event],
        pager: &TeePager,
    ) -> Result<StoredData, DataPlaneError> {
        let mut ua = UArray::with_reservation(id, events.len());
        ua.extend_from_slice(events, pager)?;
        ua.seal();
        Ok(StoredData::Events(ua))
    }

    /// Build an events array of exactly `items` records produced in place by
    /// `fill` — the zero-copy ingest path. Pages for the whole extent are
    /// committed before `fill` runs, so quota exhaustion fails cleanly with
    /// nothing allocated and `fill` never invoked.
    pub fn events_exact(
        id: UArrayId,
        items: usize,
        pager: &TeePager,
        fill: impl FnOnce(&mut Vec<Event>),
    ) -> Result<StoredData, DataPlaneError> {
        Ok(StoredData::Events(UArray::produce_exact(id, items, pager, fill)?))
    }

    /// Build an aggregate array from a slice.
    pub fn from_aggs(
        id: UArrayId,
        aggs: &[KeyAgg],
        pager: &TeePager,
    ) -> Result<StoredData, DataPlaneError> {
        let mut ua = UArray::with_reservation(id, aggs.len());
        ua.extend_from_slice(aggs, pager)?;
        ua.seal();
        Ok(StoredData::Aggs(ua))
    }

    /// Build a key/value-pair array from a slice.
    pub fn from_pairs(
        id: UArrayId,
        pairs: &[KeyValue],
        pager: &TeePager,
    ) -> Result<StoredData, DataPlaneError> {
        let mut ua = UArray::with_reservation(id, pairs.len());
        ua.extend_from_slice(pairs, pager)?;
        ua.seal();
        Ok(StoredData::Pairs(ua))
    }

    /// Build a scalar array from a slice.
    pub fn from_scalars(
        id: UArrayId,
        scalars: &[u64],
        pager: &TeePager,
    ) -> Result<StoredData, DataPlaneError> {
        let mut ua = UArray::with_reservation(id, scalars.len());
        ua.extend_from_slice(scalars, pager)?;
        ua.seal();
        Ok(StoredData::Scalars(ua))
    }

    /// The internal uArray id.
    pub fn id(&self) -> UArrayId {
        match self {
            StoredData::Events(a) => a.id(),
            StoredData::Aggs(a) => a.id(),
            StoredData::Pairs(a) => a.id(),
            StoredData::Scalars(a) => a.id(),
        }
    }

    /// Number of records held.
    pub fn len(&self) -> usize {
        match self {
            StoredData::Events(a) => a.len(),
            StoredData::Aggs(a) => a.len(),
            StoredData::Pairs(a) => a.len(),
            StoredData::Scalars(a) => a.len(),
        }
    }

    /// Whether the array holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes of secure memory committed for the array.
    pub fn committed_bytes(&self) -> u64 {
        match self {
            StoredData::Events(a) => a.committed_bytes(),
            StoredData::Aggs(a) => a.committed_bytes(),
            StoredData::Pairs(a) => a.committed_bytes(),
            StoredData::Scalars(a) => a.committed_bytes(),
        }
    }

    /// Simulated nanoseconds spent committing pages for the array.
    pub fn paging_nanos(&self) -> u64 {
        match self {
            StoredData::Events(a) => a.paging_nanos(),
            StoredData::Aggs(a) => a.paging_nanos(),
            StoredData::Pairs(a) => a.paging_nanos(),
            StoredData::Scalars(a) => a.paging_nanos(),
        }
    }

    /// View as events, or fail with a type error.
    pub fn as_events(&self) -> Result<&[Event], DataPlaneError> {
        match self {
            StoredData::Events(a) => Ok(a.as_slice()),
            _ => Err(DataPlaneError::BadArguments("expected an event array")),
        }
    }

    /// View as aggregates, or fail with a type error.
    pub fn as_aggs(&self) -> Result<&[KeyAgg], DataPlaneError> {
        match self {
            StoredData::Aggs(a) => Ok(a.as_slice()),
            _ => Err(DataPlaneError::BadArguments("expected an aggregate array")),
        }
    }

    /// View as key/value pairs, or fail with a type error.
    pub fn as_pairs(&self) -> Result<&[KeyValue], DataPlaneError> {
        match self {
            StoredData::Pairs(a) => Ok(a.as_slice()),
            _ => Err(DataPlaneError::BadArguments("expected a key/value array")),
        }
    }

    /// View as scalars, or fail with a type error.
    pub fn as_scalars(&self) -> Result<&[u64], DataPlaneError> {
        match self {
            StoredData::Scalars(a) => Ok(a.as_slice()),
            _ => Err(DataPlaneError::BadArguments("expected a scalar array")),
        }
    }

    /// Serialize the records to bytes for egress.
    pub fn to_wire_bytes(&self) -> Vec<u8> {
        match self {
            StoredData::Events(a) => Event::slice_to_bytes(a.as_slice()),
            StoredData::Aggs(a) => {
                let mut out = Vec::with_capacity(a.len() * 20);
                for r in a.as_slice() {
                    out.extend_from_slice(&r.key.to_le_bytes());
                    out.extend_from_slice(&r.sum.to_le_bytes());
                    out.extend_from_slice(&r.count.to_le_bytes());
                }
                out
            }
            StoredData::Pairs(a) => {
                let mut out = Vec::with_capacity(a.len() * 12);
                for r in a.as_slice() {
                    out.extend_from_slice(&r.key.to_le_bytes());
                    out.extend_from_slice(&r.value.to_le_bytes());
                }
                out
            }
            StoredData::Scalars(a) => {
                let mut out = Vec::with_capacity(a.len() * 8);
                for r in a.as_slice() {
                    out.extend_from_slice(&r.to_le_bytes());
                }
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbt_tz::{CostModel, SecureMemory, TzStats};
    use std::sync::Arc;

    fn pager() -> TeePager {
        TeePager::new(
            Arc::new(SecureMemory::new(1 << 24, 80)),
            Arc::new(TzStats::new()),
            CostModel::hikey(),
        )
    }

    #[test]
    fn typed_views_enforce_layout() {
        let p = pager();
        let events = vec![Event::new(1, 2, 3)];
        let s = StoredData::from_events(UArrayId(1), &events, &p).unwrap();
        assert_eq!(s.id(), UArrayId(1));
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
        assert_eq!(s.as_events().unwrap(), &events[..]);
        assert!(s.as_aggs().is_err());
        assert!(s.as_scalars().is_err());
        assert!(s.as_pairs().is_err());
    }

    #[test]
    fn all_layouts_round_trip() {
        let p = pager();
        let aggs = vec![KeyAgg::new(1, 10, 2)];
        let pairs = vec![KeyValue::new(3, 30)];
        let scalars = vec![7u64, 8, 9];
        assert_eq!(
            StoredData::from_aggs(UArrayId(2), &aggs, &p).unwrap().as_aggs().unwrap(),
            &aggs[..]
        );
        assert_eq!(
            StoredData::from_pairs(UArrayId(3), &pairs, &p).unwrap().as_pairs().unwrap(),
            &pairs[..]
        );
        assert_eq!(
            StoredData::from_scalars(UArrayId(4), &scalars, &p).unwrap().as_scalars().unwrap(),
            &scalars[..]
        );
    }

    #[test]
    fn wire_bytes_have_expected_sizes() {
        let p = pager();
        let events = vec![Event::new(1, 2, 3); 10];
        let s = StoredData::from_events(UArrayId(1), &events, &p).unwrap();
        assert_eq!(s.to_wire_bytes().len(), 10 * sbt_types::EVENT_BYTES);

        let aggs = vec![KeyAgg::new(1, 2, 3); 4];
        let s = StoredData::from_aggs(UArrayId(2), &aggs, &p).unwrap();
        assert_eq!(s.to_wire_bytes().len(), 4 * 20);

        let scalars = vec![1u64; 5];
        let s = StoredData::from_scalars(UArrayId(3), &scalars, &p).unwrap();
        assert_eq!(s.to_wire_bytes().len(), 5 * 8);
    }

    #[test]
    fn committed_bytes_are_tracked() {
        let p = pager();
        let events = vec![Event::new(0, 0, 0); 10_000];
        let s = StoredData::from_events(UArrayId(1), &events, &p).unwrap();
        assert!(s.committed_bytes() >= (10_000 * sbt_types::EVENT_BYTES) as u64);
        assert_eq!(p.committed_bytes(), s.committed_bytes());
    }

    #[test]
    fn oom_surfaces_as_data_plane_error() {
        let tiny = TeePager::new(
            Arc::new(SecureMemory::new(4096, 80)),
            Arc::new(TzStats::new()),
            CostModel::hikey(),
        );
        let events = vec![Event::new(0, 0, 0); 100_000];
        let err = StoredData::from_events(UArrayId(1), &events, &tiny).unwrap_err();
        assert_eq!(err, DataPlaneError::OutOfSecureMemory);
    }
}
