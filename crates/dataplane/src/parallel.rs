//! Parallel in-enclave ingest: lane planning and the worker-pool hook.
//!
//! One large ingest batch crosses the TEE boundary once; what happens
//! *after* the crossing — decrypting and parsing the payload into the
//! reserved uArray — is embarrassingly parallel because AES-CTR is
//! seekable. This module plans the split (CTR-block- and event-aligned
//! **lanes**) and defines the [`IngestPool`] hook through which the control
//! plane lends the data plane its worker threads without the data plane
//! depending on the engine crate.
//!
//! The paper's data plane is multithreaded inside the TEE (§4: the control
//! plane maps pipeline parallelism onto data-plane threads); here the same
//! executor threads that run operators also run ingest lanes, and the split
//! never adds boundary crossings — all lanes live inside the one ingress
//! invocation.

/// The fixed decrypt window of zero-copy ingest, in bytes.
///
/// A multiple of both event layouts (lcm(12, 16) = 48) and of the AES block
/// size, so every window holds whole events and starts on a CTR block
/// boundary. Lane boundaries are multiples of this same window, which keeps
/// the parallel path's window sequence — and therefore its output —
/// byte-identical to the serial path's.
pub(crate) const WIRE_CHUNK: usize = 4080;

/// Minimum decrypt windows per lane before a batch fans out.
///
/// Cross-thread dispatch (enqueue, wake, cache handoff) costs on the order
/// of decrypting a window, so lanes shorter than a few windows make the
/// batch *slower* — and on oversubscribed hosts they add scheduling jitter
/// to small batches that serial ingest does not have. Batches below
/// `2 * MIN_LANE_CHUNKS` windows stay serial; the adaptive batcher's
/// 100 K-event batches split into full-width lanes of ~36 windows each.
pub(crate) const MIN_LANE_CHUNKS: usize = 4;

/// An in-enclave worker pool the data plane may fan ingest lanes onto.
///
/// Implemented by the engine's executor and installed with
/// [`DataPlane::set_ingest_pool`](crate::DataPlane::set_ingest_pool);
/// without one, ingest stays serial. `run` must execute every task to
/// completion before returning (tasks may run on any thread, including the
/// caller's — a helping join satisfies this).
pub trait IngestPool: Send + Sync {
    /// Worker threads available; `0` or `1` keeps ingest serial.
    fn workers(&self) -> usize;
    /// Run the tasks to completion (barrier).
    fn run(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'static>>);
}

/// Split a payload of `payload_bytes` into at most `workers` lanes of
/// whole [`WIRE_CHUNK`] windows: `(byte_offset, byte_len)` per lane,
/// contiguous and covering the payload exactly.
///
/// Lanes are balanced to within one window of each other, every lane
/// boundary is window-aligned — so a lane holds whole events and starts on
/// a CTR block boundary regardless of the record layout — and no lane is
/// shorter than [`MIN_LANE_CHUNKS`] windows (a payload too small for two
/// such lanes stays serial).
pub(crate) fn lane_plan(payload_bytes: usize, workers: usize) -> Vec<(usize, usize)> {
    let chunks = payload_bytes.div_ceil(WIRE_CHUNK);
    if chunks == 0 {
        return Vec::new();
    }
    let lanes = workers.max(1).min(chunks / MIN_LANE_CHUNKS).max(1);
    let mut plan = Vec::with_capacity(lanes);
    let mut taken_chunks = 0usize;
    for lane in 0..lanes {
        // Distribute the remainder one chunk at a time so lane sizes differ
        // by at most one window.
        let lane_chunks = chunks / lanes + usize::from(lane < chunks % lanes);
        let offset = taken_chunks * WIRE_CHUNK;
        let len = (lane_chunks * WIRE_CHUNK).min(payload_bytes - offset);
        plan.push((offset, len));
        taken_chunks += lane_chunks;
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    fn covers_exactly(plan: &[(usize, usize)], total: usize) {
        let mut expect = 0;
        for &(off, len) in plan {
            assert_eq!(off, expect, "lanes must be contiguous");
            assert!(len > 0, "no empty lanes");
            assert!(off.is_multiple_of(WIRE_CHUNK), "lane start not window-aligned");
            expect = off + len;
        }
        assert_eq!(expect, total, "lanes must cover the payload");
    }

    #[test]
    fn plans_cover_and_align_across_shapes() {
        for total in [1usize, 48, 4080, 4081, 8160, 100_000 * 12, 254 * 16, 7 * 4080 + 1000] {
            for workers in [1usize, 2, 3, 4, 8, 16] {
                let plan = lane_plan(total, workers);
                covers_exactly(&plan, total);
                assert!(plan.len() <= workers.max(1));
                // Balanced to within one window (the unit of the split; the
                // final window may be partial, so compare window counts).
                if plan.len() > 1 {
                    let windows: Vec<usize> =
                        plan.iter().map(|&(_, l)| l.div_ceil(WIRE_CHUNK)).collect();
                    let max = windows.iter().max().unwrap();
                    let min = windows.iter().min().unwrap();
                    assert!(max - min <= 1, "unbalanced: {plan:?}");
                }
            }
        }
    }

    #[test]
    fn small_payloads_stay_serial() {
        // One window or less can only form one lane, whatever the pool width.
        assert_eq!(lane_plan(4080, 8).len(), 1);
        assert_eq!(lane_plan(100, 8).len(), 1);
        assert!(lane_plan(0, 8).is_empty());
    }

    #[test]
    fn fan_out_requires_min_windows_per_lane() {
        // Below 2 * MIN_LANE_CHUNKS windows there is no split: a lane must
        // amortize its dispatch cost over at least MIN_LANE_CHUNKS windows.
        assert_eq!(lane_plan(3 * WIRE_CHUNK, 8).len(), 1);
        assert_eq!(lane_plan((2 * MIN_LANE_CHUNKS - 1) * WIRE_CHUNK, 8).len(), 1);
        assert_eq!(lane_plan(2 * MIN_LANE_CHUNKS * WIRE_CHUNK, 8).len(), 2);
        // Width still caps the split once lanes are long enough.
        assert_eq!(lane_plan(100 * WIRE_CHUNK, 2).len(), 2);
        for &(_, len) in &lane_plan(100 * WIRE_CHUNK, 8) {
            assert!(len >= MIN_LANE_CHUNKS * WIRE_CHUNK);
        }
    }

    #[test]
    fn wide_pools_split_large_batches_per_worker() {
        // The paper's 100 K-event batch (1.2 MB) fills an 8-wide pool.
        let plan = lane_plan(100_000 * 12, 8);
        assert_eq!(plan.len(), 8);
        covers_exactly(&plan, 100_000 * 12);
    }

    #[test]
    fn lane_event_and_block_alignment() {
        // Every lane start must be both whole-event (12 and 16 byte) and
        // CTR-block (16 byte) aligned — guaranteed by window alignment.
        for &(off, _) in &lane_plan(100_000 * 12, 8) {
            assert!(off.is_multiple_of(12));
            assert!(off.is_multiple_of(16));
        }
    }
}
