//! The StreamBox-TZ trusted data plane (§3–§7 of the paper).
//!
//! The data plane is the only component that ever touches plaintext stream
//! data. It runs inside the (simulated) TrustZone secure world and exposes a
//! narrow, shared-nothing interface to the untrusted control plane:
//!
//! * **Ingress** — event batches arrive through trusted IO (or via the OS,
//!   paying a boundary copy), are decrypted with the key shared with the
//!   sources, parsed into a fresh uArray and registered with the allocator.
//!   The control plane receives only an opaque reference.
//! * **Invoke** — the single entry function shared by all 23 trusted
//!   primitives: the control plane names a primitive, passes opaque input
//!   references, optional parameters and optional consumption hints; the
//!   data plane validates the references, runs the primitive, stores the
//!   outputs in new uArrays placed by the hint-guided allocator, and emits
//!   audit records.
//! * **Egress** — results are serialized, AES-encrypted, HMAC-signed and
//!   handed back for upload; an egress audit record is emitted and the audit
//!   log flushed.
//! * **Retire** — the control plane signals that it will no longer consume a
//!   reference; the data plane retires the uArray and reclaims memory in
//!   uGroup order. A bogus or premature retire can at worst waste memory or
//!   delay results — never corrupt them.
//!
//! Opaque references are long random integers; every incoming reference is
//! validated against the table of live references, so fabricated references
//! are rejected (§3.2). All methods assert that they execute in the secure
//! world, which the SMC layer of `sbt-tz` establishes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod egress;
pub mod error;
pub mod opaque;
pub mod parallel;
pub mod params;
pub mod plane;
pub mod snapshot;
pub mod stats;
pub mod store;

pub use egress::EgressMessage;
pub use error::DataPlaneError;
pub use opaque::OpaqueRef;
pub use parallel::IngestPool;
pub use params::{InvokeOutput, PrimitiveParams};
pub use plane::{DataPlane, DataPlaneConfig, TenantMemory, TenantTeardown};
pub use snapshot::{
    CheckpointManifest, RestoredTenant, RestoredWindow, SealedSnapshot, WindowManifest,
};
pub use stats::{DataPlaneStats, InvocationBreakdown};
pub use store::StoredData;
