//! Egress: results leave the TEE encrypted and signed (§3.2).
//!
//! The edge→cloud link is untrusted, so results are AES-128-CTR encrypted
//! with the key shared with the cloud consumer and authenticated with an
//! HMAC computed inside the TEE. The cloud side verifies the MAC before
//! decrypting.

use sbt_crypto::{AesCtr, Key128, Nonce, Signature, SigningKey, TenantKeychain, VerifierKeySet};

/// A result message as uploaded to the cloud.
#[derive(Debug, Clone)]
pub struct EgressMessage {
    /// Monotonic sequence number of the egress within the data plane.
    pub seq: u64,
    /// AES-128-CTR ciphertext of the serialized result records.
    pub ciphertext: Vec<u8>,
    /// HMAC over `(seq || ciphertext)`.
    pub signature: Signature,
}

impl EgressMessage {
    /// Build (encrypt + sign) an egress message inside the TEE.
    pub fn seal(
        seq: u64,
        plaintext: &[u8],
        key: &Key128,
        nonce: &Nonce,
        signing: &SigningKey,
    ) -> Self {
        // Use the sequence number to derive a distinct keystream position per
        // message (each message starts at a fresh block far from others).
        let mut nonce_for_msg = *nonce;
        nonce_for_msg[..8].copy_from_slice(&seq.to_le_bytes());
        let ciphertext = AesCtr::new(key, &nonce_for_msg).encrypt(plaintext);
        let signature = signing.sign(&Self::signed_payload(seq, &ciphertext));
        EgressMessage { seq, ciphertext, signature }
    }

    /// Verify and decrypt on the cloud side. Returns `None` if the MAC does
    /// not verify.
    pub fn open(&self, key: &Key128, nonce: &Nonce, signing: &SigningKey) -> Option<Vec<u8>> {
        if !signing.verify(&Self::signed_payload(self.seq, &self.ciphertext), &self.signature) {
            return None;
        }
        let mut nonce_for_msg = *nonce;
        nonce_for_msg[..8].copy_from_slice(&self.seq.to_le_bytes());
        Some(AesCtr::new(key, &nonce_for_msg).decrypt(&self.ciphertext))
    }

    /// Verify and decrypt under one epoch's verifier keys.
    pub fn open_with(&self, keys: &VerifierKeySet) -> Option<Vec<u8>> {
        self.open(&keys.cloud_key, &keys.cloud_nonce, &keys.signing)
    }

    /// Verify and decrypt by trial over a tenant's keychain, newest epoch
    /// first (the MAC pins the epoch: only the sealing epoch's key opens the
    /// message). Returns the plaintext and the epoch that opened it.
    pub fn open_any(&self, keys: &TenantKeychain) -> Option<(Vec<u8>, u32)> {
        keys.newest_first().find_map(|k| self.open_with(k).map(|plain| (plain, k.epoch)))
    }

    fn signed_payload(seq: u64, ciphertext: &[u8]) -> Vec<u8> {
        let mut payload = Vec::with_capacity(8 + ciphertext.len());
        payload.extend_from_slice(&seq.to_le_bytes());
        payload.extend_from_slice(ciphertext);
        payload
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys() -> (Key128, Nonce, SigningKey) {
        ([1u8; 16], [2u8; 16], SigningKey::new(b"edge-cloud"))
    }

    #[test]
    fn seal_and_open_round_trip() {
        let (key, nonce, signing) = keys();
        let plaintext = b"house 3: 4 high-power plugs".to_vec();
        let msg = EgressMessage::seal(7, &plaintext, &key, &nonce, &signing);
        assert_ne!(msg.ciphertext, plaintext);
        assert_eq!(msg.open(&key, &nonce, &signing).unwrap(), plaintext);
    }

    #[test]
    fn tampered_ciphertext_is_rejected() {
        let (key, nonce, signing) = keys();
        let mut msg = EgressMessage::seal(1, b"result", &key, &nonce, &signing);
        msg.ciphertext[0] ^= 1;
        assert!(msg.open(&key, &nonce, &signing).is_none());
    }

    #[test]
    fn replayed_sequence_number_is_rejected() {
        let (key, nonce, signing) = keys();
        let mut msg = EgressMessage::seal(1, b"result", &key, &nonce, &signing);
        msg.seq = 2;
        assert!(msg.open(&key, &nonce, &signing).is_none());
    }

    #[test]
    fn wrong_keys_fail() {
        let (key, nonce, signing) = keys();
        let msg = EgressMessage::seal(1, b"result", &key, &nonce, &signing);
        assert!(msg.open(&key, &nonce, &SigningKey::new(b"other")).is_none());
        // Wrong AES key with correct MAC key: MAC still passes (it covers the
        // ciphertext), but the plaintext will be garbage — callers treat the
        // MAC as origin authentication, which this test documents.
        let opened = msg.open(&[9u8; 16], &nonce, &signing).unwrap();
        assert_ne!(opened, b"result");
    }

    #[test]
    fn distinct_messages_use_distinct_keystreams() {
        let (key, nonce, signing) = keys();
        let a = EgressMessage::seal(1, b"same plaintext", &key, &nonce, &signing);
        let b = EgressMessage::seal(2, b"same plaintext", &key, &nonce, &signing);
        assert_ne!(a.ciphertext, b.ciphertext);
    }
}
