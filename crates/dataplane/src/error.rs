//! Data plane error types.

use sbt_uarray::uarray::UArrayError;
use sbt_uarray::PageError;

/// Errors surfaced across the data-plane interface.
///
/// Errors never carry protected data — only identifiers and sizes — so they
/// are safe to return to the untrusted control plane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataPlaneError {
    /// An opaque reference was not found in the live-reference table
    /// (fabricated, stale, or already retired).
    InvalidReference,
    /// The primitive was invoked with the wrong number or type of inputs.
    BadArguments(&'static str),
    /// The requested primitive is not implemented by this data plane build.
    UnsupportedPrimitive,
    /// The secure-memory budget is exhausted; the engine should apply
    /// backpressure and retry.
    OutOfSecureMemory,
    /// The ingress payload failed authentication or could not be parsed.
    BadIngress(&'static str),
    /// The named tenant has not been registered with the data plane.
    UnknownTenant,
    /// The operation would push the calling tenant past its TEE memory
    /// quota; the tenant's sources should be backpressured. Other tenants
    /// are unaffected.
    QuotaExceeded,
    /// A sealed checkpoint snapshot failed authentication or parsing
    /// (bit flip, torn/truncated write, tampered header, wrong platform).
    /// Restores fail closed; the message names the first check that failed.
    SnapshotRejected(&'static str),
    /// The snapshot was sealed under a key epoch older than the tenant's
    /// retirement horizon: the epoch has been retired for forward secrecy
    /// and the enclave refuses to act on state sealed under it.
    RetiredEpoch {
        /// The epoch the rejected snapshot was sealed under.
        epoch: u32,
        /// The tenant's current retirement horizon.
        horizon: u32,
    },
}

impl std::fmt::Display for DataPlaneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataPlaneError::InvalidReference => write!(f, "invalid opaque reference"),
            DataPlaneError::BadArguments(msg) => write!(f, "bad arguments: {msg}"),
            DataPlaneError::UnsupportedPrimitive => write!(f, "unsupported primitive"),
            DataPlaneError::OutOfSecureMemory => write!(f, "secure memory exhausted"),
            DataPlaneError::BadIngress(msg) => write!(f, "bad ingress payload: {msg}"),
            DataPlaneError::UnknownTenant => write!(f, "unknown tenant"),
            DataPlaneError::QuotaExceeded => write!(f, "tenant memory quota exceeded"),
            DataPlaneError::SnapshotRejected(msg) => {
                write!(f, "checkpoint snapshot rejected: {msg}")
            }
            DataPlaneError::RetiredEpoch { epoch, horizon } => {
                write!(f, "key epoch {epoch} is retired (horizon {horizon})")
            }
        }
    }
}

impl std::error::Error for DataPlaneError {}

impl From<PageError> for DataPlaneError {
    fn from(_: PageError) -> Self {
        DataPlaneError::OutOfSecureMemory
    }
}

impl From<UArrayError> for DataPlaneError {
    fn from(e: UArrayError) -> Self {
        match e {
            UArrayError::OutOfSecureMemory(_) => DataPlaneError::OutOfSecureMemory,
            UArrayError::NotOpen(_) => DataPlaneError::BadArguments("uArray not open"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(DataPlaneError::InvalidReference.to_string().contains("opaque"));
        assert!(DataPlaneError::BadArguments("x").to_string().contains("x"));
        assert!(DataPlaneError::OutOfSecureMemory.to_string().contains("memory"));
    }

    #[test]
    fn conversions_map_to_oom() {
        let sm_err = sbt_tz::SecureMemoryError { requested: 1, in_use: 0, budget: 0 };
        let e: DataPlaneError = PageError(sm_err).into();
        assert_eq!(e, DataPlaneError::OutOfSecureMemory);
    }
}
