//! Opaque references: the only handles the untrusted control plane holds on
//! protected data (§3.2, §8).
//!
//! References are 64-bit random integers minted by the data plane. The data
//! plane keeps the mapping from live references to internal uArray ids and
//! validates every incoming reference by table lookup; references that do
//! not exist (fabricated or already retired) are rejected. Because live
//! references rarely exceed a few thousand, the lookup cost is negligible
//! relative to primitive execution.

use crate::error::DataPlaneError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sbt_uarray::UArrayId;
use std::collections::HashMap;

/// An opaque, unforgeable-by-guessing handle on a uArray inside the TEE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpaqueRef(pub u64);

/// The live-reference table.
pub struct RefTable {
    rng: StdRng,
    live: HashMap<OpaqueRef, UArrayId>,
}

impl RefTable {
    /// Create a table seeded from the platform's entropy source. A fixed
    /// seed may be supplied for reproducible tests; production use should
    /// pass fresh entropy.
    pub fn new(seed: u64) -> Self {
        RefTable { rng: StdRng::seed_from_u64(seed), live: HashMap::new() }
    }

    /// Mint a new reference for an internal uArray id.
    pub fn mint(&mut self, id: UArrayId) -> OpaqueRef {
        loop {
            let candidate = OpaqueRef(self.rng.gen::<u64>());
            // Zero is reserved as an obviously-invalid sentinel; collisions
            // are astronomically unlikely but cheap to re-roll.
            if candidate.0 != 0 && !self.live.contains_key(&candidate) {
                self.live.insert(candidate, id);
                return candidate;
            }
        }
    }

    /// Resolve a reference, rejecting unknown ones.
    pub fn resolve(&self, r: OpaqueRef) -> Result<UArrayId, DataPlaneError> {
        self.live.get(&r).copied().ok_or(DataPlaneError::InvalidReference)
    }

    /// Remove a reference (when its uArray is retired). Unknown references
    /// are rejected the same way as in [`resolve`](RefTable::resolve).
    pub fn revoke(&mut self, r: OpaqueRef) -> Result<UArrayId, DataPlaneError> {
        self.live.remove(&r).ok_or(DataPlaneError::InvalidReference)
    }

    /// Number of live references.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mint_resolve_revoke_cycle() {
        let mut t = RefTable::new(1);
        let r = t.mint(UArrayId(7));
        assert_eq!(t.resolve(r), Ok(UArrayId(7)));
        assert_eq!(t.live_count(), 1);
        assert_eq!(t.revoke(r), Ok(UArrayId(7)));
        assert_eq!(t.live_count(), 0);
        assert_eq!(t.resolve(r), Err(DataPlaneError::InvalidReference));
        assert_eq!(t.revoke(r), Err(DataPlaneError::InvalidReference));
    }

    #[test]
    fn fabricated_references_are_rejected() {
        let mut t = RefTable::new(2);
        let _real = t.mint(UArrayId(1));
        assert_eq!(t.resolve(OpaqueRef(0)), Err(DataPlaneError::InvalidReference));
        assert_eq!(t.resolve(OpaqueRef(0xDEAD_BEEF)), Err(DataPlaneError::InvalidReference));
    }

    #[test]
    fn references_are_distinct_and_nonzero() {
        let mut t = RefTable::new(3);
        let refs: Vec<OpaqueRef> = (0..1000).map(|i| t.mint(UArrayId(i))).collect();
        let unique: std::collections::HashSet<_> = refs.iter().collect();
        assert_eq!(unique.len(), refs.len());
        assert!(refs.iter().all(|r| r.0 != 0));
    }

    #[test]
    fn references_are_not_sequential() {
        // The opaque namespace must not leak allocation order (sequential
        // handles would be guessable).
        let mut t = RefTable::new(4);
        let a = t.mint(UArrayId(0)).0;
        let b = t.mint(UArrayId(1)).0;
        let c = t.mint(UArrayId(2)).0;
        assert!(b != a + 1 || c != b + 1);
    }
}
