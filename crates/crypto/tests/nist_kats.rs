//! Known-answer tests for the crypto substrate against published vectors:
//!
//! - SHA-256: FIPS 180-4 / NIST CAVP example messages,
//! - HMAC-SHA-256: RFC 4231 test cases 1-4, 6, 7,
//! - AES-128: FIPS 197 Appendix C.1 and NIST SP 800-38A F.1.1 (ECB),
//! - AES-128-CTR: NIST SP 800-38A F.5.1 / F.5.2, all four blocks.
//!
//! These pin the implementations bit-for-bit so later optimization passes
//! (vectorized block processing, key-schedule caching, …) cannot silently
//! change behavior.

use sbt_crypto::{hmac_sha256, sha256, Aes128, AesCtr, Sha256, SigningKey};

/// Decode a hex string (whitespace tolerated) into bytes.
fn hex(s: &str) -> Vec<u8> {
    let compact: String = s.chars().filter(|c| !c.is_whitespace()).collect();
    assert!(compact.len().is_multiple_of(2), "odd-length hex literal");
    (0..compact.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&compact[i..i + 2], 16).expect("valid hex"))
        .collect()
}

fn hex16(s: &str) -> [u8; 16] {
    hex(s).try_into().expect("16-byte hex literal")
}

fn hex32(s: &str) -> [u8; 32] {
    hex(s).try_into().expect("32-byte hex literal")
}

// ---------------------------------------------------------------- SHA-256

#[test]
fn sha256_fips_180_4_empty_message() {
    assert_eq!(
        sha256(b""),
        hex32("e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855")
    );
}

#[test]
fn sha256_fips_180_4_abc() {
    assert_eq!(
        sha256(b"abc"),
        hex32("ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad")
    );
}

#[test]
fn sha256_fips_180_4_two_block_message() {
    assert_eq!(
        sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
        hex32("248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1")
    );
}

#[test]
fn sha256_fips_180_4_one_million_a() {
    let data = vec![b'a'; 1_000_000];
    assert_eq!(
        sha256(&data),
        hex32("cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0")
    );
}

#[test]
fn sha256_incremental_update_matches_one_shot() {
    // Feed a message through `update` in awkward chunk sizes, crossing the
    // 64-byte block boundary at several offsets.
    let data: Vec<u8> = (0..1013u32).map(|i| (i % 251) as u8).collect();
    for chunk in [1usize, 7, 63, 64, 65, 200] {
        let mut hasher = Sha256::new();
        for part in data.chunks(chunk) {
            hasher.update(part);
        }
        assert_eq!(hasher.finalize(), sha256(&data), "chunk size {chunk}");
    }
}

// ----------------------------------------------------------- HMAC-SHA-256

#[test]
fn hmac_rfc4231_case_1() {
    assert_eq!(
        hmac_sha256(&[0x0b; 20], b"Hi There"),
        hex32("b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7")
    );
}

#[test]
fn hmac_rfc4231_case_2() {
    assert_eq!(
        hmac_sha256(b"Jefe", b"what do ya want for nothing?"),
        hex32("5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843")
    );
}

#[test]
fn hmac_rfc4231_case_3() {
    assert_eq!(
        hmac_sha256(&[0xaa; 20], &[0xdd; 50]),
        hex32("773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe")
    );
}

#[test]
fn hmac_rfc4231_case_4() {
    assert_eq!(
        hmac_sha256(&hex("0102030405060708090a0b0c0d0e0f10111213141516171819"), &[0xcd; 50]),
        hex32("82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b")
    );
}

#[test]
fn hmac_rfc4231_case_6_key_larger_than_block() {
    assert_eq!(
        hmac_sha256(&[0xaa; 131], b"Test Using Larger Than Block-Size Key - Hash Key First"),
        hex32("60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54")
    );
}

#[test]
fn hmac_rfc4231_case_7_key_and_data_larger_than_block() {
    let msg: &[u8] = b"This is a test using a larger than block-size key and a larger \
than block-size data. The key needs to be hashed before being used by the HMAC algorithm.";
    assert_eq!(
        hmac_sha256(&[0xaa; 131], msg),
        hex32("9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2")
    );
}

#[test]
fn signing_key_is_plain_hmac_sha256() {
    // Pin SigningKey to the RFC 4231 vector so a future key-derivation change
    // is a loud, deliberate decision rather than a silent drift.
    let key = SigningKey::new(&[0x0b; 20]);
    let sig = key.sign(b"Hi There");
    assert_eq!(sig.0, hex32("b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"));
    assert!(key.verify(b"Hi There", &sig));
    assert!(!key.verify(b"Hi there", &sig));
}

// ------------------------------------------------------------- AES-128

#[test]
fn aes128_fips197_appendix_c1() {
    let cipher = Aes128::new(&hex16("000102030405060708090a0b0c0d0e0f"));
    let out = cipher.encrypt(hex16("00112233445566778899aabbccddeeff"));
    assert_eq!(out, hex16("69c4e0d86a7b0430d8cdb78070b4c55a"));
}

/// The standard SP 800-38A key and four-block plaintext.
const SP800_38A_KEY: &str = "2b7e151628aed2a6abf7158809cf4f3c";
const SP800_38A_BLOCKS: [&str; 4] = [
    "6bc1bee22e409f96e93d7e117393172a",
    "ae2d8a571e03ac9c9eb76fac45af8e51",
    "30c81c46a35ce411e5fbc1191a0a52ef",
    "f69f2445df4f9b17ad2b417be66c3710",
];

#[test]
fn aes128_sp800_38a_f11_ecb_blocks() {
    let expected = [
        "3ad77bb40d7a3660a89ecaf32466ef97",
        "f5d3d58503b9699de785895a96fdbaaf",
        "43b1cd7f598ece23881b00e3ed030688",
        "7b0c785e27e8ad3f8223207104725dd4",
    ];
    let cipher = Aes128::new(&hex16(SP800_38A_KEY));
    for (plain, cipher_hex) in SP800_38A_BLOCKS.iter().zip(expected) {
        assert_eq!(cipher.encrypt(hex16(plain)), hex16(cipher_hex));
    }
}

// ----------------------------------------------------------- AES-128-CTR

/// SP 800-38A F.5 uses the initial counter block f0f1...feff. Our CTR layout
/// keeps the first 12 nonce bytes and replaces the last 4 with the block
/// index, so the vector maps onto nonce=f0..fb|0000 + start_block=fcfdfeff.
fn nist_ctr() -> (AesCtr, u32) {
    let nonce = hex16("f0f1f2f3f4f5f6f7f8f9fafb00000000");
    (AesCtr::new(&hex16(SP800_38A_KEY), &nonce), 0xfcfdfeff)
}

#[test]
fn aes128_ctr_sp800_38a_f51_encrypt_all_blocks() {
    let expected = hex("874d6191b620e3261bef6864990db6ce\
         9806f66b7970fdff8617187bb9fffdff\
         5ae4df3edbd5d35e5b4f09020db03eab\
         1e031dda2fbe03d1792170a0f3009cee");
    let (ctr, start) = nist_ctr();
    let mut data: Vec<u8> = SP800_38A_BLOCKS.iter().flat_map(|b| hex(b)).collect();
    ctr.apply_keystream_at(&mut data, start);
    assert_eq!(data, expected);
}

#[test]
fn aes128_ctr_sp800_38a_f52_decrypt_all_blocks() {
    let ciphertext = hex("874d6191b620e3261bef6864990db6ce\
         9806f66b7970fdff8617187bb9fffdff\
         5ae4df3edbd5d35e5b4f09020db03eab\
         1e031dda2fbe03d1792170a0f3009cee");
    let plaintext: Vec<u8> = SP800_38A_BLOCKS.iter().flat_map(|b| hex(b)).collect();
    let (ctr, start) = nist_ctr();
    let mut data = ciphertext;
    ctr.apply_keystream_at(&mut data, start);
    assert_eq!(data, plaintext);
}

#[test]
fn aes128_ctr_keystream_positions_are_independent_of_call_granularity() {
    // Encrypting in one call or block-by-block with explicit positions must
    // agree — this is what lets the data plane decrypt batches out of order.
    let (ctr, start) = nist_ctr();
    let mut whole: Vec<u8> = SP800_38A_BLOCKS.iter().flat_map(|b| hex(b)).collect();
    ctr.apply_keystream_at(&mut whole, start);

    let mut pieces = Vec::new();
    for (i, b) in SP800_38A_BLOCKS.iter().enumerate() {
        let mut block = hex(b);
        ctr.apply_keystream_at(&mut block, start + i as u32);
        pieces.extend_from_slice(&block);
    }
    assert_eq!(whole, pieces);
}
