//! HKDF-style key derivation for per-tenant key isolation (RFC 5869 over
//! the crate's own HMAC-SHA-256).
//!
//! A multi-tenant edge must not share one source/cloud key pair across every
//! pipeline it hosts: a single leaked key would expose all tenants' streams,
//! and a tenant could forge its neighbours' audit trails. Instead the
//! platform holds one **master secret** and deterministically derives, per
//! `(tenant, epoch)`, a full [`KeySet`] — source-link key, cloud-link key
//! and trail-signing key. Rekeying a tenant bumps its **epoch**: the next
//! key set shares no bytes with the previous one, other tenants are
//! untouched, and the cloud (which is provisioned with the same master
//! secret, or with the derived sets) can verify each epoch's segments under
//! that epoch's key.

use crate::hmac::hmac_sha256;
use crate::sign::SigningKey;
use crate::{Key128, Nonce};

/// `HKDF-Extract(salt, ikm)` — concentrate input keying material into a
/// pseudorandom key (RFC 5869 §2.2).
pub fn hkdf_extract(salt: &[u8], ikm: &[u8]) -> [u8; 32] {
    hmac_sha256(salt, ikm)
}

/// `HKDF-Expand(prk, info, len)` — expand a pseudorandom key into `len`
/// bytes of output keying material (RFC 5869 §2.3). `len` must be at most
/// `255 * 32` bytes.
pub fn hkdf_expand(prk: &[u8; 32], info: &[u8], len: usize) -> Vec<u8> {
    assert!(len <= 255 * 32, "HKDF-Expand output too long");
    let mut okm = Vec::with_capacity(len + 32);
    let mut block: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    while okm.len() < len {
        let mut message = block.clone();
        message.extend_from_slice(info);
        message.push(counter);
        block = hmac_sha256(prk, &message).to_vec();
        okm.extend_from_slice(&block);
        counter = counter.wrapping_add(1);
    }
    okm.truncate(len);
    okm
}

/// One `(tenant, epoch)`'s full derived key material: everything the data
/// plane needs to serve the tenant, and everything its source and cloud
/// consumer hold.
#[derive(Clone)]
pub struct KeySet {
    /// The key epoch this set belongs to (0 at admission; bumped by rekey).
    pub epoch: u32,
    /// AES key shared with the tenant's data sources (ingress decryption).
    pub source_key: Key128,
    /// CTR nonce shared with the tenant's data sources.
    pub source_nonce: Nonce,
    /// AES key shared with the tenant's cloud consumer (egress encryption).
    pub cloud_key: Key128,
    /// CTR nonce for egress encryption.
    pub cloud_nonce: Nonce,
    /// HMAC key signing the tenant's egress messages and audit segments.
    pub signing: SigningKey,
}

impl KeySet {
    /// The cloud-side half of the set: what trail verification and result
    /// decryption need, without the source-link key.
    pub fn verifier(&self) -> VerifierKeySet {
        VerifierKeySet {
            epoch: self.epoch,
            cloud_key: self.cloud_key,
            cloud_nonce: self.cloud_nonce,
            signing: self.signing.clone(),
        }
    }
}

/// The cloud-side keys of one `(tenant, epoch)`: enough to authenticate the
/// tenant's audit segments and open its results — and nothing more (in
/// particular, not the source-link key).
#[derive(Clone)]
pub struct VerifierKeySet {
    /// The key epoch this set belongs to.
    pub epoch: u32,
    /// AES key for opening the tenant's egress messages.
    pub cloud_key: Key128,
    /// CTR nonce for opening the tenant's egress messages.
    pub cloud_nonce: Nonce,
    /// HMAC key verifying segment and egress signatures.
    pub signing: SigningKey,
}

impl VerifierKeySet {
    /// A verifier set carrying only a signing key (trail-only verification,
    /// used by tests that never open ciphertexts).
    pub fn signing_only(epoch: u32, signing: SigningKey) -> Self {
        VerifierKeySet { epoch, cloud_key: [0u8; 16], cloud_nonce: [0u8; 16], signing }
    }
}

/// The key material sealing one checkpoint snapshot: an AES-CTR key/nonce
/// pair encrypting the serialized state and an HMAC key authenticating the
/// ciphertext. Derived per `(tenant, epoch, checkpoint)` — the checkpoint
/// sequence number participates in the derivation, so no two snapshots ever
/// share a CTR keystream even within one epoch.
#[derive(Clone)]
pub struct SealingKeySet {
    /// The key epoch the snapshot is sealed under.
    pub epoch: u32,
    /// AES-CTR key encrypting the snapshot plaintext.
    pub key: Key128,
    /// CTR nonce for the snapshot.
    pub nonce: Nonce,
    /// HMAC key authenticating the sealed snapshot.
    pub mac: SigningKey,
}

/// The per-tenant chain of verifier key sets across every epoch the tenant
/// has been through — what the cloud consumer of one tenant holds.
#[derive(Clone)]
pub struct TenantKeychain {
    tenant: u32,
    epochs: Vec<VerifierKeySet>,
}

impl TenantKeychain {
    /// Build a keychain from explicit per-epoch verifier sets. The sets must
    /// be in ascending epoch order and non-empty (a freshly provisioned
    /// chain starts at epoch 0; a chain that has been through
    /// [`retire_before`](Self::retire_before) starts at its horizon).
    pub fn from_epochs(tenant: u32, epochs: Vec<VerifierKeySet>) -> Self {
        assert!(!epochs.is_empty(), "a keychain holds at least one epoch");
        TenantKeychain { tenant, epochs }
    }

    /// A single-epoch keychain around one signing key (trail-only tests).
    pub fn single(tenant: u32, signing: SigningKey) -> Self {
        TenantKeychain::from_epochs(tenant, vec![VerifierKeySet::signing_only(0, signing)])
    }

    /// The tenant this keychain belongs to.
    pub fn tenant(&self) -> u32 {
        self.tenant
    }

    /// The verifier keys of one epoch, if the keychain covers it.
    pub fn epoch(&self, epoch: u32) -> Option<&VerifierKeySet> {
        self.epochs.iter().find(|e| e.epoch == epoch)
    }

    /// The newest epoch's verifier keys.
    pub fn latest(&self) -> &VerifierKeySet {
        self.epochs.last().expect("keychain is never empty")
    }

    /// Number of epochs covered.
    pub fn epoch_count(&self) -> usize {
        self.epochs.len()
    }

    /// Iterate epochs newest-first (the order trial decryption should try).
    pub fn newest_first(&self) -> impl Iterator<Item = &VerifierKeySet> {
        self.epochs.iter().rev()
    }

    /// The oldest epoch still covered — the keychain's retirement horizon.
    pub fn oldest_epoch(&self) -> u32 {
        self.epochs.first().expect("keychain is never empty").epoch
    }

    /// Retire every epoch strictly below `horizon`, dropping its key
    /// material from the chain: [`epoch`](Self::epoch) returns `None` for
    /// retired epochs forever after, so segments (or sealed snapshots) from
    /// before the horizon can no longer be authenticated — the forward-
    /// secrecy boundary crash recovery promises. The newest epoch is never
    /// retired (a keychain is never empty); retiring is monotone — a
    /// horizon below [`oldest_epoch`](Self::oldest_epoch) is a no-op.
    /// Returns how many epochs were dropped.
    pub fn retire_before(&mut self, horizon: u32) -> usize {
        let before = self.epochs.len();
        let newest = self.latest().epoch;
        self.epochs.retain(|e| e.epoch >= horizon || e.epoch == newest);
        before - self.epochs.len()
    }
}

/// Domain-separation salt for the platform key hierarchy.
const HKDF_SALT: &[u8] = b"streambox-tz/key-hierarchy/v1";

/// The platform-wide master secret from which every tenant's per-epoch
/// [`KeySet`] is derived. Provisioned out of band between the edge TEE and
/// the cloud; no raw per-tenant key ever needs to be transported.
#[derive(Clone)]
pub struct MasterSecret {
    prk: [u8; 32],
}

impl MasterSecret {
    /// Build a master secret from raw input keying material.
    pub fn new(ikm: &[u8]) -> Self {
        MasterSecret { prk: hkdf_extract(HKDF_SALT, ikm) }
    }

    /// The fixed demo master secret used by examples, tests and benches.
    /// Real deployments provision their own entropy.
    pub fn demo() -> Self {
        MasterSecret::new(b"streambox-tz-demo-master-secret")
    }

    /// Derive the full key set of one `(tenant, epoch)`.
    ///
    /// The derivation is deterministic, so the edge and the cloud agree on
    /// every epoch's keys without transporting them; distinct tenants and
    /// distinct epochs share no key bytes.
    pub fn tenant_keys(&self, tenant: u32, epoch: u32) -> KeySet {
        let mut info = Vec::with_capacity(19);
        info.extend_from_slice(b"sbt-tenant/");
        info.extend_from_slice(&tenant.to_le_bytes());
        info.extend_from_slice(&epoch.to_le_bytes());
        let okm = hkdf_expand(&self.prk, &info, 96);
        let take16 = |at: usize| -> [u8; 16] { okm[at..at + 16].try_into().expect("16 bytes") };
        KeySet {
            epoch,
            source_key: take16(0),
            source_nonce: take16(16),
            cloud_key: take16(32),
            cloud_nonce: take16(48),
            signing: SigningKey::new(&okm[64..96]),
        }
    }

    /// The cloud-side keychain of one tenant covering epochs
    /// `0..=through_epoch`.
    pub fn keychain(&self, tenant: u32, through_epoch: u32) -> TenantKeychain {
        let epochs = (0..=through_epoch).map(|e| self.tenant_keys(tenant, e).verifier()).collect();
        TenantKeychain::from_epochs(tenant, epochs)
    }

    /// Derive the sealing keys of one tenant checkpoint.
    ///
    /// Domain-separated from [`tenant_keys`](Self::tenant_keys) by the info
    /// prefix, and bound to the checkpoint sequence number so every snapshot
    /// is sealed under a fresh CTR keystream and MAC key.
    pub fn sealing_keys(&self, tenant: u32, epoch: u32, ckpt_seq: u64) -> SealingKeySet {
        let mut info = Vec::with_capacity(25);
        info.extend_from_slice(b"sbt-seal/");
        info.extend_from_slice(&tenant.to_le_bytes());
        info.extend_from_slice(&epoch.to_le_bytes());
        info.extend_from_slice(&ckpt_seq.to_le_bytes());
        let okm = hkdf_expand(&self.prk, &info, 64);
        let take16 = |at: usize| -> [u8; 16] { okm[at..at + 16].try_into().expect("16 bytes") };
        SealingKeySet {
            epoch,
            key: take16(0),
            nonce: take16(16),
            mac: SigningKey::new(&okm[32..64]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{:02x}", b)).collect()
    }

    /// RFC 5869 test case 1 (SHA-256, basic).
    #[test]
    fn rfc5869_case1() {
        let ikm = [0x0b_u8; 22];
        let salt: Vec<u8> = (0x00..=0x0c).collect();
        let info: Vec<u8> = (0xf0..=0xf9).collect();
        let prk = hkdf_extract(&salt, &ikm);
        assert_eq!(hex(&prk), "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5");
        let okm = hkdf_expand(&prk, &info, 42);
        assert_eq!(
            hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    /// RFC 5869 test case 2 (SHA-256, longer inputs/outputs).
    #[test]
    fn rfc5869_case2() {
        let ikm: Vec<u8> = (0x00..=0x4f).collect();
        let salt: Vec<u8> = (0x60..=0xaf).collect();
        let info: Vec<u8> = (0xb0..=0xff).collect();
        let prk = hkdf_extract(&salt, &ikm);
        assert_eq!(hex(&prk), "06a6b88c5853361a06104c9ceb35b45cef760014904671014a193f40c15fc244");
        let okm = hkdf_expand(&prk, &info, 82);
        assert_eq!(
            hex(&okm),
            "b11e398dc80327a1c8e7f78c596a49344f012eda2d4efad8a050cc4c19afa97c\
             59045a99cac7827271cb41c65e590e09da3275600c2f09b8367793a9aca3db71\
             cc30c58179ec3e87c14c01d5c1f3434f1d87"
        );
    }

    /// RFC 5869 test case 3 (SHA-256, zero-length salt and info).
    #[test]
    fn rfc5869_case3() {
        let ikm = [0x0b_u8; 22];
        let prk = hkdf_extract(&[], &ikm);
        assert_eq!(hex(&prk), "19ef24a32c717b167f33a91d6f648bdf96596776afdb6377ac434c1c293ccb04");
        let okm = hkdf_expand(&prk, &[], 42);
        assert_eq!(
            hex(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn tenants_and_epochs_get_disjoint_keys() {
        let master = MasterSecret::demo();
        let a0 = master.tenant_keys(1, 0);
        let a1 = master.tenant_keys(1, 1);
        let b0 = master.tenant_keys(2, 0);
        assert_ne!(a0.source_key, a1.source_key, "rekey must rotate the source key");
        assert_ne!(a0.cloud_key, a1.cloud_key);
        assert_ne!(a0.source_key, b0.source_key, "tenants must not share keys");
        assert_ne!(a0.cloud_nonce, b0.cloud_nonce);
        // Signing keys differ: a message signed under one epoch fails the other.
        let sig = a0.signing.sign(b"segment");
        assert!(!a1.signing.verify(b"segment", &sig));
        assert!(!b0.signing.verify(b"segment", &sig));
    }

    #[test]
    fn derivation_is_deterministic_across_instances() {
        let edge = MasterSecret::demo().tenant_keys(7, 3);
        let cloud = MasterSecret::demo().tenant_keys(7, 3);
        assert_eq!(edge.source_key, cloud.source_key);
        assert_eq!(edge.cloud_key, cloud.cloud_key);
        let sig = edge.signing.sign(b"m");
        assert!(cloud.signing.verify(b"m", &sig));
    }

    #[test]
    fn keychain_covers_all_epochs_through_latest() {
        let master = MasterSecret::demo();
        let chain = master.keychain(5, 2);
        assert_eq!(chain.tenant(), 5);
        assert_eq!(chain.epoch_count(), 3);
        assert_eq!(chain.latest().epoch, 2);
        for e in 0..=2 {
            let ks = master.tenant_keys(5, e);
            let vk = chain.epoch(e).unwrap();
            assert_eq!(vk.cloud_key, ks.cloud_key);
            let sig = ks.signing.sign(b"x");
            assert!(vk.signing.verify(b"x", &sig));
        }
        assert!(chain.epoch(3).is_none());
        let newest: Vec<u32> = chain.newest_first().map(|e| e.epoch).collect();
        assert_eq!(newest, vec![2, 1, 0]);
    }

    #[test]
    fn verifier_set_omits_the_source_key() {
        let ks = MasterSecret::demo().tenant_keys(1, 0);
        let vk = ks.verifier();
        assert_eq!(vk.epoch, 0);
        assert_eq!(vk.cloud_key, ks.cloud_key);
        // Compile-time property really — the struct has no source fields —
        // but pin the cloud half round-trips signatures.
        let sig = ks.signing.sign(b"r");
        assert!(vk.signing.verify(b"r", &sig));
    }

    #[test]
    fn sealing_keys_are_disjoint_per_tenant_epoch_and_checkpoint() {
        let master = MasterSecret::demo();
        let a = master.sealing_keys(1, 0, 0);
        let b = master.sealing_keys(1, 0, 1);
        let c = master.sealing_keys(1, 1, 0);
        let d = master.sealing_keys(2, 0, 0);
        assert_ne!(a.key, b.key, "checkpoint seq must rotate the sealing key");
        assert_ne!(a.nonce, b.nonce);
        assert_ne!(a.key, c.key, "epoch must rotate the sealing key");
        assert_ne!(a.key, d.key, "tenants must not share sealing keys");
        // Domain separation from the tenant-link hierarchy.
        let link = master.tenant_keys(1, 0);
        assert_ne!(a.key, link.source_key);
        assert_ne!(a.key, link.cloud_key);
        // MAC keys differ: a tag under one checkpoint's key fails the next.
        let tag = a.mac.sign(b"snapshot");
        assert!(!b.mac.verify(b"snapshot", &tag));
        // Deterministic across instances (edge and cloud agree).
        let again = MasterSecret::demo().sealing_keys(1, 0, 0);
        assert_eq!(a.key, again.key);
        assert_eq!(a.nonce, again.nonce);
        assert!(again.mac.verify(b"snapshot", &tag));
    }

    #[test]
    fn retire_before_drops_old_epochs_but_never_the_newest() {
        let master = MasterSecret::demo();
        let mut chain = master.keychain(5, 3);
        assert_eq!(chain.oldest_epoch(), 0);
        assert_eq!(chain.retire_before(2), 2);
        assert_eq!(chain.oldest_epoch(), 2);
        assert_eq!(chain.epoch_count(), 2);
        assert!(chain.epoch(0).is_none(), "retired epochs must be unreachable");
        assert!(chain.epoch(1).is_none());
        assert!(chain.epoch(2).is_some());
        assert_eq!(chain.latest().epoch, 3);
        // Retiring is monotone: an older horizon is a no-op.
        assert_eq!(chain.retire_before(1), 0);
        // The newest epoch survives any horizon.
        assert_eq!(chain.retire_before(100), 1);
        assert_eq!(chain.epoch_count(), 1);
        assert_eq!(chain.latest().epoch, 3);
    }

    #[test]
    fn expand_handles_multi_block_and_short_outputs() {
        let prk = hkdf_extract(b"salt", b"ikm");
        assert_eq!(hkdf_expand(&prk, b"i", 1).len(), 1);
        assert_eq!(hkdf_expand(&prk, b"i", 32).len(), 32);
        assert_eq!(hkdf_expand(&prk, b"i", 33).len(), 33);
        // Prefix property: a longer expansion starts with the shorter one.
        let short = hkdf_expand(&prk, b"i", 16);
        let long = hkdf_expand(&prk, b"i", 64);
        assert_eq!(&long[..16], &short[..]);
    }
}
