//! AES-128 CTR mode.
//!
//! CTR turns the block cipher into a stream cipher: encryption and decryption
//! are the same keystream XOR, which is what the data plane uses for both
//! ingress decryption and egress encryption. The 128-bit counter block is the
//! nonce with its last 32 bits replaced by a big-endian block counter.

use crate::aes::Aes128;
use crate::{Key128, Nonce};

/// AES-128-CTR stream cipher context.
pub struct AesCtr {
    cipher: Aes128,
    nonce: Nonce,
}

impl AesCtr {
    /// Create a CTR context from a key and a per-stream nonce.
    pub fn new(key: &Key128, nonce: &Nonce) -> Self {
        AesCtr { cipher: Aes128::new(key), nonce: *nonce }
    }

    /// Produce the counter block for block index `ctr`.
    fn counter_block(&self, ctr: u32) -> [u8; 16] {
        let mut block = self.nonce;
        block[12..16].copy_from_slice(&ctr.to_be_bytes());
        block
    }

    /// XOR `data` with the keystream starting at block `start_block`,
    /// in place. Applying the same call twice restores the original data.
    ///
    /// This is the TEE boundary's hot loop (every ingress decrypt and egress
    /// encrypt runs through it), so it is written in the vectorized shape:
    /// four counter blocks are expanded into one 64-byte keystream batch by
    /// [`Aes128::encrypt4`] (lane-parallel AES rounds), and the keystream is
    /// consumed with whole-word XORs rather than per-byte ones. Tails
    /// shorter than 64 bytes fall back to the single-block path.
    ///
    /// [`Aes128::encrypt4`]: crate::Aes128::encrypt4
    pub fn apply_keystream_at(&self, data: &mut [u8], start_block: u32) {
        let mut ctr = start_block;
        let mut wide = data.chunks_exact_mut(64);
        for chunk in wide.by_ref() {
            let mut ks = [0u8; 64];
            for lane in 0..4u32 {
                ks[lane as usize * 16..lane as usize * 16 + 16]
                    .copy_from_slice(&self.counter_block(ctr.wrapping_add(lane)));
            }
            self.cipher.encrypt4(&mut ks);
            for (b, k) in chunk.chunks_exact_mut(8).zip(ks.chunks_exact(8)) {
                let word = u64::from_ne_bytes(b.try_into().unwrap())
                    ^ u64::from_ne_bytes(k.try_into().unwrap());
                b.copy_from_slice(&word.to_ne_bytes());
            }
            ctr = ctr.wrapping_add(4);
        }
        for chunk in wide.into_remainder().chunks_mut(16) {
            let ks = self.cipher.encrypt(self.counter_block(ctr));
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= *k;
            }
            ctr = ctr.wrapping_add(1);
        }
    }

    /// XOR `src` with the keystream starting at block `start_block`, writing
    /// the result into `dst` without touching `src`. The two slices must
    /// have the same length.
    ///
    /// This is the zero-copy ingest primitive: the data plane reserves the
    /// uArray destination first and decrypts the ciphertext straight into it,
    /// so no staging buffer ever holds the plaintext. The loop has the same
    /// vectorized shape as [`apply_keystream_at`] — four counter blocks per
    /// [`Aes128::encrypt4`] call, whole-word XORs, single-block tail.
    ///
    /// [`apply_keystream_at`]: AesCtr::apply_keystream_at
    /// [`Aes128::encrypt4`]: crate::Aes128::encrypt4
    pub fn apply_keystream_into(&self, src: &[u8], dst: &mut [u8], start_block: u32) {
        assert_eq!(src.len(), dst.len(), "keystream source/destination length mismatch");
        let mut ctr = start_block;
        let mut wide_src = src.chunks_exact(64);
        let mut wide_dst = dst.chunks_exact_mut(64);
        for (s, d) in wide_src.by_ref().zip(wide_dst.by_ref()) {
            let mut ks = [0u8; 64];
            for lane in 0..4u32 {
                ks[lane as usize * 16..lane as usize * 16 + 16]
                    .copy_from_slice(&self.counter_block(ctr.wrapping_add(lane)));
            }
            self.cipher.encrypt4(&mut ks);
            for ((d, s), k) in d.chunks_exact_mut(8).zip(s.chunks_exact(8)).zip(ks.chunks_exact(8))
            {
                let word = u64::from_ne_bytes(s.try_into().unwrap())
                    ^ u64::from_ne_bytes(k.try_into().unwrap());
                d.copy_from_slice(&word.to_ne_bytes());
            }
            ctr = ctr.wrapping_add(4);
        }
        let tail_src = wide_src.remainder();
        let tail_dst = wide_dst.into_remainder();
        for (s, d) in tail_src.chunks(16).zip(tail_dst.chunks_mut(16)) {
            let ks = self.cipher.encrypt(self.counter_block(ctr));
            for ((d, s), k) in d.iter_mut().zip(s.iter()).zip(ks.iter()) {
                *d = *s ^ *k;
            }
            ctr = ctr.wrapping_add(1);
        }
    }

    /// The unbatched reference implementation: one counter block expanded
    /// and XORed at a time, byte by byte. Kept only so the `vectorization`
    /// harness can quote the win of [`apply_keystream_at`]'s batched path;
    /// the data path never calls this.
    ///
    /// [`apply_keystream_at`]: AesCtr::apply_keystream_at
    pub fn apply_keystream_scalar_at(&self, data: &mut [u8], start_block: u32) {
        let mut ctr = start_block;
        for chunk in data.chunks_mut(16) {
            let ks = self.cipher.encrypt(self.counter_block(ctr));
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= *k;
            }
            ctr = ctr.wrapping_add(1);
        }
    }

    /// XOR `data` with the keystream starting at block 0, in place.
    pub fn apply_keystream(&self, data: &mut [u8]) {
        self.apply_keystream_at(data, 0);
    }

    /// The keystream block index covering `byte_offset` of a stream that
    /// began at `start_block`. CTR counters wrap modulo 2³², matching the
    /// source side's counter arithmetic. `byte_offset` must be block-aligned
    /// (a mid-block seek has no counter-block representation).
    pub fn block_at(start_block: u32, byte_offset: usize) -> u32 {
        assert!(byte_offset.is_multiple_of(16), "keystream seek offset must be block-aligned");
        start_block.wrapping_add((byte_offset / 16) as u32)
    }

    /// Position a streaming cursor at `block`: the cursor's next keystream
    /// byte is byte 0 of that counter block, exactly as if the stream had
    /// been consumed up to there. This is what makes CTR splittable — every
    /// sub-range of a payload can be decrypted independently by seeking its
    /// own cursor to [`block_at`](AesCtr::block_at)`(start, offset)`.
    pub fn seek_to_block(&self, block: u32) -> AesCtrCursor<'_> {
        AesCtrCursor { ctr: self, block }
    }

    /// Encrypt a buffer, returning a new vector.
    pub fn encrypt(&self, data: &[u8]) -> Vec<u8> {
        let mut out = data.to_vec();
        self.apply_keystream(&mut out);
        out
    }

    /// Decrypt a buffer, returning a new vector (identical to [`encrypt`]
    /// because CTR is an XOR stream, provided for readability at call sites).
    ///
    /// [`encrypt`]: AesCtr::encrypt
    pub fn decrypt(&self, data: &[u8]) -> Vec<u8> {
        self.encrypt(data)
    }
}

/// A keystream cursor created by [`AesCtr::seek_to_block`]: applies the
/// keystream to successive windows, advancing its counter block as it goes.
///
/// Each application advances the cursor by the number of *whole* blocks the
/// window consumed, rounded up — so after applying a window whose length is
/// not a multiple of 16 the cursor sits on the next block boundary. That is
/// the discipline streaming consumers already follow (only the final window
/// of a stream may be partial), and it keeps a sequence of block-aligned
/// window applications byte-identical to one contiguous application.
pub struct AesCtrCursor<'c> {
    ctr: &'c AesCtr,
    block: u32,
}

impl AesCtrCursor<'_> {
    /// The counter block the next keystream byte comes from.
    pub fn block(&self) -> u32 {
        self.block
    }

    /// XOR `src` with the keystream at the cursor, writing into `dst`
    /// (same contract as [`AesCtr::apply_keystream_into`]), then advance.
    pub fn apply_into(&mut self, src: &[u8], dst: &mut [u8]) {
        self.ctr.apply_keystream_into(src, dst, self.block);
        self.block = self.block.wrapping_add(src.len().div_ceil(16) as u32);
    }

    /// XOR `data` with the keystream at the cursor in place (same contract
    /// as [`AesCtr::apply_keystream_at`]), then advance.
    pub fn apply_in_place(&mut self, data: &mut [u8]) {
        self.ctr.apply_keystream_at(data, self.block);
        self.block = self.block.wrapping_add(data.len().div_ceil(16) as u32);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// NIST SP 800-38A F.5.1 CTR-AES128.Encrypt, first block.
    #[test]
    fn nist_ctr_vector_first_block() {
        let key: Key128 = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        // The NIST vector uses the full 16-byte initial counter block below;
        // our nonce layout overwrites the last 4 bytes with the block index,
        // so set those last 4 bytes via start_block instead.
        let nonce: Nonce = [
            0xf0, 0xf1, 0xf2, 0xf3, 0xf4, 0xf5, 0xf6, 0xf7, 0xf8, 0xf9, 0xfa, 0xfb, 0x00, 0x00,
            0x00, 0x00,
        ];
        let ctr = AesCtr::new(&key, &nonce);
        let mut data = [
            0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f, 0x96, 0xe9, 0x3d, 0x7e, 0x11, 0x73, 0x93,
            0x17, 0x2a,
        ];
        // Initial counter in the NIST vector ends with fcfdfeff.
        ctr.apply_keystream_at(&mut data, 0xfcfdfeff);
        let expected = [
            0x87, 0x4d, 0x61, 0x91, 0xb6, 0x20, 0xe3, 0x26, 0x1b, 0xef, 0x68, 0x64, 0x99, 0x0d,
            0xb6, 0xce,
        ];
        assert_eq!(data, expected);
    }

    #[test]
    fn round_trip_restores_plaintext() {
        let ctr = AesCtr::new(&[9u8; 16], &[3u8; 16]);
        let plain: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let enc = ctr.encrypt(&plain);
        assert_ne!(enc, plain);
        assert_eq!(ctr.decrypt(&enc), plain);
    }

    #[test]
    fn different_nonces_yield_different_ciphertexts() {
        let plain = vec![0u8; 64];
        let a = AesCtr::new(&[1u8; 16], &[1u8; 16]).encrypt(&plain);
        let b = AesCtr::new(&[1u8; 16], &[2u8; 16]).encrypt(&plain);
        assert_ne!(a, b);
    }

    #[test]
    fn partial_final_block_is_handled() {
        let ctr = AesCtr::new(&[5u8; 16], &[6u8; 16]);
        let plain = vec![0xAB; 21]; // not a multiple of 16
        let enc = ctr.encrypt(&plain);
        assert_eq!(enc.len(), 21);
        assert_eq!(ctr.decrypt(&enc), plain);
    }

    #[test]
    fn batched_keystream_matches_scalar_reference_at_every_length() {
        let ctr = AesCtr::new(&[0x11u8; 16], &[0x22u8; 16]);
        // Cover: empty, sub-block, exactly 4 blocks, 4 blocks + tail,
        // unaligned tails straddling the wide/narrow boundary.
        for len in [0usize, 1, 15, 16, 17, 63, 64, 65, 100, 128, 1000, 4096] {
            for start in [0u32, 1, 0xFFFF_FFFE] {
                let plain: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
                let mut fast = plain.clone();
                let mut slow = plain.clone();
                ctr.apply_keystream_at(&mut fast, start);
                ctr.apply_keystream_scalar_at(&mut slow, start);
                assert_eq!(fast, slow, "len {len} start {start}");
            }
        }
    }

    #[test]
    fn keystream_into_matches_in_place_at_every_length() {
        let ctr = AesCtr::new(&[0x11u8; 16], &[0x22u8; 16]);
        for len in [0usize, 1, 15, 16, 17, 63, 64, 65, 100, 128, 1000, 4096] {
            for start in [0u32, 1, 0xFFFF_FFFE] {
                let src: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
                let mut in_place = src.clone();
                ctr.apply_keystream_at(&mut in_place, start);
                let mut out = vec![0u8; len];
                ctr.apply_keystream_into(&src, &mut out, start);
                assert_eq!(out, in_place, "len {len} start {start}");
            }
        }
    }

    #[test]
    fn keystream_into_leaves_source_untouched() {
        let ctr = AesCtr::new(&[7u8; 16], &[8u8; 16]);
        let src: Vec<u8> = (0..200u32).map(|i| (i % 256) as u8).collect();
        let snapshot = src.clone();
        let mut dst = vec![0u8; src.len()];
        ctr.apply_keystream_into(&src, &mut dst, 5);
        assert_eq!(src, snapshot);
        // Round trip: decrypting the output restores the source.
        let mut back = vec![0u8; dst.len()];
        ctr.apply_keystream_into(&dst, &mut back, 5);
        assert_eq!(back, src);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn keystream_into_rejects_mismatched_lengths() {
        let ctr = AesCtr::new(&[1u8; 16], &[2u8; 16]);
        let src = [0u8; 16];
        let mut dst = [0u8; 8];
        ctr.apply_keystream_into(&src, &mut dst, 0);
    }

    #[test]
    fn seeked_cursor_windows_match_one_contiguous_application() {
        // The parallel-ingest property: splitting a stream at block-aligned
        // boundaries and decrypting each sub-range through its own seeked
        // cursor is byte-identical to one contiguous pass.
        let ctr = AesCtr::new(&[0x4Au8; 16], &[0x5Bu8; 16]);
        for (len, window) in [(4096usize, 96usize), (1000, 48), (4080, 4080), (337, 64)] {
            for start in [0u32, 7, 0xFFFF_FFF0] {
                let src: Vec<u8> = (0..len).map(|i| (i * 31 % 251) as u8).collect();
                let mut reference = vec![0u8; len];
                ctr.apply_keystream_into(&src, &mut reference, start);
                // Stream the same bytes through window-sized cursor steps,
                // restarting a fresh cursor at every window via block_at.
                let mut streamed = vec![0u8; len];
                for (i, (s, d)) in src.chunks(window).zip(streamed.chunks_mut(window)).enumerate() {
                    let mut cursor = ctr.seek_to_block(AesCtr::block_at(start, i * window));
                    cursor.apply_into(s, d);
                }
                assert_eq!(streamed, reference, "len {len} window {window} start {start}");
            }
        }
    }

    #[test]
    fn cursor_advances_across_windows_and_partial_tails() {
        let ctr = AesCtr::new(&[0x4Au8; 16], &[0x5Bu8; 16]);
        let src: Vec<u8> = (0..200).map(|i| (i % 251) as u8).collect();
        let mut reference = vec![0u8; 200];
        ctr.apply_keystream_into(&src, &mut reference, 3);
        // One cursor consuming successive block-aligned windows, ending with
        // a partial tail (200 = 64 + 128 + 8).
        let mut cursor = ctr.seek_to_block(3);
        assert_eq!(cursor.block(), 3);
        let mut out = vec![0u8; 200];
        cursor.apply_into(&src[..64], &mut out[..64]);
        assert_eq!(cursor.block(), 7);
        cursor.apply_into(&src[64..192], &mut out[64..192]);
        assert_eq!(cursor.block(), 15);
        cursor.apply_into(&src[192..], &mut out[192..]);
        // Partial tail (8 bytes) still advances a whole block.
        assert_eq!(cursor.block(), 16);
        assert_eq!(out, reference);
        // And the in-place variant round-trips the same bytes.
        let mut back = out.clone();
        let mut cursor = ctr.seek_to_block(3);
        cursor.apply_in_place(&mut back);
        assert_eq!(back, src);
    }

    #[test]
    fn block_at_wraps_like_the_counter() {
        assert_eq!(AesCtr::block_at(0, 0), 0);
        assert_eq!(AesCtr::block_at(5, 160), 15);
        // The counter wraps modulo 2^32, as the source side's does.
        assert_eq!(AesCtr::block_at(u32::MAX, 32), 1);
    }

    #[test]
    #[should_panic(expected = "block-aligned")]
    fn block_at_rejects_mid_block_offsets() {
        AesCtr::block_at(0, 8);
    }

    #[test]
    fn keystream_blocks_are_position_dependent() {
        let ctr = AesCtr::new(&[5u8; 16], &[6u8; 16]);
        let mut a = vec![0u8; 16];
        let mut b = vec![0u8; 16];
        ctr.apply_keystream_at(&mut a, 0);
        ctr.apply_keystream_at(&mut b, 1);
        assert_ne!(a, b);
    }
}
