//! From-scratch cryptographic substrate for StreamBox-TZ.
//!
//! The paper encrypts source→edge and edge→cloud streams with 128-bit AES and
//! signs egress results inside the TEE. This crate provides the minimal
//! primitives that the data plane needs for those paths — AES-128 in CTR
//! mode, SHA-256, HMAC-SHA-256 and HKDF key derivation — implemented
//! directly from the public
//! algorithm specifications (FIPS 197, FIPS 180-4, RFC 2104, RFC 5869) so that the
//! simulated trusted computing base carries no external dependencies.
//!
//! These implementations favour clarity over constant-time hardening; the
//! reproduction measures the *throughput cost* of encryption on the data
//! path (a per-byte software cost), which this faithfully provides.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod ctr;
pub mod hmac;
pub mod kdf;
pub mod sha256;
pub mod sign;

pub use aes::Aes128;
pub use ctr::{AesCtr, AesCtrCursor};
pub use hmac::{hmac_sha256, hmac_sha256_parts};
pub use kdf::{
    hkdf_expand, hkdf_extract, KeySet, MasterSecret, SealingKeySet, TenantKeychain, VerifierKeySet,
};
pub use sha256::{sha256, Sha256};
pub use sign::{Signature, SigningKey};

/// A 128-bit symmetric key shared between sources, the edge TEE and the
/// cloud consumer.
pub type Key128 = [u8; 16];

/// A 128-bit nonce / initialization vector for CTR mode.
pub type Nonce = [u8; 16];
