//! Egress signing.
//!
//! At the pipeline egress, the data plane encrypts, signs, and sends results
//! to the cloud (§3.2). The reproduction uses HMAC-SHA-256 with a key shared
//! between the TEE and the cloud consumer; the same key also authenticates
//! the periodic audit-record uploads so the verifier can trust them.

use crate::hmac::{hmac_sha256, hmac_sha256_parts, verify_hmac};

/// A MAC over an egress message or an audit-record flush.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Signature(pub [u8; 32]);

/// A symmetric signing key shared between the edge TEE and the cloud.
#[derive(Clone)]
pub struct SigningKey {
    key: Vec<u8>,
}

impl SigningKey {
    /// Construct a signing key from raw bytes.
    pub fn new(key: &[u8]) -> Self {
        SigningKey { key: key.to_vec() }
    }

    /// Sign a message.
    pub fn sign(&self, message: &[u8]) -> Signature {
        Signature(hmac_sha256(&self.key, message))
    }

    /// Verify a message/signature pair.
    pub fn verify(&self, message: &[u8], signature: &Signature) -> bool {
        let expected = hmac_sha256(&self.key, message);
        verify_hmac(&expected, &signature.0)
    }

    /// Sign the concatenation of `parts` without materializing it —
    /// identical to [`sign`](Self::sign) over the joined bytes. Audit
    /// segments sign `header || compressed-payload`; this spares the
    /// signer (and verifier) a payload-sized copy per segment.
    pub fn sign_parts(&self, parts: &[&[u8]]) -> Signature {
        Signature(hmac_sha256_parts(&self.key, parts))
    }

    /// Verify a signature over the concatenation of `parts` (the
    /// counterpart of [`sign_parts`](Self::sign_parts)).
    pub fn verify_parts(&self, parts: &[&[u8]], signature: &Signature) -> bool {
        let expected = hmac_sha256_parts(&self.key, parts);
        verify_hmac(&expected, &signature.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_and_verify_round_trip() {
        let key = SigningKey::new(b"edge-cloud-shared-key");
        let msg = b"window 7 results: house 3 -> 4 plugs";
        let sig = key.sign(msg);
        assert!(key.verify(msg, &sig));
    }

    #[test]
    fn verification_fails_for_tampered_message() {
        let key = SigningKey::new(b"edge-cloud-shared-key");
        let sig = key.sign(b"original");
        assert!(!key.verify(b"tampered", &sig));
    }

    #[test]
    fn verification_fails_for_wrong_key() {
        let key_a = SigningKey::new(b"key-a");
        let key_b = SigningKey::new(b"key-b");
        let sig = key_a.sign(b"message");
        assert!(!key_b.verify(b"message", &sig));
    }

    #[test]
    fn signatures_differ_across_messages() {
        let key = SigningKey::new(b"k");
        assert_ne!(key.sign(b"a"), key.sign(b"b"));
    }

    #[test]
    fn part_signatures_interchange_with_contiguous_ones() {
        let key = SigningKey::new(b"edge-cloud-shared-key");
        let sig = key.sign_parts(&[b"header|", b"", b"payload bytes"]);
        assert!(key.verify(b"header|payload bytes", &sig));
        assert!(key.verify_parts(&[b"header", b"|payload ", b"bytes"], &sig));
        assert!(!key.verify_parts(&[b"header|", b"payload bytes!"], &sig));
    }
}
