//! AES-128 block cipher (FIPS 197), software implementation.
//!
//! Only encryption of single 16-byte blocks is provided; CTR mode (the only
//! mode used on the StreamBox-TZ data path) never needs block decryption.

/// The AES S-box.
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// Round constants for key expansion.
const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

/// The word-parallel round table: `TE0[b]` packs one byte's SubBytes +
/// MixColumns contribution to a whole output column as
/// `(2·S[b]) | (S[b] << 8) | (S[b] << 16) | (3·S[b] << 24)`; contributions
/// for the other three row positions are byte rotations of the same word.
/// This turns a round into 16 table lookups and XORs on 32-bit words —
/// the software analogue of vectorizing the cipher (used only by the
/// multi-block [`Aes128::encrypt4`] hot path; the byte-wise single-block
/// path remains the reference the KATs pin down).
static TE0: [u32; 256] = build_te0();

const fn build_te0() -> [u32; 256] {
    let mut t = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let s = SBOX[i] as u32;
        let s2 = ((s << 1) ^ ((s >> 7) * 0x1b)) & 0xff;
        let s3 = s2 ^ s;
        t[i] = s2 | (s << 8) | (s << 16) | (s3 << 24);
        i += 1;
    }
    t
}

/// Multiply by x (i.e. {02}) in GF(2^8) with the AES reduction polynomial.
/// Branchless, so the compiler can vectorize MixColumns across lanes.
#[inline]
fn xtime(b: u8) -> u8 {
    (b << 1) ^ (((b >> 7) & 1) * 0x1b)
}

/// AES-128 with a pre-expanded key schedule.
#[derive(Clone)]
pub struct Aes128 {
    /// 11 round keys of 16 bytes each.
    round_keys: [[u8; 16]; 11],
    /// The same round keys as little-endian column words (the layout the
    /// word-parallel multi-block path consumes).
    round_key_cols: [[u32; 4]; 11],
}

impl Aes128 {
    /// Expand a 128-bit key into the 11 round keys.
    pub fn new(key: &[u8; 16]) -> Self {
        let mut w = [[0u8; 4]; 44];
        for (i, chunk) in key.chunks_exact(4).enumerate() {
            w[i].copy_from_slice(chunk);
        }
        for i in 4..44 {
            let mut temp = w[i - 1];
            if i % 4 == 0 {
                // RotWord then SubWord then Rcon.
                temp.rotate_left(1);
                for b in temp.iter_mut() {
                    *b = SBOX[*b as usize];
                }
                temp[0] ^= RCON[i / 4 - 1];
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; 11];
        let mut round_key_cols = [[0u32; 4]; 11];
        for r in 0..11 {
            for c in 0..4 {
                round_keys[r][c * 4..c * 4 + 4].copy_from_slice(&w[r * 4 + c]);
                round_key_cols[r][c] = u32::from_le_bytes(w[r * 4 + c]);
            }
        }
        Aes128 { round_keys, round_key_cols }
    }

    /// Encrypt one 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        add_round_key(block, &self.round_keys[0]);
        for round in 1..10 {
            sub_bytes(block);
            shift_rows(block);
            mix_columns(block);
            add_round_key(block, &self.round_keys[round]);
        }
        sub_bytes(block);
        shift_rows(block);
        add_round_key(block, &self.round_keys[10]);
    }

    /// Encrypt a 16-byte block, returning the ciphertext.
    pub fn encrypt(&self, block: [u8; 16]) -> [u8; 16] {
        let mut b = block;
        self.encrypt_block(&mut b);
        b
    }

    /// Encrypt four consecutive 16-byte blocks in lockstep (lane-parallel).
    ///
    /// Each AES round is applied across all four states before the next
    /// round begins, so the four independent data paths interleave: the
    /// compiler can keep all lanes in registers, hide the S-box load
    /// latency of one lane behind the arithmetic of the others, and
    /// auto-vectorize the XOR-heavy steps. This is the block-function shape
    /// the CTR hot loop wants (§9.3's vectorization lesson applied to the
    /// ingress/egress cipher rather than Sort).
    pub fn encrypt4(&self, blocks: &mut [u8; 64]) {
        // Each state is four little-endian column words; four states are
        // advanced in lockstep so each round's 64 independent table lookups
        // and XOR chains interleave freely.
        let mut s = [[0u32; 4]; 4];
        for (lane, state) in s.iter_mut().enumerate() {
            for (c, col) in state.iter_mut().enumerate() {
                let off = lane * 16 + c * 4;
                *col = u32::from_le_bytes(blocks[off..off + 4].try_into().unwrap());
            }
        }
        for state in s.iter_mut() {
            for (col, rk) in state.iter_mut().zip(self.round_key_cols[0]) {
                *col ^= rk;
            }
        }
        for round in 1..10 {
            let rk = &self.round_key_cols[round];
            for state in s.iter_mut() {
                *state = table_round(state, rk);
            }
        }
        let rk = &self.round_key_cols[10];
        for state in s.iter_mut() {
            *state = last_round(state, rk);
        }
        for (lane, state) in s.iter().enumerate() {
            for (c, col) in state.iter().enumerate() {
                let off = lane * 16 + c * 4;
                blocks[off..off + 4].copy_from_slice(&col.to_le_bytes());
            }
        }
    }
}

/// One full word-parallel AES round (SubBytes + ShiftRows + MixColumns +
/// AddRoundKey) over a four-column state. ShiftRows appears as the column
/// rotation in the input indices: output column `c` draws its row-`r` byte
/// from column `(c + r) % 4`.
#[inline]
fn table_round(s: &[u32; 4], rk: &[u32; 4]) -> [u32; 4] {
    let mut out = [0u32; 4];
    for (c, o) in out.iter_mut().enumerate() {
        *o = TE0[(s[c] & 0xff) as usize]
            ^ TE0[((s[(c + 1) & 3] >> 8) & 0xff) as usize].rotate_left(8)
            ^ TE0[((s[(c + 2) & 3] >> 16) & 0xff) as usize].rotate_left(16)
            ^ TE0[((s[(c + 3) & 3] >> 24) & 0xff) as usize].rotate_left(24)
            ^ rk[c];
    }
    out
}

/// The final round (no MixColumns): plain S-box lookups reassembled into
/// column words.
#[inline]
fn last_round(s: &[u32; 4], rk: &[u32; 4]) -> [u32; 4] {
    let mut out = [0u32; 4];
    for (c, o) in out.iter_mut().enumerate() {
        *o = (SBOX[(s[c] & 0xff) as usize] as u32)
            | (SBOX[((s[(c + 1) & 3] >> 8) & 0xff) as usize] as u32) << 8
            | (SBOX[((s[(c + 2) & 3] >> 16) & 0xff) as usize] as u32) << 16
            | (SBOX[((s[(c + 3) & 3] >> 24) & 0xff) as usize] as u32) << 24;
        *o ^= rk[c];
    }
    out
}

#[inline]
fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for i in 0..16 {
        state[i] ^= rk[i];
    }
}

#[inline]
fn sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

/// State is column-major: byte index = col*4 + row.
#[inline]
fn shift_rows(state: &mut [u8; 16]) {
    // Row 1: shift left by 1.
    let t = state[1];
    state[1] = state[5];
    state[5] = state[9];
    state[9] = state[13];
    state[13] = t;
    // Row 2: shift left by 2.
    state.swap(2, 10);
    state.swap(6, 14);
    // Row 3: shift left by 3 (== right by 1).
    let t = state[15];
    state[15] = state[11];
    state[11] = state[7];
    state[7] = state[3];
    state[3] = t;
}

#[inline]
fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let i = c * 4;
        let a0 = state[i];
        let a1 = state[i + 1];
        let a2 = state[i + 2];
        let a3 = state[i + 3];
        let all = a0 ^ a1 ^ a2 ^ a3;
        state[i] = a0 ^ all ^ xtime(a0 ^ a1);
        state[i + 1] = a1 ^ all ^ xtime(a1 ^ a2);
        state[i + 2] = a2 ^ all ^ xtime(a2 ^ a3);
        state[i + 3] = a3 ^ all ^ xtime(a3 ^ a0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// FIPS-197 Appendix C.1 example vector.
    #[test]
    fn fips197_appendix_c1_vector() {
        let key: [u8; 16] = [
            0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
            0x0e, 0x0f,
        ];
        let plain: [u8; 16] = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        let expected: [u8; 16] = [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a,
        ];
        let aes = Aes128::new(&key);
        assert_eq!(aes.encrypt(plain), expected);
    }

    /// NIST SP 800-38A F.1.1 ECB-AES128 first block.
    #[test]
    fn nist_sp800_38a_ecb_first_block() {
        let key: [u8; 16] = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let plain: [u8; 16] = [
            0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f, 0x96, 0xe9, 0x3d, 0x7e, 0x11, 0x73, 0x93,
            0x17, 0x2a,
        ];
        let expected: [u8; 16] = [
            0x3a, 0xd7, 0x7b, 0xb4, 0x0d, 0x7a, 0x36, 0x60, 0xa8, 0x9e, 0xca, 0xf3, 0x24, 0x66,
            0xef, 0x97,
        ];
        let aes = Aes128::new(&key);
        assert_eq!(aes.encrypt(plain), expected);
    }

    #[test]
    fn encrypt4_matches_four_single_block_encryptions() {
        let aes = Aes128::new(&[0x42u8; 16]);
        let mut blocks = [0u8; 64];
        for (i, b) in blocks.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(37).wrapping_add(11);
        }
        let mut expected = [0u8; 64];
        for lane in 0..4 {
            let single: [u8; 16] = blocks[lane * 16..lane * 16 + 16].try_into().unwrap();
            expected[lane * 16..lane * 16 + 16].copy_from_slice(&aes.encrypt(single));
        }
        aes.encrypt4(&mut blocks);
        assert_eq!(blocks, expected);
    }

    #[test]
    fn encryption_is_deterministic_and_key_dependent() {
        let block = [7u8; 16];
        let a = Aes128::new(&[1u8; 16]).encrypt(block);
        let b = Aes128::new(&[1u8; 16]).encrypt(block);
        let c = Aes128::new(&[2u8; 16]).encrypt(block);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, block);
    }

    #[test]
    fn xtime_matches_reference_values() {
        assert_eq!(xtime(0x57), 0xae);
        assert_eq!(xtime(0xae), 0x47);
        assert_eq!(xtime(0x80), 0x1b);
    }
}
