//! HMAC-SHA-256 (RFC 2104 / FIPS 198-1).

use crate::sha256::{sha256, Sha256};

const BLOCK_SIZE: usize = 64;

/// Compute `HMAC-SHA-256(key, message)`.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    hmac_sha256_parts(key, &[message])
}

/// Compute `HMAC-SHA-256(key, concat(parts))` without materializing the
/// concatenation: the incremental SHA-256 core absorbs each part in place.
/// Identical to [`hmac_sha256`] over the concatenated bytes — callers that
/// sign `header || payload` messages (audit segments) avoid copying the
/// payload into a scratch buffer just to sign it.
pub fn hmac_sha256_parts(key: &[u8], parts: &[&[u8]]) -> [u8; 32] {
    // Keys longer than the block size are hashed first.
    let mut key_block = [0u8; BLOCK_SIZE];
    if key.len() > BLOCK_SIZE {
        let digest = sha256(key);
        key_block[..32].copy_from_slice(&digest);
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }

    let mut ipad = [0x36u8; BLOCK_SIZE];
    let mut opad = [0x5cu8; BLOCK_SIZE];
    for i in 0..BLOCK_SIZE {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }

    let mut inner = Sha256::new();
    inner.update(&ipad);
    for part in parts {
        inner.update(part);
    }
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Constant-length comparison of two MACs.
///
/// The comparison is branch-free over the full 32 bytes so that verification
/// time does not depend on where the first mismatching byte is.
pub fn verify_hmac(expected: &[u8; 32], actual: &[u8; 32]) -> bool {
    let mut diff = 0u8;
    for i in 0..32 {
        diff |= expected[i] ^ actual[i];
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{:02x}", b)).collect()
    }

    /// RFC 4231 test case 1.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0b_u8; 20];
        let msg = b"Hi There";
        assert_eq!(
            hex(&hmac_sha256(&key, msg)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    /// RFC 4231 test case 2 ("Jefe").
    #[test]
    fn rfc4231_case2() {
        assert_eq!(
            hex(&hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    /// RFC 4231 test case 3 (0xaa key, 0xdd data).
    #[test]
    fn rfc4231_case3() {
        let key = [0xaa_u8; 20];
        let msg = [0xdd_u8; 50];
        assert_eq!(
            hex(&hmac_sha256(&key, &msg)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    /// RFC 4231 test case 6: key larger than the block size.
    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaa_u8; 131];
        let msg = b"Test Using Larger Than Block-Size Key - Hash Key First";
        assert_eq!(
            hex(&hmac_sha256(&key, msg)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn parts_match_concatenation_across_splits() {
        // Same message split every way across 1..4 parts (including empty
        // parts) must produce the contiguous MAC.
        let msg = b"header:12|payload with enough bytes to cross a block boundary \
                    0123456789abcdef0123456789abcdef0123456789abcdef";
        let whole = hmac_sha256(b"split-key", msg);
        for a in 0..msg.len() {
            for b in a..msg.len() {
                assert_eq!(
                    hmac_sha256_parts(b"split-key", &[&msg[..a], &msg[a..b], &msg[b..]]),
                    whole,
                    "split at ({a},{b}) diverged"
                );
            }
        }
        assert_eq!(hmac_sha256_parts(b"split-key", &[]), hmac_sha256(b"split-key", b""));
    }

    #[test]
    fn verify_detects_mismatch() {
        let a = hmac_sha256(b"k", b"m");
        let mut b = a;
        assert!(verify_hmac(&a, &b));
        b[31] ^= 1;
        assert!(!verify_hmac(&a, &b));
    }
}
