//! Fair scheduling of tenant sources over the shared executor.
//!
//! Two disciplines are implemented:
//!
//! * **Deficit round-robin** ([`Scheduler::DeficitRoundRobin`], the
//!   default): each lane (tenant stream) accrues a quantum of estimated
//!   *cycle cost* (`weight × drr_quantum` units per refill round, see
//!   [`sbt_engine::CycleCost`]) and spends it on work actually dispatched —
//!   bytes decrypted, events windowed, records executed. Penalties
//!   (backpressure, quota rejections) are deficit debits rather than
//!   skipped rounds. Ingestion tasks and window-execution tickets from many
//!   lanes stay **in flight simultaneously** and overlap with the offer
//!   loop itself: there is no global round barrier, so one slow tenant's
//!   window cannot stall another tenant's ingestion.
//! * **Weighted round-robin** ([`Scheduler::WeightedRoundRobin`], the
//!   pre-executor baseline): lanes are offered `weight` batches per round,
//!   each round barriers on the pool, and watermark windows execute
//!   serially on the calling thread. Kept for comparison — the
//!   `fig_server_scaling` harness sweeps both and gates on DRR not
//!   regressing.
//!
//! Service accounting is *post-paid*: the dispatch gate uses estimated
//! batch costs, but deficits are charged with the cycle cost each tenant's
//! gateway actually metered, so tenants pay for the cycles they consumed —
//! including their window executions — not for a batch count.

use crate::server::{LanePhase, StreamServer};
use parking_lot::Mutex;
use sbt_dataplane::DataPlaneError;
use sbt_engine::{CycleCost, Engine, IngestStatus, JoinHandle, StreamSide, WindowTicket};
use sbt_telemetry::FlightReason;
use sbt_types::{TenantId, Watermark};
use sbt_workloads::generator::{Generator, Offer};
use sbt_workloads::transport::Delivery;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// RAII registration of the tenants whose lanes a serve loop owns, so
/// [`StreamServer::drain`] hands teardown to the loop instead of racing it.
struct ServingGuard<'a> {
    server: &'a StreamServer,
    ids: Vec<TenantId>,
}

impl<'a> ServingGuard<'a> {
    fn new(server: &'a StreamServer, ids: Vec<TenantId>) -> Self {
        server.mark_serving(&ids);
        ServingGuard { server, ids }
    }
}

impl Drop for ServingGuard<'_> {
    fn drop(&mut self) {
        self.server.unmark_serving(&self.ids);
    }
}

/// Which serving discipline [`StreamServer::serve_with`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheduler {
    /// Batch-count rounds with a global pool barrier per round (baseline).
    WeightedRoundRobin,
    /// Cycle-cost deficits with pipelined ingestion and window execution.
    DeficitRoundRobin,
}

impl Scheduler {
    /// Parse a scheduler name as used by `SBT_SCHED` (`wrr` / `drr`).
    pub fn from_name(name: &str) -> Option<Scheduler> {
        match name.trim().to_ascii_lowercase().as_str() {
            "wrr" => Some(Scheduler::WeightedRoundRobin),
            "drr" => Some(Scheduler::DeficitRoundRobin),
            _ => None,
        }
    }

    /// The `SBT_SCHED` name of this scheduler.
    pub fn name(&self) -> &'static str {
        match self {
            Scheduler::WeightedRoundRobin => "wrr",
            Scheduler::DeficitRoundRobin => "drr",
        }
    }
}

/// One tenant's input: its id plus the rate-controlled source draining into
/// it.
pub struct TenantStream {
    /// Which admitted tenant the stream feeds.
    pub tenant: TenantId,
    /// The source generator (events pre-chunked into windows).
    pub generator: Generator,
}

/// Per-tenant outcome of a serve run.
#[derive(Debug, Clone)]
pub struct TenantProgress {
    /// The tenant.
    pub tenant: TenantId,
    /// Events offered by the tenant's source.
    pub offered_events: u64,
    /// Batches accepted into the TEE.
    pub accepted_batches: u64,
    /// Batches rejected because they would exceed the tenant's quota.
    pub rejected_batches: u64,
    /// Backpressure signals the tenant's engine raised.
    pub backpressure_signals: u64,
    /// Results (windows) the tenant externalized.
    pub results: usize,
    /// Events the tenant's engine ingested.
    pub ingested_events: u64,
    /// Checkpoints sealed and vaulted for the tenant during the run
    /// (policy-driven, at lane-quiescent points; see
    /// [`TenantConfig::with_checkpoint_every_records`]).
    ///
    /// [`TenantConfig::with_checkpoint_every_records`]: crate::TenantConfig::with_checkpoint_every_records
    pub checkpoints_taken: u64,
    /// Mean output delay over the tenant's windows, in milliseconds.
    pub avg_delay_ms: f64,
    /// Maximum output delay over the tenant's windows, in milliseconds.
    pub max_delay_ms: f64,
    /// Whether the tenant departed (was drained or evicted) during the run;
    /// departed tenants' engine-side counters read zero because the
    /// namespace is gone.
    pub departed: bool,
}

/// Outcome of serving a set of tenant streams to completion.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Wall-clock nanoseconds of the whole run.
    pub wall_nanos: u64,
    /// Per-tenant progress, in the order the streams were passed.
    pub per_tenant: Vec<TenantProgress>,
}

impl ServeReport {
    /// Total events ingested across all tenants.
    pub fn aggregate_events(&self) -> u64 {
        self.per_tenant.iter().map(|t| t.ingested_events).sum()
    }

    /// Aggregate throughput in events per second.
    pub fn aggregate_events_per_sec(&self) -> f64 {
        if self.wall_nanos == 0 {
            return 0.0;
        }
        self.aggregate_events() as f64 / (self.wall_nanos as f64 / 1e9)
    }
}

/// Pure deficit round-robin bookkeeping, exported so the fairness property
/// tests can drive it without a server.
///
/// Lanes accrue `weight × quantum` cost units per refill round while
/// backlogged (an idle lane's deficit resets — classic DRR, so credit
/// cannot be hoarded). A lane may dispatch a work item while its available
/// credit (deficit minus in-flight reservations) covers the item's
/// estimated cost; completed work is charged at its *actual* metered cost.
#[derive(Debug)]
pub struct DrrAccounting {
    quantum: u64,
    lanes: Vec<DrrLane>,
}

#[derive(Debug)]
struct DrrLane {
    weight: u32,
    deficit: i64,
    reserved: u64,
}

impl DrrAccounting {
    /// Bookkeeping for `weights.len()` lanes with the given refill quantum.
    pub fn new(weights: &[u32], quantum: u64) -> Self {
        DrrAccounting {
            quantum: quantum.max(1),
            lanes: weights
                .iter()
                .map(|w| DrrLane { weight: (*w).max(1), deficit: 0, reserved: 0 })
                .collect(),
        }
    }

    /// Start a refill round: backlogged lanes accrue `weight × quantum`;
    /// idle lanes reset to zero.
    pub fn begin_round(&mut self, backlogged: impl Fn(usize) -> bool) {
        for (i, lane) in self.lanes.iter_mut().enumerate() {
            if backlogged(i) {
                lane.deficit += lane.weight as i64 * self.quantum as i64;
            } else {
                lane.deficit = lane.deficit.min(0);
            }
        }
    }

    /// Whether the lane's available credit covers an item of estimated
    /// cost `est`.
    pub fn can_dispatch(&self, lane: usize, est: u64) -> bool {
        self.lanes[lane].deficit - self.lanes[lane].reserved as i64 >= est as i64
    }

    /// Reserve estimated credit for a dispatched, still-in-flight item.
    pub fn reserve(&mut self, lane: usize, est: u64) {
        self.lanes[lane].reserved += est;
    }

    /// Release the reservation of a completed (or abandoned) item.
    pub fn release(&mut self, lane: usize, est: u64) {
        let l = &mut self.lanes[lane];
        l.reserved = l.reserved.saturating_sub(est);
    }

    /// Charge actually serviced cost against the lane's deficit.
    pub fn charge(&mut self, lane: usize, cost: u64) {
        self.lanes[lane].deficit -= cost as i64;
    }

    /// Penalize a misbehaving lane (backpressure, quota rejection) by one
    /// full round's credit.
    pub fn penalize(&mut self, lane: usize) {
        let l = &mut self.lanes[lane];
        l.deficit -= l.weight as i64 * self.quantum as i64;
    }

    /// The lane's current deficit (may be negative after penalties or
    /// cost overruns).
    pub fn deficit(&self, lane: usize) -> i64 {
        self.lanes[lane].deficit
    }
}

/// Estimated dispatch cost of one batch delivery for a lane's engine:
/// compute plus the *measured* TEE-boundary toll (world switches, and the
/// via-OS copy where configured) under the engine's platform cost model —
/// not a guessed constant. Small-batch tenants therefore pay their real,
/// higher per-event boundary cost.
fn batch_cost(engine: &Engine, delivery: &Delivery) -> u64 {
    let via_os = matches!(engine.config().variant, sbt_engine::EngineVariant::SbtIoViaOs);
    CycleCost::batch_measured(
        engine.cost_model(),
        delivery.wire_bytes.len() as u64,
        delivery.event_count as u64,
        via_os,
    )
}

/// Lane state shared by both disciplines.
struct Lane {
    tenant: TenantId,
    weight: u32,
    engine: Arc<Engine>,
    generator: Generator,
    accepted_batches: u64,
    rejected_batches: u64,
    backpressure_signals: u64,
    /// Checkpoint policy from the tenant's admitted config.
    ckpt_every_records: Option<u64>,
    ckpt_every_ms: Option<u64>,
    checkpoints_taken: u64,
}

/// DRR-only in-flight state layered over a [`Lane`].
struct DrrLaneRt {
    lane: Lane,
    /// The next undispatched offer, pulled ahead so its cost can gate
    /// dispatch.
    staged: Option<Offer>,
    /// A watermark waiting for this lane's in-flight batches to drain
    /// (batches of a window must be stashed before its watermark fires).
    pending_wm: Option<Watermark>,
    /// In-flight ingestion tasks: (estimated cost, handle).
    inflight: Vec<(u64, JoinHandle<Result<IngestStatus, DataPlaneError>>)>,
    /// In-flight window-execution tickets.
    tickets: Vec<WindowTicket>,
    /// Drain requested: finish staged/pending/in-flight work, pull nothing
    /// new, then depart the tenant.
    draining: bool,
    /// The tenant departed (evicted, or this loop finished its drain): the
    /// lane only exists to absorb in-flight completions, whose outcomes —
    /// `UnknownTenant` included — are discarded.
    dead: bool,
    /// Engine event count at the last checkpoint attempt (record-driven
    /// policies measure progress from here).
    last_ckpt_events: u64,
    /// When the last checkpoint attempt happened (wall-driven policies
    /// measure from here).
    last_ckpt_at: Instant,
    /// A window fired since the last checkpoint attempt. Amortized
    /// checkpoints wait for this: right after a fire the lane's buffered
    /// state is minimal, so the snapshot seals a few hundred bytes instead
    /// of a whole in-progress window's events.
    fired_since_ckpt: bool,
    /// A fire happened and the record-driven due-check hasn't looked at the
    /// ingest counter yet. Reading that counter takes the tenant-state lock
    /// that in-flight ingest workers hold, so the serve loop reads it once
    /// per fire — never per iteration, which would serialize against
    /// ingest.
    ckpt_check_pending: bool,
}

impl DrrLaneRt {
    /// Whether the lane still has work the serve loop must see through.
    fn live(&self) -> bool {
        if self.dead {
            return !self.inflight.is_empty() || !self.tickets.is_empty();
        }
        if self.draining {
            return self.staged.is_some()
                || self.pending_wm.is_some()
                || !self.inflight.is_empty()
                || !self.tickets.is_empty();
        }
        !self.lane.generator.is_exhausted()
            || self.staged.is_some()
            || self.pending_wm.is_some()
            || !self.inflight.is_empty()
            || !self.tickets.is_empty()
    }

    /// Whether the lane has offerable input (backlogged, in DRR terms).
    fn backlogged(&self) -> bool {
        if self.dead || self.draining {
            return false;
        }
        self.staged.is_some() || self.pending_wm.is_some() || !self.lane.generator.is_exhausted()
    }
}

/// Cap on in-flight ingestion tasks per lane: enough to keep the pool fed,
/// small enough that no lane floods the queues.
const MAX_INFLIGHT_PER_LANE: usize = 4;

/// Live mirror of [`DrrAccounting`] state published to the telemetry
/// registry (section `drr`): total cycle cost charged, penalties issued and
/// each lane's current deficit. The serve loop owns the real bookkeeping;
/// observers read this mirror so snapshots never contend with dispatch.
pub(crate) struct DrrCounters {
    charged: AtomicU64,
    penalties: AtomicU64,
    deficits: Mutex<Vec<i64>>,
}

impl DrrCounters {
    fn new(lanes: usize) -> Self {
        DrrCounters {
            charged: AtomicU64::new(0),
            penalties: AtomicU64::new(0),
            deficits: Mutex::new(vec![0; lanes]),
        }
    }

    fn add_charged(&self, cost: u64) {
        self.charged.fetch_add(cost, Ordering::Relaxed);
    }

    fn add_penalty(&self) {
        self.penalties.fetch_add(1, Ordering::Relaxed);
    }

    fn sync_deficits(&self, drr: &DrrAccounting) {
        let mut deficits = self.deficits.lock();
        for (i, d) in deficits.iter_mut().enumerate() {
            *d = drr.deficit(i);
        }
    }
}

impl sbt_telemetry::CounterSource for DrrCounters {
    fn section(&self) -> String {
        "drr".to_string()
    }

    fn collect(&self, emit: &mut dyn FnMut(&str, i64)) {
        emit("charged", self.charged.load(Ordering::Relaxed) as i64);
        emit("penalties", self.penalties.load(Ordering::Relaxed) as i64);
        for (i, d) in self.deficits.lock().iter().enumerate() {
            emit(&format!("lane{i}_deficit"), *d);
        }
    }
}

impl StreamServer {
    /// Resolve streams against the admitted tenants: one lane per stream,
    /// erroring on unknown tenants and on two streams naming the same
    /// tenant in one submission (which would silently double-drain it).
    fn lanes_for(&self, streams: Vec<TenantStream>) -> Result<Vec<Lane>, DataPlaneError> {
        let entries: HashMap<TenantId, (crate::tenant::TenantConfig, Arc<Engine>)> = self
            .entries_snapshot()
            .into_iter()
            .map(|(id, config, engine)| (id, (config, engine)))
            .collect();
        let mut seen: HashSet<TenantId> = HashSet::new();
        let mut lanes = Vec::with_capacity(streams.len());
        for s in streams {
            let (config, engine) =
                entries.get(&s.tenant).cloned().ok_or(DataPlaneError::UnknownTenant)?;
            if !seen.insert(s.tenant) {
                return Err(DataPlaneError::UnknownTenant);
            }
            lanes.push(Lane {
                tenant: s.tenant,
                weight: config.weight,
                engine,
                generator: s.generator,
                accepted_batches: 0,
                rejected_batches: 0,
                backpressure_signals: 0,
                ckpt_every_records: config.checkpoint_every_records,
                ckpt_every_ms: config.checkpoint_every_ms,
                checkpoints_taken: 0,
            });
        }
        Ok(lanes)
    }

    fn report(&self, lanes: &[Lane], wall_nanos: u64) -> ServeReport {
        let per_tenant = lanes
            .iter()
            .map(|lane| {
                let metrics = lane.engine.metrics();
                TenantProgress {
                    tenant: lane.tenant,
                    offered_events: lane.generator.offered_events(),
                    accepted_batches: lane.accepted_batches,
                    rejected_batches: lane.rejected_batches,
                    backpressure_signals: lane.backpressure_signals,
                    results: lane.engine.results_len(),
                    ingested_events: metrics.events_ingested,
                    checkpoints_taken: lane.checkpoints_taken,
                    avg_delay_ms: metrics.avg_delay_ms(),
                    max_delay_ms: metrics.max_delay_ms(),
                    departed: self.is_departed(lane.tenant),
                }
            })
            .collect();
        ServeReport { wall_nanos, per_tenant }
    }

    /// Drain every tenant stream to exhaustion under the default scheduler
    /// (deficit round-robin).
    ///
    /// Returns an error only for streams naming un-admitted (or duplicated)
    /// tenants or for data-plane failures other than quota rejections
    /// (those are counted, not fatal).
    pub fn serve(&self, streams: Vec<TenantStream>) -> Result<ServeReport, DataPlaneError> {
        self.serve_with(streams, Scheduler::DeficitRoundRobin)
    }

    /// Drain every tenant stream to exhaustion under an explicit scheduler.
    pub fn serve_with(
        &self,
        streams: Vec<TenantStream>,
        scheduler: Scheduler,
    ) -> Result<ServeReport, DataPlaneError> {
        match scheduler {
            Scheduler::WeightedRoundRobin => self.serve_wrr(streams),
            Scheduler::DeficitRoundRobin => self.serve_drr(streams),
        }
    }

    /// The deficit round-robin serve loop: stage offers, dispatch them as
    /// executor tasks while deficits allow, harvest ingestion completions
    /// and window tickets as they land, and lend the calling thread to the
    /// executor when there is nothing to orchestrate.
    fn serve_drr(&self, streams: Vec<TenantStream>) -> Result<ServeReport, DataPlaneError> {
        let lanes = self.lanes_for(streams)?;
        let _guard = ServingGuard::new(self, lanes.iter().map(|l| l.tenant).collect());
        let executor = self.worker_pool().clone();
        let mut rt: Vec<DrrLaneRt> = lanes
            .into_iter()
            .map(|lane| {
                // Reset the cost meter so this run's charges start at zero.
                let _ = lane.engine.drain_serviced_cost();
                DrrLaneRt {
                    lane,
                    staged: None,
                    pending_wm: None,
                    inflight: Vec::new(),
                    tickets: Vec::new(),
                    draining: false,
                    dead: false,
                    last_ckpt_events: 0,
                    last_ckpt_at: Instant::now(),
                    fired_since_ckpt: false,
                    ckpt_check_pending: false,
                }
            })
            .collect();
        let weights: Vec<u32> = rt.iter().map(|l| l.lane.weight).collect();
        let mut drr = DrrAccounting::new(&weights, self.config().drr_quantum);
        let telemetry = self.telemetry().clone();
        let drr_counters = Arc::new(DrrCounters::new(rt.len()));
        telemetry.register_source(&drr_counters);
        // Keep the mirror alive past this loop so post-run snapshots still
        // see the final deficits (the registry only holds it weakly).
        self.retain_drr_mirror(drr_counters.clone());
        let mut fatal: Option<DataPlaneError> = None;
        let start = Instant::now();

        let lane_ids: Vec<TenantId> = rt.iter().map(|l| l.lane.tenant).collect();
        loop {
            let mut progress = false;
            let phases = self.lane_phases(&lane_ids);

            for (li, l) in rt.iter_mut().enumerate() {
                // Lifecycle check: an eviction (from any thread) unwinds the
                // lane mid-serve; a drain request stops its intake.
                if !l.dead {
                    match phases[li] {
                        LanePhase::Departed => {
                            l.dead = true;
                            l.staged = None;
                            l.pending_wm = None;
                            progress = true;
                        }
                        LanePhase::Draining if !l.draining => {
                            l.draining = true;
                            // The staged batch never entered the TEE; drop
                            // it. A staged watermark still closes the
                            // windows whose batches are already in.
                            if matches!(l.staged, Some(Offer::Batch(_))) {
                                l.staged = None;
                            }
                            progress = true;
                        }
                        _ => {}
                    }
                }

                // Harvest finished ingestion tasks (any completion order).
                let mut harvested = Vec::new();
                l.inflight.retain_mut(|(est, handle)| match handle.try_join() {
                    None => true,
                    Some(done) => {
                        harvested.push((*est, done));
                        false
                    }
                });
                for (est, done) in harvested {
                    drr.release(li, est);
                    progress = true;
                    match done {
                        _ if l.dead => {
                            // The tenant departed with this batch in flight:
                            // whatever the TEE answered (including
                            // UnknownTenant) is moot.
                        }
                        Ok(Ok(IngestStatus::Accepted)) => l.lane.accepted_batches += 1,
                        Ok(Ok(IngestStatus::Backpressure)) => {
                            l.lane.accepted_batches += 1;
                            l.lane.backpressure_signals += 1;
                            drr.penalize(li);
                            drr_counters.add_penalty();
                            telemetry
                                .flight_trigger(l.lane.tenant.0, FlightReason::BackpressureStall);
                        }
                        Ok(Err(DataPlaneError::QuotaExceeded)) => {
                            // The batch is dropped: the tenant outgrew its
                            // quota. The debit penalizes only this lane.
                            l.lane.rejected_batches += 1;
                            drr.penalize(li);
                            drr_counters.add_penalty();
                            telemetry.flight_trigger(l.lane.tenant.0, FlightReason::QuotaExhausted);
                        }
                        // Evicted after this iteration's phase snapshot,
                        // with the batch in flight: the lane dies; nothing
                        // is fatal for the other tenants.
                        Ok(Err(DataPlaneError::UnknownTenant))
                            if self.lane_phase(l.lane.tenant) == LanePhase::Departed =>
                        {
                            l.dead = true;
                            l.staged = None;
                            l.pending_wm = None;
                        }
                        Ok(Err(e)) => {
                            fatal.get_or_insert(e);
                        }
                        Err(p) => {
                            telemetry.flight_trigger(l.lane.tenant.0, FlightReason::TaskPanic);
                            panic!("ingest task panicked: {}", p.message)
                        }
                    }
                }

                // Charge the cycle cost this tenant actually consumed since
                // the last look (ingestion and window execution alike).
                let serviced = l.lane.engine.drain_serviced_cost();
                if serviced > 0 {
                    drr.charge(li, serviced);
                    drr_counters.add_charged(serviced);
                }

                // Launch a pending watermark once its window's batches have
                // all been stashed; the returned ticket joins the in-flight
                // set and its window executes concurrently with everything
                // else.
                if l.inflight.is_empty() && fatal.is_none() && !l.dead {
                    if let Some(wm) = l.pending_wm.take() {
                        l.tickets.push(Engine::advance_watermark_async(
                            &l.lane.engine,
                            wm,
                            StreamSide::Left,
                        ));
                        progress = true;
                    }
                }

                // Harvest finished window tickets.
                let mut ticket_results = Vec::new();
                l.tickets.retain_mut(|t| match t.try_wait() {
                    None => true,
                    Some(result) => {
                        ticket_results.push(result);
                        false
                    }
                });
                for result in ticket_results {
                    progress = true;
                    match result {
                        _ if l.dead => {}
                        Ok(()) => {
                            l.fired_since_ckpt = true;
                            l.ckpt_check_pending = true;
                        }
                        Err(DataPlaneError::QuotaExceeded) => {
                            // Window execution tripped the tenant's quota
                            // (intermediates count too): costs the tenant
                            // its window, nothing else.
                            l.lane.rejected_batches += 1;
                            drr.penalize(li);
                            drr_counters.add_penalty();
                            telemetry.flight_trigger(l.lane.tenant.0, FlightReason::QuotaExhausted);
                        }
                        // Evicted with the window in flight: lane dies,
                        // others unaffected.
                        Err(DataPlaneError::UnknownTenant)
                            if self.lane_phase(l.lane.tenant) == LanePhase::Departed =>
                        {
                            l.dead = true;
                            l.staged = None;
                            l.pending_wm = None;
                        }
                        Err(e) => {
                            fatal.get_or_insert(e);
                        }
                    }
                }
            }

            // Finalize drains: a draining lane with nothing left in flight
            // departs its tenant (the namespace disappears only after its
            // final windows executed and were audited).
            if fatal.is_none() {
                for l in rt.iter_mut() {
                    if l.draining
                        && !l.dead
                        && l.staged.is_none()
                        && l.pending_wm.is_none()
                        && l.inflight.is_empty()
                        && l.tickets.is_empty()
                    {
                        l.lane.engine.quiesce();
                        self.finish_drain(l.lane.tenant);
                        l.dead = true;
                        progress = true;
                    }
                }
            }

            // Amortized checkpoints: a lane with a checkpoint policy whose
            // interval is due seals a snapshot at its next quiescent
            // post-fire point (no in-flight batches, window tickets or
            // staged watermark, and a window fired since the last attempt —
            // right after a fire the buffered state is minimal, so the
            // seal hashes a few hundred bytes, not a whole in-progress
            // window). The seal is one world crossing on this thread; the
            // other lanes' in-flight work keeps overlapping it, so the cost
            // is amortized exactly like any other dispatch.
            if fatal.is_none() {
                for l in rt.iter_mut() {
                    if l.dead
                        || l.draining
                        || (l.lane.ckpt_every_records.is_none() && l.lane.ckpt_every_ms.is_none())
                        || !l.fired_since_ckpt
                        || !l.inflight.is_empty()
                        || !l.tickets.is_empty()
                        || l.pending_wm.is_some()
                    {
                        continue;
                    }
                    let due_wall = l
                        .lane
                        .ckpt_every_ms
                        .map(|ms| l.last_ckpt_at.elapsed().as_millis() as u64 >= ms)
                        .unwrap_or(false);
                    if !due_wall && !l.ckpt_check_pending {
                        continue;
                    }
                    l.ckpt_check_pending = false;
                    // The raw ingest counter — read at most once per fire
                    // (see `ckpt_check_pending`), and never via
                    // `Engine::metrics()`, whose snapshot clones every
                    // window result.
                    let events = l
                        .lane
                        .engine
                        .data_plane()
                        .tenant_ingest(l.lane.tenant)
                        .map(|(e, _)| e)
                        .unwrap_or(0);
                    let due_records = l
                        .lane
                        .ckpt_every_records
                        .map(|n| events.saturating_sub(l.last_ckpt_events) >= n)
                        .unwrap_or(false);
                    if !(due_records || due_wall) {
                        continue;
                    }
                    // Mark the attempt whether or not it lands: a vault
                    // fault or a racing departure must not become a
                    // per-iteration retry storm.
                    l.last_ckpt_events = events;
                    l.last_ckpt_at = Instant::now();
                    l.fired_since_ckpt = false;
                    if let Ok(sealed) = l.lane.engine.checkpoint() {
                        if self.vault_store(l.lane.tenant, &sealed).is_ok() {
                            l.lane.checkpoints_taken += 1;
                        }
                        progress = true;
                    }
                }
            }

            // Offer phase: dispatch staged batches while deficits allow.
            let mut starved_by_credit = false;
            if fatal.is_none() {
                for (li, l) in rt.iter_mut().enumerate() {
                    if l.dead {
                        continue;
                    }
                    if l.draining {
                        // Intake is closed: only promote an already-staged
                        // watermark so the lane can finish its windows.
                        if let Some(Offer::Watermark(wm)) = l.staged.take() {
                            l.pending_wm = Some(wm);
                            progress = true;
                        }
                        continue;
                    }
                    loop {
                        if l.staged.is_none() && l.pending_wm.is_none() {
                            l.staged = l.lane.generator.next_offer();
                        }
                        match l.staged.take() {
                            None => break,
                            Some(Offer::Watermark(wm)) => {
                                // Stop pulling until the watermark launches:
                                // batches behind it belong to later windows.
                                l.pending_wm = Some(wm);
                                break;
                            }
                            Some(Offer::Batch(delivery)) => {
                                let est = batch_cost(&l.lane.engine, &delivery);
                                if l.inflight.len() >= MAX_INFLIGHT_PER_LANE {
                                    l.staged = Some(Offer::Batch(delivery));
                                    break;
                                }
                                if !drr.can_dispatch(li, est) {
                                    l.staged = Some(Offer::Batch(delivery));
                                    starved_by_credit = true;
                                    break;
                                }
                                drr.reserve(li, est);
                                let engine = l.lane.engine.clone();
                                let handle = executor
                                    .spawn(move || engine.ingest_on(&delivery, StreamSide::Left));
                                l.inflight.push((est, handle));
                                progress = true;
                            }
                        }
                    }
                }
            }

            drr_counters.sync_deficits(&drr);

            if fatal.is_some() {
                // Fatal error: stop offering (gated above), let in-flight
                // tasks and tickets drain, then return the error — a lane
                // with unoffered input must not keep the loop alive.
                if rt.iter().all(|l| l.inflight.is_empty() && l.tickets.is_empty()) {
                    break;
                }
            } else if !rt.iter().any(|l| l.live()) {
                break;
            }

            // Refill only when credit is what's actually blocking: lanes
            // starved by in-flight caps or waiting on completions get
            // nothing, so idle tenants cannot hoard credit.
            if starved_by_credit && !progress {
                drr.begin_round(|i| rt[i].backlogged());
                continue;
            }

            if !progress {
                // Nothing to orchestrate right now: lend this thread to the
                // executor rather than spinning.
                if !executor.help_one() {
                    std::thread::sleep(Duration::from_micros(50));
                }
            }
        }

        let wall_nanos = start.elapsed().as_nanos() as u64;
        let lanes: Vec<Lane> = rt.into_iter().map(|l| l.lane).collect();
        match fatal {
            Some(e) => Err(e),
            None => Ok(self.report(&lanes, wall_nanos)),
        }
    }

    /// The weighted round-robin baseline: batch-count rounds, a global pool
    /// barrier per round, serial window execution on the caller. Lifecycle
    /// transitions are handled at round boundaries (a WRR round leaves no
    /// in-flight work behind): departed lanes die, draining lanes stop
    /// pulling and depart at the end of their round.
    fn serve_wrr(&self, streams: Vec<TenantStream>) -> Result<ServeReport, DataPlaneError> {
        let mut lanes = self.lanes_for(streams)?;
        let _guard = ServingGuard::new(self, lanes.iter().map(|l| l.tenant).collect());
        // Rounds a lane sits out (backpressure / quota penalty).
        let mut penalties: Vec<u32> = vec![0; lanes.len()];
        let mut dead: Vec<bool> = vec![false; lanes.len()];
        let pool = self.worker_pool().clone();
        let start = Instant::now();
        loop {
            // Phase 0 — lifecycle.
            for (li, lane) in lanes.iter().enumerate() {
                if dead[li] {
                    continue;
                }
                match self.lane_phase(lane.tenant) {
                    LanePhase::Departed => dead[li] = true,
                    LanePhase::Draining => {
                        lane.engine.quiesce();
                        self.finish_drain(lane.tenant);
                        dead[li] = true;
                    }
                    LanePhase::Active => {}
                }
            }

            // Phase 1 — weighted offer pull: each unpenalized lane
            // contributes up to `weight` batches this round; a watermark
            // ends the lane's turn (it must run after the lane's batches).
            let mut round_batches = Vec::new();
            let mut round_marks = Vec::new();
            let mut any_live = false;
            for (li, lane) in lanes.iter_mut().enumerate() {
                if dead[li] || lane.generator.is_exhausted() {
                    continue;
                }
                any_live = true;
                if penalties[li] > 0 {
                    // The penalized tenant sits this round out; because the
                    // penalty is per lane, every other tenant still runs.
                    penalties[li] -= 1;
                    continue;
                }
                let mut pulled = 0;
                while pulled < lane.weight {
                    match lane.generator.next_offer() {
                        None => break,
                        Some(Offer::Batch(delivery)) => {
                            round_batches.push((li, delivery));
                            pulled += 1;
                        }
                        Some(Offer::Watermark(wm)) => {
                            round_marks.push((li, wm));
                            break;
                        }
                    }
                }
            }
            if !any_live {
                break;
            }

            // Phase 2 — parallel ingestion with a round barrier: every
            // tenant's batches of this round enter the shared TEE
            // concurrently, but the round completes only when the slowest
            // batch does.
            let tasks: Vec<_> = round_batches
                .into_iter()
                .map(|(li, delivery)| {
                    let engine = lanes[li].engine.clone();
                    move || (li, engine.ingest_on(&delivery, StreamSide::Left))
                })
                .collect();
            for (li, outcome) in pool.run_all(tasks) {
                let lane = &mut lanes[li];
                match outcome {
                    Ok(IngestStatus::Accepted) => lane.accepted_batches += 1,
                    Ok(IngestStatus::Backpressure) => {
                        lane.accepted_batches += 1;
                        lane.backpressure_signals += 1;
                        penalties[li] = 1;
                    }
                    Err(DataPlaneError::QuotaExceeded) => {
                        lane.rejected_batches += 1;
                        penalties[li] = 1;
                    }
                    // The tenant was evicted while its batch was in flight:
                    // the lane dies, nothing else is affected.
                    Err(DataPlaneError::UnknownTenant)
                        if self.lane_phase(lane.tenant) == LanePhase::Departed =>
                    {
                        dead[li] = true;
                    }
                    Err(e) => return Err(e),
                }
            }

            // Phase 3 — watermarks: completed windows execute serially on
            // this thread (their primitive fan-out reuses the pool).
            for (li, wm) in round_marks {
                let lane = &mut lanes[li];
                if dead[li] {
                    continue;
                }
                match lane.engine.advance_watermark(wm) {
                    Ok(()) => {}
                    Err(DataPlaneError::QuotaExceeded) => {
                        lane.rejected_batches += 1;
                        penalties[li] = 1;
                    }
                    Err(DataPlaneError::UnknownTenant)
                        if self.lane_phase(lane.tenant) == LanePhase::Departed =>
                    {
                        dead[li] = true;
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        let wall_nanos = start.elapsed().as_nanos() as u64;
        Ok(self.report(&lanes, wall_nanos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerConfig;
    use crate::tenant::TenantConfig;
    use sbt_crypto::MasterSecret;
    use sbt_engine::{Operator, Pipeline};
    use sbt_workloads::datasets::multi_tenant_streams;
    use sbt_workloads::generator::GeneratorConfig;
    use sbt_workloads::transport::Channel;

    fn pipeline(name: &str) -> Pipeline {
        Pipeline::new(name).then(Operator::WindowSum).target_delay_ms(60_000).batch_events(500)
    }

    fn streams_for(
        ids: &[TenantId],
        loads: &[Vec<sbt_workloads::datasets::StreamChunk>],
    ) -> Vec<TenantStream> {
        let master = MasterSecret::demo();
        ids.iter()
            .zip(loads)
            .map(|(tenant, chunks)| TenantStream {
                tenant: *tenant,
                generator: Generator::new(
                    GeneratorConfig { batch_events: 500 },
                    Channel::for_tenant(&master, *tenant, 0),
                    chunks.clone(),
                ),
            })
            .collect()
    }

    fn check_two_tenant_run(scheduler: Scheduler) {
        let server = StreamServer::new(ServerConfig::default().with_cores(2));
        let a = server.admit(TenantConfig::new("a", 32 << 20), pipeline("a")).unwrap();
        let b =
            server.admit(TenantConfig::new("b", 32 << 20).with_weight(2), pipeline("b")).unwrap();
        let loads = multi_tenant_streams(2, 2, 2_000, 16, 7);
        let report = server.serve_with(streams_for(&[a, b], &loads), scheduler).unwrap();
        assert_eq!(report.aggregate_events(), 2 * 2 * 2_000);
        assert!(report.aggregate_events_per_sec() > 0.0);
        // Every tenant produced one result per window, matching its oracle —
        // each opening only under its own derived keys.
        for (i, tenant) in [a, b].into_iter().enumerate() {
            let keys = server.verifier_keys(tenant).unwrap();
            let engine = server.engine(tenant).unwrap();
            let results = engine.results();
            assert_eq!(results.len(), 2, "{tenant}");
            for (w, msg) in results.iter().enumerate() {
                let plain = msg.open_with(keys.latest()).unwrap();
                let got = u64::from_le_bytes(plain[..8].try_into().unwrap());
                let expected: u64 = loads[i][w].events.iter().map(|e| e.value as u64).sum();
                assert_eq!(got, expected, "{tenant} window {w}");
            }
        }
        // Cross-tenant: a's results do not open under b's keys.
        let a_result = &server.engine(a).unwrap().results()[0];
        assert!(a_result.open_with(server.verifier_keys(b).unwrap().latest()).is_none());
    }

    #[test]
    fn drr_serves_two_tenants_to_completion_with_correct_results() {
        check_two_tenant_run(Scheduler::DeficitRoundRobin);
    }

    #[test]
    fn wrr_serves_two_tenants_to_completion_with_correct_results() {
        check_two_tenant_run(Scheduler::WeightedRoundRobin);
    }

    #[test]
    fn unadmitted_tenant_streams_are_refused() {
        let server = StreamServer::new(ServerConfig::default());
        for scheduler in [Scheduler::WeightedRoundRobin, Scheduler::DeficitRoundRobin] {
            let streams = vec![TenantStream {
                tenant: TenantId(99),
                generator: Generator::new(
                    GeneratorConfig { batch_events: 100 },
                    Channel::cleartext(),
                    vec![],
                ),
            }];
            assert_eq!(
                server.serve_with(streams, scheduler).unwrap_err(),
                DataPlaneError::UnknownTenant
            );
        }
    }

    #[test]
    fn duplicate_tenant_streams_are_refused_not_double_drained() {
        let server = StreamServer::new(ServerConfig::default());
        let a = server.admit(TenantConfig::new("a", 32 << 20), pipeline("a")).unwrap();
        let loads = multi_tenant_streams(2, 1, 500, 8, 3);
        for scheduler in [Scheduler::WeightedRoundRobin, Scheduler::DeficitRoundRobin] {
            let streams = streams_for(&[a, a], &loads);
            assert_eq!(
                server.serve_with(streams, scheduler).unwrap_err(),
                DataPlaneError::UnknownTenant
            );
        }
    }

    #[test]
    fn scheduler_names_round_trip() {
        for s in [Scheduler::WeightedRoundRobin, Scheduler::DeficitRoundRobin] {
            assert_eq!(Scheduler::from_name(s.name()), Some(s));
        }
        assert_eq!(Scheduler::from_name(" DRR "), Some(Scheduler::DeficitRoundRobin));
        assert_eq!(Scheduler::from_name("fifo"), None);
    }

    #[test]
    fn drr_serve_publishes_lane_counters_to_the_registry() {
        let server = StreamServer::new(ServerConfig::default().with_cores(2));
        let a = server.admit(TenantConfig::new("a", 32 << 20), pipeline("a")).unwrap();
        let b = server.admit(TenantConfig::new("b", 32 << 20), pipeline("b")).unwrap();
        let loads = multi_tenant_streams(2, 1, 1_000, 8, 11);
        server.serve(streams_for(&[a, b], &loads)).unwrap();
        let snap = server.telemetry().snapshot();
        assert!(snap.counter_u64("drr.charged") > 0, "serviced cost reaches the registry");
        assert!(snap.counter("drr.penalties").is_some());
        assert!(snap.counter("drr.lane0_deficit").is_some());
        assert!(snap.counter("drr.lane1_deficit").is_some());
        // The shared executor is registered as a source by the server too.
        assert!(snap.counter_u64("executor.executed") > 0);
    }

    #[test]
    fn quota_exhaustion_during_serve_dumps_the_flight_recorder() {
        let server = StreamServer::new(ServerConfig::default().with_cores(2));
        // A quota far below one window's working set: ingestion trips
        // QuotaExceeded, which the loop counts (not fatal) and records.
        let a = server.admit(TenantConfig::new("tiny", 4 * 1024), pipeline("tiny")).unwrap();
        let loads = multi_tenant_streams(1, 1, 2_000, 64, 5);
        let report = server.serve(streams_for(&[a], &loads)).unwrap();
        assert!(report.per_tenant[0].rejected_batches > 0, "quota must actually trip");
        let dumps = server.telemetry().take_flight_dumps();
        assert!(
            dumps.iter().any(|d| d.tenant == a.0
                && matches!(d.reason, sbt_telemetry::FlightReason::QuotaExhausted)),
            "expected a QuotaExhausted dump for tenant {a}, got {dumps:?}"
        );
    }

    #[test]
    fn drr_accounting_reserves_charges_and_penalizes() {
        let mut drr = DrrAccounting::new(&[1, 2], 100);
        assert!(!drr.can_dispatch(0, 50), "no credit before the first round");
        drr.begin_round(|_| true);
        assert_eq!(drr.deficit(0), 100);
        assert_eq!(drr.deficit(1), 200);
        assert!(drr.can_dispatch(0, 100));
        drr.reserve(0, 80);
        assert!(!drr.can_dispatch(0, 80), "reservations hold credit");
        // Actual cost overran the estimate; the lane pays what it used.
        drr.release(0, 80);
        drr.charge(0, 120);
        assert_eq!(drr.deficit(0), -20);
        drr.penalize(1);
        assert_eq!(drr.deficit(1), 0);
        // An idle lane's deficit resets instead of hoarding credit.
        drr.begin_round(|i| i == 1);
        assert_eq!(drr.deficit(0), -20, "negative deficits persist through idling");
        assert_eq!(drr.deficit(1), 200);
    }
}
