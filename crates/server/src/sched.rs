//! Weighted round-robin serving of tenant sources.
//!
//! The server drains each tenant's source in rounds: a tenant with weight
//! *w* is offered up to *w* batches per round. When a tenant signals
//! backpressure (its quota is nearly full) it sits out the next round;
//! when a batch would exceed its quota outright the batch is rejected and
//! counted. Neither slows any other tenant: the penalty is per tenant, and
//! the shared worker pool keeps executing the others' primitive tasks.

use crate::server::StreamServer;
use sbt_dataplane::DataPlaneError;
use sbt_engine::{Engine, IngestStatus, StreamSide};
use sbt_types::TenantId;
use sbt_workloads::generator::{Generator, Offer};
use std::sync::Arc;
use std::time::Instant;

/// One tenant's input: its id plus the rate-controlled source draining into
/// it.
pub struct TenantStream {
    /// Which admitted tenant the stream feeds.
    pub tenant: TenantId,
    /// The source generator (events pre-chunked into windows).
    pub generator: Generator,
}

/// Per-tenant outcome of a serve run.
#[derive(Debug, Clone)]
pub struct TenantProgress {
    /// The tenant.
    pub tenant: TenantId,
    /// Events offered by the tenant's source.
    pub offered_events: u64,
    /// Batches accepted into the TEE.
    pub accepted_batches: u64,
    /// Batches rejected because they would exceed the tenant's quota.
    pub rejected_batches: u64,
    /// Backpressure signals the tenant's engine raised.
    pub backpressure_signals: u64,
    /// Results (windows) the tenant externalized.
    pub results: usize,
    /// Events the tenant's engine ingested.
    pub ingested_events: u64,
    /// Mean output delay over the tenant's windows, in milliseconds.
    pub avg_delay_ms: f64,
    /// Maximum output delay over the tenant's windows, in milliseconds.
    pub max_delay_ms: f64,
}

/// Outcome of serving a set of tenant streams to completion.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Wall-clock nanoseconds of the whole run.
    pub wall_nanos: u64,
    /// Per-tenant progress, in the order the streams were passed.
    pub per_tenant: Vec<TenantProgress>,
}

impl ServeReport {
    /// Total events ingested across all tenants.
    pub fn aggregate_events(&self) -> u64 {
        self.per_tenant.iter().map(|t| t.ingested_events).sum()
    }

    /// Aggregate throughput in events per second.
    pub fn aggregate_events_per_sec(&self) -> f64 {
        if self.wall_nanos == 0 {
            return 0.0;
        }
        self.aggregate_events() as f64 / (self.wall_nanos as f64 / 1e9)
    }
}

/// Internal per-stream scheduling state.
struct Lane {
    tenant: TenantId,
    weight: u32,
    engine: Arc<Engine>,
    generator: Generator,
    /// Rounds this lane sits out (backpressure / quota penalty).
    penalty: u32,
    accepted_batches: u64,
    rejected_batches: u64,
    backpressure_signals: u64,
}

impl StreamServer {
    /// Drain every tenant stream to exhaustion under weighted round-robin.
    ///
    /// Returns an error only for streams naming un-admitted tenants or for
    /// data-plane failures other than quota rejections (those are counted,
    /// not fatal).
    pub fn serve(&self, streams: Vec<TenantStream>) -> Result<ServeReport, DataPlaneError> {
        let entries = self.entries_snapshot();
        let mut lanes = Vec::with_capacity(streams.len());
        for s in streams {
            let (_, weight, engine) = entries
                .iter()
                .find(|(id, _, _)| *id == s.tenant)
                .cloned()
                .ok_or(DataPlaneError::UnknownTenant)?;
            lanes.push(Lane {
                tenant: s.tenant,
                weight,
                engine,
                generator: s.generator,
                penalty: 0,
                accepted_batches: 0,
                rejected_batches: 0,
                backpressure_signals: 0,
            });
        }
        let pool = self.worker_pool().clone();
        let start = Instant::now();
        loop {
            // Phase 1 — weighted offer pull: each unpenalized lane
            // contributes up to `weight` batches this round; a watermark
            // ends the lane's turn (it must run after the lane's batches).
            let mut round_batches = Vec::new();
            let mut round_marks = Vec::new();
            let mut any_live = false;
            for (li, lane) in lanes.iter_mut().enumerate() {
                if lane.generator.is_exhausted() {
                    continue;
                }
                any_live = true;
                if lane.penalty > 0 {
                    // The penalized tenant sits this round out; because the
                    // penalty is per lane, every other tenant still runs.
                    lane.penalty -= 1;
                    continue;
                }
                let mut pulled = 0;
                while pulled < lane.weight {
                    match lane.generator.next_offer() {
                        None => break,
                        Some(Offer::Batch(delivery)) => {
                            round_batches.push((li, delivery));
                            pulled += 1;
                        }
                        Some(Offer::Watermark(wm)) => {
                            round_marks.push((li, wm));
                            break;
                        }
                    }
                }
            }
            if !any_live {
                break;
            }

            // Phase 2 — parallel ingestion: every tenant's batches of this
            // round enter the shared TEE concurrently on the shared worker
            // pool (one SMC entry per batch, decryption and windowing
            // inside), so one slow tenant cannot serialize the others.
            let tasks: Vec<_> = round_batches
                .into_iter()
                .map(|(li, delivery)| {
                    let engine = lanes[li].engine.clone();
                    move || (li, engine.ingest_on(&delivery, StreamSide::Left))
                })
                .collect();
            for (li, outcome) in pool.run_all(tasks) {
                let lane = &mut lanes[li];
                match outcome {
                    Ok(IngestStatus::Accepted) => lane.accepted_batches += 1,
                    Ok(IngestStatus::Backpressure) => {
                        lane.accepted_batches += 1;
                        lane.backpressure_signals += 1;
                        lane.penalty = 1;
                    }
                    Err(DataPlaneError::QuotaExceeded) => {
                        // The batch is dropped: the tenant outgrew its
                        // quota. Penalize only this lane.
                        lane.rejected_batches += 1;
                        lane.penalty = 1;
                    }
                    Err(e) => return Err(e),
                }
            }

            // Phase 3 — watermarks: completed windows execute (their
            // primitive fan-out reuses the shared pool). Window execution
            // may itself trip the tenant's quota (intermediates count too);
            // that costs the tenant its window, nothing else.
            for (li, wm) in round_marks {
                let lane = &mut lanes[li];
                match lane.engine.advance_watermark(wm) {
                    Ok(()) => {}
                    Err(DataPlaneError::QuotaExceeded) => {
                        lane.rejected_batches += 1;
                        lane.penalty = 1;
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        let wall_nanos = start.elapsed().as_nanos() as u64;
        let per_tenant = lanes
            .iter()
            .map(|lane| {
                let metrics = lane.engine.metrics();
                TenantProgress {
                    tenant: lane.tenant,
                    offered_events: lane.generator.offered_events(),
                    accepted_batches: lane.accepted_batches,
                    rejected_batches: lane.rejected_batches,
                    backpressure_signals: lane.backpressure_signals,
                    results: lane.engine.results_len(),
                    ingested_events: metrics.events_ingested,
                    avg_delay_ms: metrics.avg_delay_ms(),
                    max_delay_ms: metrics.max_delay_ms(),
                }
            })
            .collect();
        Ok(ServeReport { wall_nanos, per_tenant })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerConfig;
    use crate::tenant::TenantConfig;
    use sbt_engine::{Operator, Pipeline};
    use sbt_workloads::datasets::multi_tenant_streams;
    use sbt_workloads::generator::GeneratorConfig;
    use sbt_workloads::transport::Channel;

    fn pipeline(name: &str) -> Pipeline {
        Pipeline::new(name).then(Operator::WindowSum).target_delay_ms(60_000).batch_events(500)
    }

    #[test]
    fn serves_two_tenants_to_completion_with_correct_results() {
        let server = StreamServer::new(ServerConfig::default().with_cores(2));
        let a = server.admit(TenantConfig::new("a", 32 << 20), pipeline("a")).unwrap();
        let b =
            server.admit(TenantConfig::new("b", 32 << 20).with_weight(2), pipeline("b")).unwrap();
        let loads = multi_tenant_streams(2, 2, 2_000, 16, 7);
        let streams: Vec<TenantStream> = [a, b]
            .into_iter()
            .zip(loads.clone())
            .map(|(tenant, chunks)| TenantStream {
                tenant,
                generator: Generator::new(
                    GeneratorConfig { batch_events: 500 },
                    Channel::encrypted_demo(),
                    chunks,
                ),
            })
            .collect();
        let report = server.serve(streams).unwrap();
        assert_eq!(report.aggregate_events(), 2 * 2 * 2_000);
        assert!(report.aggregate_events_per_sec() > 0.0);
        // Every tenant produced one result per window, matching its oracle.
        let (key, nonce, signing) = server.cloud_keys();
        for (i, tenant) in [a, b].into_iter().enumerate() {
            let engine = server.engine(tenant).unwrap();
            let results = engine.results();
            assert_eq!(results.len(), 2, "{tenant}");
            for (w, msg) in results.iter().enumerate() {
                let plain = msg.open(&key, &nonce, &signing).unwrap();
                let got = u64::from_le_bytes(plain[..8].try_into().unwrap());
                let expected: u64 = loads[i][w].events.iter().map(|e| e.value as u64).sum();
                assert_eq!(got, expected, "{tenant} window {w}");
            }
        }
    }

    #[test]
    fn unadmitted_tenant_streams_are_refused() {
        let server = StreamServer::new(ServerConfig::default());
        let streams = vec![TenantStream {
            tenant: TenantId(99),
            generator: Generator::new(
                GeneratorConfig { batch_events: 100 },
                Channel::cleartext(),
                vec![],
            ),
        }];
        assert_eq!(server.serve(streams).unwrap_err(), DataPlaneError::UnknownTenant);
    }
}
