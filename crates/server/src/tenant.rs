//! Tenant declarations and admission errors.

use sbt_dataplane::DataPlaneError;

/// Upper bound on a wall-clock checkpoint interval: it must survive
/// conversion to nanoseconds (the unit the telemetry gauges and span clocks
/// use) without wrapping a `u64`.
pub const MAX_CHECKPOINT_INTERVAL_MS: u64 = u64::MAX / 1_000_000;

/// Upper bound on a record-count checkpoint interval: intervals are compared
/// against event-counter *differences*, which must never be able to wrap the
/// signed arithmetic the DRR accounting shares.
pub const MAX_CHECKPOINT_INTERVAL_RECORDS: u64 = i64::MAX as u64;

/// What a tenant asks for at admission time.
#[derive(Debug, Clone)]
pub struct TenantConfig {
    /// Human-readable tenant name (must be unique on the server).
    pub name: String,
    /// TEE memory quota in bytes, enforced through the uArray allocator.
    pub quota_bytes: u64,
    /// Weighted-round-robin scheduling weight (≥ 1): a tenant with weight 2
    /// is offered twice as many batches per round as a weight-1 tenant.
    pub weight: u32,
    /// Seal a checkpoint after this many newly ingested events (taken at
    /// the lane's next quiescent point in the serve loop). `None` disables
    /// record-driven checkpoints.
    pub checkpoint_every_records: Option<u64>,
    /// Seal a checkpoint after this much wall time, in milliseconds.
    /// `None` disables interval-driven checkpoints.
    pub checkpoint_every_ms: Option<u64>,
}

impl TenantConfig {
    /// A tenant with the given name and quota, weight 1, no checkpoint
    /// policy.
    pub fn new(name: &str, quota_bytes: u64) -> Self {
        TenantConfig {
            name: name.to_string(),
            quota_bytes,
            weight: 1,
            checkpoint_every_records: None,
            checkpoint_every_ms: None,
        }
    }

    /// Set the scheduling weight.
    pub fn with_weight(mut self, weight: u32) -> Self {
        self.weight = weight.max(1);
        self
    }

    /// Request a checkpoint every `records` newly ingested events. The
    /// value is validated at admission, not here: zero or out-of-range
    /// intervals produce [`AdmissionError::InvalidCheckpointPolicy`], never
    /// a later panic.
    pub fn with_checkpoint_every_records(mut self, records: u64) -> Self {
        self.checkpoint_every_records = Some(records);
        self
    }

    /// Request a checkpoint every `ms` milliseconds of wall time. Validated
    /// at admission, like
    /// [`with_checkpoint_every_records`](TenantConfig::with_checkpoint_every_records).
    pub fn with_checkpoint_every_ms(mut self, ms: u64) -> Self {
        self.checkpoint_every_ms = Some(ms);
        self
    }

    /// Validate the checkpoint policy, returning the reason it is invalid.
    pub(crate) fn checkpoint_policy_error(&self) -> Option<&'static str> {
        match self.checkpoint_every_records {
            Some(0) => return Some("checkpoint record interval must be nonzero"),
            Some(n) if n > MAX_CHECKPOINT_INTERVAL_RECORDS => {
                return Some("checkpoint record interval overflows counter arithmetic")
            }
            _ => {}
        }
        match self.checkpoint_every_ms {
            Some(0) => Some("checkpoint wall interval must be nonzero"),
            Some(ms) if ms > MAX_CHECKPOINT_INTERVAL_MS => {
                Some("checkpoint wall interval overflows the nanosecond clock")
            }
            _ => None,
        }
    }
}

/// Why the server refused to admit a tenant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// The server already hosts its maximum number of tenants.
    ServerFull {
        /// The configured tenant cap.
        max_tenants: usize,
    },
    /// Admitting the tenant would overcommit the secure-memory carve-out.
    QuotaOvercommit {
        /// The quota the tenant requested.
        requested: u64,
        /// Unreserved secure-memory bytes remaining.
        available: u64,
    },
    /// A tenant with this name is already admitted.
    DuplicateName(String),
    /// The tenant asked for a zero-byte quota, which could never ingest.
    EmptyQuota,
    /// Pool-aware admission refused the tenant: with this tenant admitted,
    /// the worker pool could no longer meet every tenant's declared
    /// output-delay target (estimated in [`CycleCost`] units per
    /// millisecond against the pool's modelled capacity).
    ///
    /// [`CycleCost`]: sbt_engine::CycleCost
    DelayUnmeetable {
        /// Aggregate cycle demand per millisecond with the tenant admitted.
        required: u64,
        /// The pool's modelled capacity in cycles per millisecond.
        capacity: u64,
    },
    /// The tenant's checkpoint policy is malformed (zero or out-of-range
    /// interval): rejected here, at admission, rather than panicking in the
    /// serve loop when the interval is first consulted.
    InvalidCheckpointPolicy {
        /// Why the policy was refused.
        reason: &'static str,
    },
    /// A restore was requested for a tenant with no snapshot in the vault.
    NoCheckpoint,
    /// The data plane refused the registration.
    Rejected(DataPlaneError),
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::ServerFull { max_tenants } => {
                write!(f, "server full ({max_tenants} tenants)")
            }
            AdmissionError::QuotaOvercommit { requested, available } => {
                write!(f, "quota overcommit: requested {requested} B, {available} B available")
            }
            AdmissionError::DuplicateName(name) => write!(f, "tenant name {name:?} already taken"),
            AdmissionError::EmptyQuota => write!(f, "tenant quota must be nonzero"),
            AdmissionError::DelayUnmeetable { required, capacity } => write!(
                f,
                "delay target unmeetable: {required} cycle units/ms required, \
                 pool sustains {capacity}"
            ),
            AdmissionError::InvalidCheckpointPolicy { reason } => {
                write!(f, "invalid checkpoint policy: {reason}")
            }
            AdmissionError::NoCheckpoint => {
                write!(f, "no checkpoint in the vault for this tenant")
            }
            AdmissionError::Rejected(e) => write!(f, "data plane rejected tenant: {e}"),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Why a lifecycle operation (evict / drain / rekey / resize) failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LifecycleError {
    /// The tenant is not admitted (never was, or already departed).
    UnknownTenant,
    /// A quota resize asked for zero bytes, which could never ingest.
    EmptyQuota,
    /// Resizing the tenant's quota would overcommit the secure-memory
    /// carve-out against the other tenants' reservations.
    QuotaOvercommit {
        /// The quota the resize requested.
        requested: u64,
        /// Bytes available to this tenant (carve-out minus the others'
        /// reservations).
        available: u64,
    },
    /// The data plane refused the operation.
    Rejected(DataPlaneError),
}

impl std::fmt::Display for LifecycleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LifecycleError::UnknownTenant => write!(f, "tenant not admitted"),
            LifecycleError::EmptyQuota => write!(f, "tenant quota must be nonzero"),
            LifecycleError::QuotaOvercommit { requested, available } => {
                write!(
                    f,
                    "quota resize overcommit: requested {requested} B, {available} B available"
                )
            }
            LifecycleError::Rejected(e) => write!(f, "data plane rejected the operation: {e}"),
        }
    }
}

impl std::error::Error for LifecycleError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_builder_clamps_weight() {
        let t = TenantConfig::new("a", 1024).with_weight(0);
        assert_eq!(t.weight, 1);
        assert_eq!(t.quota_bytes, 1024);
        assert_eq!(TenantConfig::new("b", 1).weight, 1);
    }

    #[test]
    fn checkpoint_policy_validation_rejects_zero_and_overflow() {
        let ok = TenantConfig::new("a", 1024)
            .with_checkpoint_every_records(10_000)
            .with_checkpoint_every_ms(250);
        assert!(ok.checkpoint_policy_error().is_none());
        assert!(TenantConfig::new("a", 1024).checkpoint_policy_error().is_none());
        // Zero intervals could never fire sanely; they are refused.
        assert!(TenantConfig::new("a", 1024)
            .with_checkpoint_every_records(0)
            .checkpoint_policy_error()
            .unwrap()
            .contains("nonzero"));
        assert!(TenantConfig::new("a", 1024)
            .with_checkpoint_every_ms(0)
            .checkpoint_policy_error()
            .unwrap()
            .contains("nonzero"));
        // Out-of-range intervals would overflow downstream arithmetic.
        assert!(TenantConfig::new("a", 1024)
            .with_checkpoint_every_records(u64::MAX)
            .checkpoint_policy_error()
            .unwrap()
            .contains("overflow"));
        assert!(TenantConfig::new("a", 1024)
            .with_checkpoint_every_ms(MAX_CHECKPOINT_INTERVAL_MS + 1)
            .checkpoint_policy_error()
            .unwrap()
            .contains("overflow"));
        // The boundary values themselves are valid.
        assert!(TenantConfig::new("a", 1024)
            .with_checkpoint_every_records(MAX_CHECKPOINT_INTERVAL_RECORDS)
            .with_checkpoint_every_ms(MAX_CHECKPOINT_INTERVAL_MS)
            .checkpoint_policy_error()
            .is_none());
    }

    #[test]
    fn errors_display() {
        assert!(AdmissionError::ServerFull { max_tenants: 4 }.to_string().contains('4'));
        assert!(AdmissionError::QuotaOvercommit { requested: 10, available: 5 }
            .to_string()
            .contains("10"));
        assert!(AdmissionError::DuplicateName("x".into()).to_string().contains('x'));
        assert!(AdmissionError::InvalidCheckpointPolicy { reason: "zero" }
            .to_string()
            .contains("zero"));
        assert!(AdmissionError::NoCheckpoint.to_string().contains("vault"));
        assert!(LifecycleError::UnknownTenant.to_string().contains("not admitted"));
        assert!(LifecycleError::QuotaOvercommit { requested: 7, available: 3 }
            .to_string()
            .contains('7'));
        assert!(LifecycleError::Rejected(DataPlaneError::UnknownTenant)
            .to_string()
            .contains("rejected"));
        assert!(LifecycleError::EmptyQuota.to_string().contains("nonzero"));
    }
}
