//! Tenant declarations and admission errors.

use sbt_dataplane::DataPlaneError;

/// What a tenant asks for at admission time.
#[derive(Debug, Clone)]
pub struct TenantConfig {
    /// Human-readable tenant name (must be unique on the server).
    pub name: String,
    /// TEE memory quota in bytes, enforced through the uArray allocator.
    pub quota_bytes: u64,
    /// Weighted-round-robin scheduling weight (≥ 1): a tenant with weight 2
    /// is offered twice as many batches per round as a weight-1 tenant.
    pub weight: u32,
}

impl TenantConfig {
    /// A tenant with the given name and quota, weight 1.
    pub fn new(name: &str, quota_bytes: u64) -> Self {
        TenantConfig { name: name.to_string(), quota_bytes, weight: 1 }
    }

    /// Set the scheduling weight.
    pub fn with_weight(mut self, weight: u32) -> Self {
        self.weight = weight.max(1);
        self
    }
}

/// Why the server refused to admit a tenant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// The server already hosts its maximum number of tenants.
    ServerFull {
        /// The configured tenant cap.
        max_tenants: usize,
    },
    /// Admitting the tenant would overcommit the secure-memory carve-out.
    QuotaOvercommit {
        /// The quota the tenant requested.
        requested: u64,
        /// Unreserved secure-memory bytes remaining.
        available: u64,
    },
    /// A tenant with this name is already admitted.
    DuplicateName(String),
    /// The tenant asked for a zero-byte quota, which could never ingest.
    EmptyQuota,
    /// Pool-aware admission refused the tenant: with this tenant admitted,
    /// the worker pool could no longer meet every tenant's declared
    /// output-delay target (estimated in [`CycleCost`] units per
    /// millisecond against the pool's modelled capacity).
    ///
    /// [`CycleCost`]: sbt_engine::CycleCost
    DelayUnmeetable {
        /// Aggregate cycle demand per millisecond with the tenant admitted.
        required: u64,
        /// The pool's modelled capacity in cycles per millisecond.
        capacity: u64,
    },
    /// The data plane refused the registration.
    Rejected(DataPlaneError),
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::ServerFull { max_tenants } => {
                write!(f, "server full ({max_tenants} tenants)")
            }
            AdmissionError::QuotaOvercommit { requested, available } => {
                write!(f, "quota overcommit: requested {requested} B, {available} B available")
            }
            AdmissionError::DuplicateName(name) => write!(f, "tenant name {name:?} already taken"),
            AdmissionError::EmptyQuota => write!(f, "tenant quota must be nonzero"),
            AdmissionError::DelayUnmeetable { required, capacity } => write!(
                f,
                "delay target unmeetable: {required} cycle units/ms required, \
                 pool sustains {capacity}"
            ),
            AdmissionError::Rejected(e) => write!(f, "data plane rejected tenant: {e}"),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Why a lifecycle operation (evict / drain / rekey / resize) failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LifecycleError {
    /// The tenant is not admitted (never was, or already departed).
    UnknownTenant,
    /// A quota resize asked for zero bytes, which could never ingest.
    EmptyQuota,
    /// Resizing the tenant's quota would overcommit the secure-memory
    /// carve-out against the other tenants' reservations.
    QuotaOvercommit {
        /// The quota the resize requested.
        requested: u64,
        /// Bytes available to this tenant (carve-out minus the others'
        /// reservations).
        available: u64,
    },
    /// The data plane refused the operation.
    Rejected(DataPlaneError),
}

impl std::fmt::Display for LifecycleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LifecycleError::UnknownTenant => write!(f, "tenant not admitted"),
            LifecycleError::EmptyQuota => write!(f, "tenant quota must be nonzero"),
            LifecycleError::QuotaOvercommit { requested, available } => {
                write!(
                    f,
                    "quota resize overcommit: requested {requested} B, {available} B available"
                )
            }
            LifecycleError::Rejected(e) => write!(f, "data plane rejected the operation: {e}"),
        }
    }
}

impl std::error::Error for LifecycleError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_builder_clamps_weight() {
        let t = TenantConfig::new("a", 1024).with_weight(0);
        assert_eq!(t.weight, 1);
        assert_eq!(t.quota_bytes, 1024);
        assert_eq!(TenantConfig::new("b", 1).weight, 1);
    }

    #[test]
    fn errors_display() {
        assert!(AdmissionError::ServerFull { max_tenants: 4 }.to_string().contains('4'));
        assert!(AdmissionError::QuotaOvercommit { requested: 10, available: 5 }
            .to_string()
            .contains("10"));
        assert!(AdmissionError::DuplicateName("x".into()).to_string().contains('x'));
        assert!(LifecycleError::UnknownTenant.to_string().contains("not admitted"));
        assert!(LifecycleError::QuotaOvercommit { requested: 7, available: 3 }
            .to_string()
            .contains('7'));
        assert!(LifecycleError::Rejected(DataPlaneError::UnknownTenant)
            .to_string()
            .contains("rejected"));
        assert!(LifecycleError::EmptyQuota.to_string().contains("nonzero"));
    }
}
