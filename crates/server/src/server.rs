//! The multi-tenant stream server: admission, lifecycle and
//! shared-substrate ownership.
//!
//! Tenants are full lifecycle objects. Admission brings a tenant up with its
//! own derived key material and reserved quota; while admitted it can be
//! **rekeyed** (epoch bump, neighbours untouched) and its quota **resized**;
//! it leaves by **drain** (ingest stops, remaining windows run to the
//! watermark, then teardown) or **evict** (immediate teardown, unwinding the
//! scheduler lane mid-`serve`). Either departure frees every opaque
//! reference and uArray the tenant owned in one pass and returns its quota
//! reservation to [`StreamServer::unreserved_quota`], so a long-running edge
//! can admit, churn and re-admit tenants indefinitely.

use crate::recovery::CheckpointVault;
use crate::tenant::{AdmissionError, LifecycleError, TenantConfig};
use parking_lot::Mutex;
use sbt_attest::{DepartureReason, LogSegment};
use sbt_crypto::TenantKeychain;
use sbt_dataplane::{DataPlane, DataPlaneConfig, DataPlaneError, RestoredTenant, SealedSnapshot};
use sbt_engine::{CycleCost, Engine, EngineConfig, EngineVariant, Executor, Pipeline};
use sbt_types::TenantId;
use sbt_tz::Platform;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Server-wide configuration.
#[derive(Clone)]
pub struct ServerConfig {
    /// Worker threads shared by all tenants' control planes.
    pub cores: usize,
    /// Secure-memory carve-out of the shared platform, in bytes. The sum of
    /// admitted tenant quotas may not exceed it.
    pub secure_mem_bytes: u64,
    /// Maximum number of tenants the server admits.
    pub max_tenants: usize,
    /// Which engine variant the shared platform models (isolation costs,
    /// ingress path).
    pub variant: EngineVariant,
    /// Data-plane keys and audit settings (shared TEE instance).
    pub dataplane: DataPlaneConfig,
    /// Deficit round-robin quantum: estimated cycle-cost units credited per
    /// unit of scheduling weight each refill round (see
    /// [`crate::sched::DrrAccounting`]).
    pub drr_quantum: u64,
    /// The untrusted checkpoint vault to attach. `None` gives the server a
    /// fresh, empty vault; a recovering server is handed the crashed
    /// instance's vault here so its snapshots survive the "reboot".
    pub vault: Option<Arc<CheckpointVault>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            cores: 4,
            secure_mem_bytes: 256 * 1024 * 1024,
            max_tenants: 64,
            variant: EngineVariant::Sbt,
            dataplane: DataPlaneConfig::default(),
            drr_quantum: 32 * 1024,
            vault: None,
        }
    }
}

impl ServerConfig {
    /// A server on an n-core HiKey-like platform.
    pub fn with_cores(mut self, cores: usize) -> Self {
        self.cores = cores.max(1);
        self
    }

    /// Override the secure-memory carve-out.
    pub fn with_secure_mem(mut self, bytes: u64) -> Self {
        self.secure_mem_bytes = bytes;
        self
    }

    /// Override the tenant cap.
    pub fn with_max_tenants(mut self, n: usize) -> Self {
        self.max_tenants = n.max(1);
        self
    }

    /// Override the deficit round-robin quantum.
    pub fn with_drr_quantum(mut self, quantum: u64) -> Self {
        self.drr_quantum = quantum.max(1);
        self
    }

    /// Attach an existing checkpoint vault (untrusted storage that
    /// survived a previous server instance's crash).
    pub fn with_vault(mut self, vault: Arc<CheckpointVault>) -> Self {
        self.vault = Some(vault);
        self
    }
}

/// Where an admitted tenant is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TenantPhase {
    /// Serving normally.
    Active,
    /// Drain requested: no new ingest; remaining windows run to the
    /// watermark, then the tenant departs.
    Draining,
}

/// What a serve loop should do with a tenant's lane right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LanePhase {
    /// Keep serving.
    Active,
    /// Stop pulling offers; finish in-flight work, then depart the tenant.
    Draining,
    /// The tenant is gone (evicted or drained elsewhere): unwind the lane,
    /// discarding outcomes of in-flight work.
    Departed,
}

/// One admitted tenant.
pub(crate) struct TenantEntry {
    pub(crate) id: TenantId,
    pub(crate) config: TenantConfig,
    pub(crate) engine: Arc<Engine>,
    pub(crate) phase: TenantPhase,
}

/// The record of one tenant's departure: its final trail and what the
/// teardown recovered. Kept by the server so departed tenants' trails stay
/// verifiable (the cloud can fetch them after the fact).
#[derive(Debug, Clone)]
pub struct DepartureReport {
    /// The departed tenant.
    pub tenant: TenantId,
    /// Drained or evicted.
    pub reason: DepartureReason,
    /// The key epoch the tenant departed under (fixes the keychain the
    /// trail verifies with).
    pub final_epoch: u32,
    /// Audit segments not yet drained at departure, ending with the
    /// departure record.
    pub trail: Vec<LogSegment>,
    /// Secure-memory bytes the one-pass owner teardown freed.
    pub reclaimed_bytes: u64,
    /// Quota reservation returned to the admission pool.
    pub released_quota: u64,
    /// Opaque references revoked with the tenant's namespace.
    pub refs_revoked: usize,
}

/// The multi-tenant serving layer over one shared TEE.
pub struct StreamServer {
    config: ServerConfig,
    platform: Arc<Platform>,
    dp: Arc<DataPlane>,
    pool: Arc<Executor>,
    tenants: Mutex<Vec<TenantEntry>>,
    next_tenant: Mutex<u32>,
    reserved_quota: Mutex<u64>,
    /// Tenants whose lanes a `serve` loop currently owns (refcounted:
    /// concurrent serve calls may overlap on a tenant); `drain` hands the
    /// teardown to an owning loop instead of racing it.
    serving: Mutex<HashMap<TenantId, usize>>,
    /// Departure records of every tenant that ever left.
    departed: Mutex<HashMap<TenantId, DepartureReport>>,
    /// The latest DRR serve loop's telemetry mirror, retained so its
    /// registry section outlives the loop for post-run snapshots.
    drr_mirror: Mutex<Option<Arc<crate::sched::DrrCounters>>>,
    /// Untrusted storage for sealed checkpoints; shared with (and outliving)
    /// crashed predecessors when recovery hands it over.
    vault: Arc<CheckpointVault>,
}

/// What one sealed-and-vaulted checkpoint amounted to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointReceipt {
    /// The checkpointed tenant.
    pub tenant: TenantId,
    /// Monotone per-tenant checkpoint sequence number.
    pub ckpt_seq: u64,
    /// The key epoch the snapshot sealed under.
    pub epoch: u32,
    /// Sealed snapshot size on the untrusted medium, in bytes.
    pub sealed_bytes: usize,
}

impl StreamServer {
    /// Bring up the shared substrate: one platform, one data plane loaded
    /// into its TEE, one worker pool. No tenants are admitted yet.
    pub fn new(config: ServerConfig) -> Arc<Self> {
        let platform_config = EngineConfig::for_variant(config.variant, config.cores)
            .with_secure_mem(config.secure_mem_bytes)
            .platform_config();
        let platform = Platform::new(platform_config);
        let dp = DataPlane::new(platform.clone(), config.dataplane.clone());
        let pool = Arc::new(Executor::new(config.cores));
        dp.telemetry().register_source(&pool);
        // The shared pool also serves as the data plane's parallel-ingest
        // pool: every tenant's batches split into per-worker decrypt lanes
        // inside their single ingress crossing.
        dp.set_ingest_pool(pool.clone());
        Arc::new(StreamServer {
            platform,
            dp,
            pool,
            tenants: Mutex::new(Vec::new()),
            // Tenant 0 is the data plane's built-in unconstrained default;
            // server tenants start at 1.
            next_tenant: Mutex::new(1),
            reserved_quota: Mutex::new(0),
            serving: Mutex::new(HashMap::new()),
            departed: Mutex::new(HashMap::new()),
            drr_mirror: Mutex::new(None),
            vault: config.vault.clone().unwrap_or_default(),
            config,
        })
    }

    /// Estimated worst-case cycle demand of one tenant, in cost units per
    /// millisecond: its quota-bounded window working set must be processed
    /// within its declared output-delay target.
    fn demand_per_ms(quota_bytes: u64, target_delay_ms: u32) -> u64 {
        CycleCost::window_bound(quota_bytes) / u64::from(target_delay_ms.max(1))
    }

    /// Admit a tenant: check capacity, quota headroom and pool headroom
    /// (the delay target must be meetable at current load), register the
    /// tenant's namespace and quota inside the TEE, and build its
    /// control-plane engine over the shared data plane and executor.
    pub fn admit(
        &self,
        tenant_config: TenantConfig,
        pipeline: Pipeline,
    ) -> Result<TenantId, AdmissionError> {
        if tenant_config.quota_bytes == 0 {
            return Err(AdmissionError::EmptyQuota);
        }
        if let Some(reason) = tenant_config.checkpoint_policy_error() {
            return Err(AdmissionError::InvalidCheckpointPolicy { reason });
        }
        let mut tenants = self.tenants.lock();
        if tenants.len() >= self.config.max_tenants {
            return Err(AdmissionError::ServerFull { max_tenants: self.config.max_tenants });
        }
        if tenants.iter().any(|t| t.config.name == tenant_config.name) {
            return Err(AdmissionError::DuplicateName(tenant_config.name));
        }
        // Pool-aware admission: sum every admitted tenant's estimated cycle
        // demand plus the candidate's; refuse if the worker pool cannot
        // sustain it (the candidate's delay target — or someone's — would
        // become unmeetable under load).
        let required = tenants
            .iter()
            .map(|t| Self::demand_per_ms(t.config.quota_bytes, t.engine.pipeline().target_delay()))
            .sum::<u64>()
            + Self::demand_per_ms(tenant_config.quota_bytes, pipeline.target_delay());
        let capacity = self.config.cores as u64 * CycleCost::CORE_CAPACITY_PER_MS;
        if required > capacity {
            return Err(AdmissionError::DelayUnmeetable { required, capacity });
        }
        {
            let mut reserved = self.reserved_quota.lock();
            let available = self.config.secure_mem_bytes.saturating_sub(*reserved);
            if tenant_config.quota_bytes > available {
                return Err(AdmissionError::QuotaOvercommit {
                    requested: tenant_config.quota_bytes,
                    available,
                });
            }
            *reserved += tenant_config.quota_bytes;
        }
        let id = {
            let mut next = self.next_tenant.lock();
            let id = TenantId(*next);
            *next += 1;
            id
        };
        if let Err(e) = self.dp.register_tenant(id, Some(tenant_config.quota_bytes)) {
            *self.reserved_quota.lock() -= tenant_config.quota_bytes;
            return Err(AdmissionError::Rejected(e));
        }
        let engine_config = EngineConfig {
            dataplane: self.config.dataplane.clone(),
            ..EngineConfig::for_variant(self.config.variant, self.config.cores)
                .with_secure_mem(self.config.secure_mem_bytes)
        };
        let engine =
            Engine::for_tenant(engine_config, pipeline, self.dp.clone(), id, self.pool.clone());
        tenants.push(TenantEntry { id, config: tenant_config, engine, phase: TenantPhase::Active });
        Ok(id)
    }

    // ----- tenant lifecycle ----------------------------------------------

    /// Remove a tenant and tear down everything it owns on the shared
    /// substrate: audit departure record, reference namespace, uArrays and
    /// pages, quota reservation.
    fn depart(
        &self,
        tenant: TenantId,
        reason: DepartureReason,
    ) -> Result<DepartureReport, LifecycleError> {
        let entry = {
            let mut tenants = self.tenants.lock();
            let pos =
                tenants.iter().position(|t| t.id == tenant).ok_or(LifecycleError::UnknownTenant)?;
            tenants.remove(pos)
        };
        let teardown =
            self.dp.deregister_tenant(tenant, reason).map_err(LifecycleError::Rejected)?;
        {
            let mut reserved = self.reserved_quota.lock();
            *reserved = reserved.saturating_sub(entry.config.quota_bytes);
        }
        let report = DepartureReport {
            tenant,
            reason,
            final_epoch: teardown.final_epoch,
            trail: teardown.segments,
            reclaimed_bytes: teardown.reclaimed_bytes,
            released_quota: entry.config.quota_bytes,
            refs_revoked: teardown.refs_revoked,
        };
        self.departed.lock().insert(tenant, report.clone());
        Ok(report)
    }

    /// Evict a tenant immediately. Its scheduler lane (if a `serve` is
    /// running) unwinds: in-flight work is discarded, no further offers are
    /// pulled. Every opaque reference and uArray the tenant owned is freed
    /// in one pass and its quota reservation returns to
    /// [`unreserved_quota`](StreamServer::unreserved_quota). The tenant's
    /// remaining audit segments — ending with an `Evicted` departure record
    /// — are in the returned report and stay fetchable via
    /// [`departure`](StreamServer::departure).
    pub fn evict(&self, tenant: TenantId) -> Result<DepartureReport, LifecycleError> {
        self.depart(tenant, DepartureReason::Evicted)
    }

    /// Drain a tenant: stop its ingest, let the windows its watermarks
    /// already completed run to the end, then tear it down like
    /// [`evict`](StreamServer::evict) (with a `Drained` departure record).
    /// If a `serve` loop currently owns the tenant's lane, the drain is
    /// handed to it and this call blocks until the lane has wound down.
    pub fn drain(&self, tenant: TenantId) -> Result<DepartureReport, LifecycleError> {
        {
            let mut tenants = self.tenants.lock();
            let entry =
                tenants.iter_mut().find(|t| t.id == tenant).ok_or(LifecycleError::UnknownTenant)?;
            entry.phase = TenantPhase::Draining;
        }
        loop {
            if self.is_departed(tenant) {
                return self.departure(tenant).ok_or(LifecycleError::UnknownTenant);
            }
            if !self.is_being_served(tenant) {
                // No serve loop owns the lane: finish the drain here. Any
                // windows still executing asynchronously get to complete
                // (and be audited) before the namespace disappears.
                if let Some(engine) = self.engine(tenant) {
                    engine.quiesce();
                }
                return match self.depart(tenant, DepartureReason::Drained) {
                    Ok(report) => Ok(report),
                    // Lost the race to a concurrent evict/serve teardown:
                    // the departure record is the outcome either way.
                    Err(LifecycleError::UnknownTenant) => {
                        self.departure(tenant).ok_or(LifecycleError::UnknownTenant)
                    }
                    Err(e) => Err(e),
                };
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    /// Resize a tenant's TEE memory quota. Growing requires headroom in the
    /// secure carve-out against the other tenants' reservations; shrinking
    /// below current usage is allowed (further charges fail until usage
    /// drops).
    pub fn resize_quota(&self, tenant: TenantId, new_bytes: u64) -> Result<(), LifecycleError> {
        if new_bytes == 0 {
            return Err(LifecycleError::EmptyQuota);
        }
        let mut tenants = self.tenants.lock();
        let entry =
            tenants.iter_mut().find(|t| t.id == tenant).ok_or(LifecycleError::UnknownTenant)?;
        let mut reserved = self.reserved_quota.lock();
        let others = reserved.saturating_sub(entry.config.quota_bytes);
        let available = self.config.secure_mem_bytes.saturating_sub(others);
        if new_bytes > available {
            return Err(LifecycleError::QuotaOvercommit { requested: new_bytes, available });
        }
        self.dp.set_tenant_quota(tenant, Some(new_bytes)).map_err(LifecycleError::Rejected)?;
        *reserved = others + new_bytes;
        entry.config.quota_bytes = new_bytes;
        Ok(())
    }

    /// Rotate a tenant's key material to the next epoch. Ingest encrypted
    /// under the old epoch's source key stops decrypting; audit segments
    /// from here on sign under the new epoch's key; other tenants are
    /// untouched. Returns the new epoch.
    pub fn rekey(&self, tenant: TenantId) -> Result<u32, LifecycleError> {
        if !self.tenants.lock().iter().any(|t| t.id == tenant) {
            return Err(LifecycleError::UnknownTenant);
        }
        self.dp.rekey_tenant(tenant).map_err(LifecycleError::Rejected)
    }

    // ----- crash recovery -------------------------------------------------

    /// Seal a checkpoint of a tenant's windowed state, watermarks and audit
    /// cursor inside the TEE and park the ciphertext in the untrusted
    /// vault. Quiesces the tenant's engine first, so the snapshot is a
    /// consistent cut; the sealed hash is chained into the tenant's signed
    /// trail, which is what lets the cloud detect a later rollback.
    pub fn checkpoint(&self, tenant: TenantId) -> Result<CheckpointReceipt, LifecycleError> {
        let engine = self.engine(tenant).ok_or(LifecycleError::UnknownTenant)?;
        let sealed = engine.checkpoint().map_err(LifecycleError::Rejected)?;
        self.vault_store(tenant, &sealed)
    }

    /// Checkpoint every admitted tenant, returning per-tenant outcomes
    /// (one tenant's vault fault or mid-flight departure must not mask the
    /// others' checkpoints).
    pub fn checkpoint_all(&self) -> Vec<(TenantId, Result<CheckpointReceipt, LifecycleError>)> {
        self.tenants().into_iter().map(|t| (t, self.checkpoint(t))).collect()
    }

    /// Park an already-sealed snapshot in the vault (the serve loop's
    /// amortized checkpoints land here too).
    pub(crate) fn vault_store(
        &self,
        tenant: TenantId,
        sealed: &SealedSnapshot,
    ) -> Result<CheckpointReceipt, LifecycleError> {
        let bytes = sealed.to_bytes();
        let receipt = CheckpointReceipt {
            tenant,
            ckpt_seq: sealed.ckpt_seq,
            epoch: sealed.epoch,
            sealed_bytes: bytes.len(),
        };
        self.vault.store(tenant, bytes).map_err(|_| {
            LifecycleError::Rejected(DataPlaneError::SnapshotRejected(
                "untrusted vault refused the store",
            ))
        })?;
        Ok(receipt)
    }

    /// Re-admit a crashed tenant from the latest snapshot in the vault.
    ///
    /// The tenant keeps its original id (the snapshot names it and the MAC
    /// binds it); admission-style capacity, name, quota and checkpoint
    /// policy checks all still apply. On success the tenant's engine holds
    /// the checkpointed windows and watermarks, its audit log has resumed
    /// at the checkpoint cursor with a `resumed` record chaining the
    /// snapshot hash, and serving can continue mid-stream.
    pub fn restore_tenant(
        &self,
        tenant: TenantId,
        tenant_config: TenantConfig,
        pipeline: Pipeline,
        min_epoch: u32,
    ) -> Result<RestoredTenant, AdmissionError> {
        let bytes = self.vault.fetch(tenant).ok_or(AdmissionError::NoCheckpoint)?;
        self.restore_tenant_from_bytes(&bytes, tenant_config, pipeline, min_epoch)
    }

    /// [`restore_tenant`](StreamServer::restore_tenant) from explicit
    /// snapshot bytes — the path recovery takes when the vault's current
    /// slot fails closed (torn or corrupted) and the fallback slot is
    /// tried instead. The tenant id comes from the snapshot header and is
    /// authenticated when the enclave verifies the MAC; a truncated,
    /// bit-flipped or stale snapshot is refused inside the TEE and the
    /// server admits nothing.
    pub fn restore_tenant_from_bytes(
        &self,
        bytes: &[u8],
        tenant_config: TenantConfig,
        pipeline: Pipeline,
        min_epoch: u32,
    ) -> Result<RestoredTenant, AdmissionError> {
        let sealed = SealedSnapshot::from_bytes(bytes).map_err(AdmissionError::Rejected)?;
        let tenant = TenantId(sealed.tenant);
        if tenant_config.quota_bytes == 0 {
            return Err(AdmissionError::EmptyQuota);
        }
        if let Some(reason) = tenant_config.checkpoint_policy_error() {
            return Err(AdmissionError::InvalidCheckpointPolicy { reason });
        }
        let mut tenants = self.tenants.lock();
        if tenants.len() >= self.config.max_tenants {
            return Err(AdmissionError::ServerFull { max_tenants: self.config.max_tenants });
        }
        if tenants.iter().any(|t| t.config.name == tenant_config.name || t.id == tenant) {
            return Err(AdmissionError::DuplicateName(tenant_config.name));
        }
        let required = tenants
            .iter()
            .map(|t| Self::demand_per_ms(t.config.quota_bytes, t.engine.pipeline().target_delay()))
            .sum::<u64>()
            + Self::demand_per_ms(tenant_config.quota_bytes, pipeline.target_delay());
        let capacity = self.config.cores as u64 * CycleCost::CORE_CAPACITY_PER_MS;
        if required > capacity {
            return Err(AdmissionError::DelayUnmeetable { required, capacity });
        }
        {
            let mut reserved = self.reserved_quota.lock();
            let available = self.config.secure_mem_bytes.saturating_sub(*reserved);
            if tenant_config.quota_bytes > available {
                return Err(AdmissionError::QuotaOvercommit {
                    requested: tenant_config.quota_bytes,
                    available,
                });
            }
            *reserved += tenant_config.quota_bytes;
        }
        let engine_config = EngineConfig {
            dataplane: self.config.dataplane.clone(),
            ..EngineConfig::for_variant(self.config.variant, self.config.cores)
                .with_secure_mem(self.config.secure_mem_bytes)
        };
        let engine =
            Engine::for_tenant(engine_config, pipeline, self.dp.clone(), tenant, self.pool.clone());
        let restored =
            match engine.restore_from(Some(tenant_config.quota_bytes), &sealed, min_epoch) {
                Ok(restored) => restored,
                Err(e) => {
                    *self.reserved_quota.lock() -= tenant_config.quota_bytes;
                    return Err(AdmissionError::Rejected(e));
                }
            };
        tenants.push(TenantEntry {
            id: tenant,
            config: tenant_config,
            engine,
            phase: TenantPhase::Active,
        });
        // Restored ids must stay out of the mint: a fresh admission after
        // recovery may never collide with a recovered tenant.
        let mut next = self.next_tenant.lock();
        *next = (*next).max(tenant.0 + 1);
        Ok(restored)
    }

    /// Retire a tenant's key epochs older than `horizon`: they vanish from
    /// [`verifier_keys`](StreamServer::verifier_keys) and snapshots sealed
    /// under them are refused at restore (forward secrecy across crashes).
    /// The horizon may not pass the tenant's newest checkpoint epoch —
    /// retiring the only restorable snapshot would make the next crash
    /// unrecoverable. Returns how many epochs this call newly retired.
    pub fn retire_epochs(&self, tenant: TenantId, horizon: u32) -> Result<usize, LifecycleError> {
        if !self.tenants.lock().iter().any(|t| t.id == tenant) {
            return Err(LifecycleError::UnknownTenant);
        }
        self.dp.retire_epochs_before(tenant, horizon).map_err(LifecycleError::Rejected)
    }

    /// The untrusted checkpoint vault (hand it to a replacement server via
    /// [`ServerConfig::with_vault`] to recover after a crash).
    pub fn vault(&self) -> &Arc<CheckpointVault> {
        &self.vault
    }

    /// The departure record of a tenant that left, if it ever did. The
    /// record (trail included) is retained until the cloud drains it with
    /// [`take_departed_trail`](StreamServer::take_departed_trail).
    pub fn departure(&self, tenant: TenantId) -> Option<DepartureReport> {
        self.departed.lock().get(&tenant).cloned()
    }

    /// Drain a departed tenant's retained trail segments (the cloud fetches
    /// them once, then they are dropped). The compact departure record —
    /// reason, final epoch, reclaimed bytes — stays, so
    /// [`verifier_keys`](StreamServer::verifier_keys) keeps working and an
    /// indefinitely churning edge retains only O(bytes) per departed tenant
    /// rather than its whole trail.
    pub fn take_departed_trail(&self, tenant: TenantId) -> Option<Vec<LogSegment>> {
        let mut departed = self.departed.lock();
        departed.get_mut(&tenant).map(|report| std::mem::take(&mut report.trail))
    }

    /// Ids of every tenant that has departed, in no particular order.
    pub fn departed_tenants(&self) -> Vec<TenantId> {
        self.departed.lock().keys().copied().collect()
    }

    /// What the serve loop should do with a tenant's lane right now.
    pub(crate) fn lane_phase(&self, tenant: TenantId) -> LanePhase {
        self.lane_phases(&[tenant])[0]
    }

    /// Batched [`lane_phase`](StreamServer::lane_phase) for a whole lane
    /// set under one lock (the DRR loop polls this once per iteration).
    pub(crate) fn lane_phases(&self, ids: &[TenantId]) -> Vec<LanePhase> {
        let tenants = self.tenants.lock();
        ids.iter()
            .map(|id| match tenants.iter().find(|t| t.id == *id) {
                Some(entry) => match entry.phase {
                    TenantPhase::Active => LanePhase::Active,
                    TenantPhase::Draining => LanePhase::Draining,
                },
                None => LanePhase::Departed,
            })
            .collect()
    }

    /// Called by a serve loop when a draining lane has wound down.
    pub(crate) fn finish_drain(&self, tenant: TenantId) {
        let _ = self.depart(tenant, DepartureReason::Drained);
    }

    pub(crate) fn mark_serving(&self, ids: &[TenantId]) {
        let mut serving = self.serving.lock();
        for id in ids {
            *serving.entry(*id).or_insert(0) += 1;
        }
    }

    pub(crate) fn unmark_serving(&self, ids: &[TenantId]) {
        let mut serving = self.serving.lock();
        for id in ids {
            if let Some(count) = serving.get_mut(id) {
                *count -= 1;
                if *count == 0 {
                    serving.remove(id);
                }
            }
        }
    }

    /// Whether any serve loop currently owns a lane for the tenant.
    fn is_being_served(&self, tenant: TenantId) -> bool {
        self.serving.lock().contains_key(&tenant)
    }

    /// Whether the tenant has departed, without cloning its report (the
    /// serve loop and `drain`'s wait loop poll this).
    pub(crate) fn is_departed(&self, tenant: TenantId) -> bool {
        self.departed.lock().contains_key(&tenant)
    }

    /// Ids of the admitted tenants, in admission order.
    pub fn tenants(&self) -> Vec<TenantId> {
        self.tenants.lock().iter().map(|t| t.id).collect()
    }

    /// The engine serving one tenant.
    pub fn engine(&self, tenant: TenantId) -> Option<Arc<Engine>> {
        self.tenants.lock().iter().find(|t| t.id == tenant).map(|t| t.engine.clone())
    }

    /// The admitted configuration of one tenant.
    pub fn tenant_config(&self, tenant: TenantId) -> Option<TenantConfig> {
        self.tenants.lock().iter().find(|t| t.id == tenant).map(|t| t.config.clone())
    }

    /// Secure-memory bytes not yet reserved by tenant quotas.
    pub fn unreserved_quota(&self) -> u64 {
        self.config.secure_mem_bytes.saturating_sub(*self.reserved_quota.lock())
    }

    /// The shared data plane (introspection, per-tenant audit drains).
    pub fn data_plane(&self) -> &Arc<DataPlane> {
        &self.dp
    }

    /// The shared platform.
    pub fn platform(&self) -> &Arc<Platform> {
        &self.platform
    }

    /// The unified telemetry registry of the shared substrate: span tracer,
    /// per-tenant latency histograms, counter snapshot and flight recorder.
    pub fn telemetry(&self) -> &Arc<sbt_telemetry::MetricsRegistry> {
        self.dp.telemetry()
    }

    /// The shared work-stealing executor (historically "the worker pool").
    pub fn worker_pool(&self) -> &Arc<Executor> {
        &self.pool
    }

    /// The server configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The cloud-side keychain of one tenant: per-epoch verifier keys (trail
    /// signing + result decryption), which is all trail verification needs.
    /// Works for departed tenants too — their trails stay verifiable under
    /// the keychain of their final epoch. Raw platform-wide keys are never
    /// handed out; there is no platform-wide key to hand out.
    pub fn verifier_keys(&self, tenant: TenantId) -> Option<TenantKeychain> {
        if let Ok(chain) = self.dp.verifier_keys(tenant) {
            return Some(chain);
        }
        let final_epoch = self.departed.lock().get(&tenant)?.final_epoch;
        Some(self.config.dataplane.master.keychain(tenant.0, final_epoch))
    }

    pub(crate) fn retain_drr_mirror(&self, mirror: Arc<crate::sched::DrrCounters>) {
        *self.drr_mirror.lock() = Some(mirror);
    }

    pub(crate) fn entries_snapshot(&self) -> Vec<(TenantId, TenantConfig, Arc<Engine>)> {
        self.tenants.lock().iter().map(|t| (t.id, t.config.clone(), t.engine.clone())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbt_engine::Operator;

    fn pipeline() -> Pipeline {
        Pipeline::new("t").then(Operator::WindowSum).target_delay_ms(60_000).batch_events(1_000)
    }

    #[test]
    fn admits_tenants_and_tracks_quota_headroom() {
        let server = StreamServer::new(ServerConfig::default().with_secure_mem(64 * 1024 * 1024));
        let a = server.admit(TenantConfig::new("a", 16 * 1024 * 1024), pipeline()).unwrap();
        let b = server.admit(TenantConfig::new("b", 16 * 1024 * 1024), pipeline()).unwrap();
        assert_ne!(a, b);
        assert_eq!(server.tenants(), vec![a, b]);
        assert_eq!(server.unreserved_quota(), 32 * 1024 * 1024);
        // The engines share one platform, data plane and pool.
        let ea = server.engine(a).unwrap();
        let eb = server.engine(b).unwrap();
        assert!(Arc::ptr_eq(ea.data_plane(), eb.data_plane()));
        assert!(Arc::ptr_eq(ea.worker_pool(), eb.worker_pool()));
        assert_eq!(ea.tenant(), a);
        assert_eq!(server.tenant_config(a).unwrap().name, "a");
    }

    #[test]
    fn admission_rejects_overcommit_full_and_duplicates() {
        let server = StreamServer::new(
            ServerConfig::default().with_secure_mem(8 * 1024 * 1024).with_max_tenants(2),
        );
        server.admit(TenantConfig::new("a", 6 * 1024 * 1024), pipeline()).unwrap();
        // Overcommit.
        let err = server.admit(TenantConfig::new("b", 4 * 1024 * 1024), pipeline()).unwrap_err();
        assert_eq!(
            err,
            AdmissionError::QuotaOvercommit {
                requested: 4 * 1024 * 1024,
                available: 2 * 1024 * 1024
            }
        );
        // Duplicate name.
        assert!(matches!(
            server.admit(TenantConfig::new("a", 1024), pipeline()),
            Err(AdmissionError::DuplicateName(_))
        ));
        // Zero quota.
        assert!(matches!(
            server.admit(TenantConfig::new("z", 0), pipeline()),
            Err(AdmissionError::EmptyQuota)
        ));
        // Fill the server, then hit the cap.
        server.admit(TenantConfig::new("c", 1024 * 1024), pipeline()).unwrap();
        assert!(matches!(
            server.admit(TenantConfig::new("d", 1024), pipeline()),
            Err(AdmissionError::ServerFull { max_tenants: 2 })
        ));
    }

    #[test]
    fn evict_recovers_quota_for_new_admissions() {
        let server = StreamServer::new(ServerConfig::default().with_secure_mem(32 * 1024 * 1024));
        let a = server.admit(TenantConfig::new("a", 24 * 1024 * 1024), pipeline()).unwrap();
        // No headroom for b...
        assert!(matches!(
            server.admit(TenantConfig::new("b", 16 * 1024 * 1024), pipeline()),
            Err(AdmissionError::QuotaOvercommit { .. })
        ));
        let report = server.evict(a).unwrap();
        assert_eq!(report.reason, DepartureReason::Evicted);
        assert_eq!(report.released_quota, 24 * 1024 * 1024);
        assert_eq!(server.unreserved_quota(), 32 * 1024 * 1024);
        assert!(server.tenants().is_empty());
        assert_eq!(server.departed_tenants(), vec![a]);
        assert!(server.departure(a).is_some());
        // ...until the eviction frees it; the name is reusable, the id is not.
        let b = server.admit(TenantConfig::new("a", 16 * 1024 * 1024), pipeline()).unwrap();
        assert_ne!(a, b);
        // Departed tenants reject all lifecycle operations.
        assert!(matches!(server.evict(a), Err(LifecycleError::UnknownTenant)));
        assert_eq!(server.rekey(a), Err(LifecycleError::UnknownTenant));
        assert_eq!(server.resize_quota(a, 1024), Err(LifecycleError::UnknownTenant));
        // But their keychains stay derivable for late trail verification.
        assert!(server.verifier_keys(a).is_some());
    }

    #[test]
    fn departed_trails_drain_once_and_keychains_survive() {
        let server = StreamServer::new(ServerConfig::default());
        let a = server.admit(TenantConfig::new("a", 1024 * 1024), pipeline()).unwrap();
        let report = server.evict(a).unwrap();
        assert!(!report.trail.is_empty(), "departure record flushes a segment");
        // The retained copy drains exactly once; the compact record stays.
        let drained = server.take_departed_trail(a).unwrap();
        assert_eq!(drained.len(), report.trail.len());
        assert_eq!(server.take_departed_trail(a).unwrap().len(), 0);
        assert!(server.departure(a).is_some());
        assert!(server.verifier_keys(a).is_some());
        assert!(server.take_departed_trail(TenantId(99)).is_none());
    }

    #[test]
    fn resize_quota_respects_carveout_headroom() {
        let server = StreamServer::new(ServerConfig::default().with_secure_mem(32 * 1024 * 1024));
        let a = server.admit(TenantConfig::new("a", 8 * 1024 * 1024), pipeline()).unwrap();
        let _b = server.admit(TenantConfig::new("b", 8 * 1024 * 1024), pipeline()).unwrap();
        // Growing within headroom succeeds and moves the reservation.
        server.resize_quota(a, 20 * 1024 * 1024).unwrap();
        assert_eq!(server.unreserved_quota(), 4 * 1024 * 1024);
        assert_eq!(server.tenant_config(a).unwrap().quota_bytes, 20 * 1024 * 1024);
        assert_eq!(
            server.data_plane().tenant_memory(a).unwrap().quota_bytes,
            Some(20 * 1024 * 1024)
        );
        // Growing past the carve-out fails; shrinking always succeeds.
        assert_eq!(
            server.resize_quota(a, 30 * 1024 * 1024),
            Err(LifecycleError::QuotaOvercommit {
                requested: 30 * 1024 * 1024,
                available: 24 * 1024 * 1024
            })
        );
        server.resize_quota(a, 1024 * 1024).unwrap();
        assert_eq!(server.unreserved_quota(), 23 * 1024 * 1024);
        assert_eq!(server.resize_quota(a, 0), Err(LifecycleError::EmptyQuota));
    }

    #[test]
    fn rekey_bumps_the_tenants_epoch_only() {
        let server = StreamServer::new(ServerConfig::default());
        let a = server.admit(TenantConfig::new("a", 1024 * 1024), pipeline()).unwrap();
        let b = server.admit(TenantConfig::new("b", 1024 * 1024), pipeline()).unwrap();
        assert_eq!(server.rekey(a).unwrap(), 1);
        assert_eq!(server.rekey(a).unwrap(), 2);
        assert_eq!(server.verifier_keys(a).unwrap().epoch_count(), 3);
        assert_eq!(server.verifier_keys(b).unwrap().epoch_count(), 1);
    }

    #[test]
    fn drain_without_a_serve_loop_departs_immediately() {
        let server = StreamServer::new(ServerConfig::default());
        let a = server.admit(TenantConfig::new("a", 1024 * 1024), pipeline()).unwrap();
        let report = server.drain(a).unwrap();
        assert_eq!(report.reason, DepartureReason::Drained);
        assert!(server.tenants().is_empty());
        assert_eq!(server.unreserved_quota(), server.config().secure_mem_bytes);
    }

    #[test]
    fn admission_rejects_malformed_checkpoint_policies() {
        let server = StreamServer::new(ServerConfig::default());
        let err = server
            .admit(TenantConfig::new("z", 1024).with_checkpoint_every_records(0), pipeline())
            .unwrap_err();
        assert!(matches!(err, AdmissionError::InvalidCheckpointPolicy { .. }));
        let err = server
            .admit(
                TenantConfig::new("z", 1024)
                    .with_checkpoint_every_ms(crate::tenant::MAX_CHECKPOINT_INTERVAL_MS + 1),
                pipeline(),
            )
            .unwrap_err();
        assert!(matches!(err, AdmissionError::InvalidCheckpointPolicy { .. }));
        // A well-formed policy admits; no tenant slot was leaked by the
        // rejections.
        server
            .admit(
                TenantConfig::new("z", 1024 * 1024)
                    .with_checkpoint_every_records(1_000)
                    .with_checkpoint_every_ms(100),
                pipeline(),
            )
            .unwrap();
        assert_eq!(server.tenants().len(), 1);
    }

    #[test]
    fn checkpoint_vaults_and_restore_revives_the_tenant_on_a_new_server() {
        let server = StreamServer::new(ServerConfig::default());
        let a = server.admit(TenantConfig::new("a", 4 * 1024 * 1024), pipeline()).unwrap();
        let receipt = server.checkpoint(a).unwrap();
        assert_eq!(receipt.tenant, a);
        assert_eq!(receipt.ckpt_seq, 0);
        assert!(receipt.sealed_bytes > 0);
        assert_eq!(server.vault().tenants(), vec![a]);
        // Unknown tenants cannot checkpoint.
        assert!(matches!(server.checkpoint(TenantId(99)), Err(LifecycleError::UnknownTenant)));

        // "Crash": the vault survives, the server does not.
        let vault = server.vault().clone();
        drop(server);
        let server2 = StreamServer::new(ServerConfig::default().with_vault(vault));
        let restored = server2
            .restore_tenant(a, TenantConfig::new("a", 4 * 1024 * 1024), pipeline(), 0)
            .unwrap();
        assert_eq!(restored.tenant, a);
        assert_eq!(restored.ckpt_seq, 0);
        assert_eq!(server2.tenants(), vec![a]);
        // The restored id is fenced out of the mint.
        let b = server2.admit(TenantConfig::new("b", 1024 * 1024), pipeline()).unwrap();
        assert!(b.0 > a.0);
        // Restoring again collides with the live tenant.
        assert!(matches!(
            server2.restore_tenant(a, TenantConfig::new("a2", 1024), pipeline(), 0),
            Err(AdmissionError::DuplicateName(_))
        ));
        // A tenant with no snapshot has nothing to restore from.
        assert_eq!(
            server2
                .restore_tenant(TenantId(77), TenantConfig::new("c", 1024), pipeline(), 0)
                .unwrap_err(),
            AdmissionError::NoCheckpoint
        );
    }

    #[test]
    fn torn_vault_snapshot_fails_closed_and_fallback_slot_recovers() {
        let server = StreamServer::new(ServerConfig::default());
        let a = server.admit(TenantConfig::new("a", 4 * 1024 * 1024), pipeline()).unwrap();
        server.checkpoint(a).unwrap();
        // The second store tears mid-write; the first snapshot is demoted
        // to the fallback slot intact.
        server.vault().inject(crate::recovery::VaultFault::TearStore { nth: 2, keep: 24 });
        server.checkpoint(a).unwrap();

        let vault = server.vault().clone();
        drop(server);
        let server2 = StreamServer::new(ServerConfig::default().with_vault(vault.clone()));
        // The torn current snapshot is refused inside the TEE; nothing is
        // admitted.
        let err = server2
            .restore_tenant(a, TenantConfig::new("a", 4 * 1024 * 1024), pipeline(), 0)
            .unwrap_err();
        assert!(matches!(err, AdmissionError::Rejected(_)), "torn snapshot must fail closed");
        assert!(server2.tenants().is_empty());
        // The fallback slot still restores.
        let previous = vault.fetch_previous(a).unwrap();
        let restored = server2
            .restore_tenant_from_bytes(
                &previous,
                TenantConfig::new("a", 4 * 1024 * 1024),
                pipeline(),
                0,
            )
            .unwrap();
        assert_eq!(restored.tenant, a);
        assert_eq!(restored.ckpt_seq, 0, "fallback is the older checkpoint");
    }

    #[test]
    fn retire_epochs_trims_verifier_keys_and_gates_on_checkpoints() {
        let server = StreamServer::new(ServerConfig::default());
        let a = server.admit(TenantConfig::new("a", 1024 * 1024), pipeline()).unwrap();
        // No checkpoint yet: retirement is refused (it would orphan
        // recovery).
        assert!(matches!(server.retire_epochs(a, 1), Err(LifecycleError::Rejected(_))));
        assert_eq!(server.rekey(a).unwrap(), 1);
        server.checkpoint(a).unwrap();
        assert_eq!(server.retire_epochs(a, 1).unwrap(), 1);
        let chain = server.verifier_keys(a).unwrap();
        assert_eq!(chain.oldest_epoch(), 1, "epoch 0 left the keychain");
        assert!(matches!(
            server.retire_epochs(TenantId(99), 1),
            Err(LifecycleError::UnknownTenant)
        ));
    }

    #[test]
    fn admission_is_pool_aware_about_delay_targets() {
        // A 1 ms output-delay target over a 64 MB working set cannot be met
        // by a 2-core pool: admission refuses up front rather than letting
        // `serve` miss the target for everyone.
        let server = StreamServer::new(ServerConfig::default().with_cores(2));
        let greedy =
            Pipeline::new("rt").then(Operator::WindowSum).target_delay_ms(1).batch_events(1_000);
        let err = server.admit(TenantConfig::new("rt", 64 * 1024 * 1024), greedy).unwrap_err();
        let AdmissionError::DelayUnmeetable { required, capacity } = err else {
            panic!("expected DelayUnmeetable, got {err:?}");
        };
        assert!(required > capacity);
        // The same quota under a relaxed target fits comfortably.
        let relaxed = Pipeline::new("relaxed")
            .then(Operator::WindowSum)
            .target_delay_ms(60_000)
            .batch_events(1_000);
        server.admit(TenantConfig::new("relaxed", 64 * 1024 * 1024), relaxed).unwrap();
    }
}
