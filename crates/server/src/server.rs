//! The multi-tenant stream server: admission and shared-substrate ownership.

use crate::tenant::{AdmissionError, TenantConfig};
use parking_lot::Mutex;
use sbt_crypto::{Key128, Nonce, SigningKey};
use sbt_dataplane::{DataPlane, DataPlaneConfig};
use sbt_engine::{CycleCost, Engine, EngineConfig, EngineVariant, Executor, Pipeline};
use sbt_types::TenantId;
use sbt_tz::Platform;
use std::sync::Arc;

/// Server-wide configuration.
#[derive(Clone)]
pub struct ServerConfig {
    /// Worker threads shared by all tenants' control planes.
    pub cores: usize,
    /// Secure-memory carve-out of the shared platform, in bytes. The sum of
    /// admitted tenant quotas may not exceed it.
    pub secure_mem_bytes: u64,
    /// Maximum number of tenants the server admits.
    pub max_tenants: usize,
    /// Which engine variant the shared platform models (isolation costs,
    /// ingress path).
    pub variant: EngineVariant,
    /// Data-plane keys and audit settings (shared TEE instance).
    pub dataplane: DataPlaneConfig,
    /// Deficit round-robin quantum: estimated cycle-cost units credited per
    /// unit of scheduling weight each refill round (see
    /// [`crate::sched::DrrAccounting`]).
    pub drr_quantum: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            cores: 4,
            secure_mem_bytes: 256 * 1024 * 1024,
            max_tenants: 64,
            variant: EngineVariant::Sbt,
            dataplane: DataPlaneConfig::default(),
            drr_quantum: 32 * 1024,
        }
    }
}

impl ServerConfig {
    /// A server on an n-core HiKey-like platform.
    pub fn with_cores(mut self, cores: usize) -> Self {
        self.cores = cores.max(1);
        self
    }

    /// Override the secure-memory carve-out.
    pub fn with_secure_mem(mut self, bytes: u64) -> Self {
        self.secure_mem_bytes = bytes;
        self
    }

    /// Override the tenant cap.
    pub fn with_max_tenants(mut self, n: usize) -> Self {
        self.max_tenants = n.max(1);
        self
    }

    /// Override the deficit round-robin quantum.
    pub fn with_drr_quantum(mut self, quantum: u64) -> Self {
        self.drr_quantum = quantum.max(1);
        self
    }
}

/// One admitted tenant.
pub(crate) struct TenantEntry {
    pub(crate) id: TenantId,
    pub(crate) config: TenantConfig,
    pub(crate) engine: Arc<Engine>,
}

/// The multi-tenant serving layer over one shared TEE.
pub struct StreamServer {
    config: ServerConfig,
    platform: Arc<Platform>,
    dp: Arc<DataPlane>,
    pool: Arc<Executor>,
    tenants: Mutex<Vec<TenantEntry>>,
    next_tenant: Mutex<u32>,
    reserved_quota: Mutex<u64>,
}

impl StreamServer {
    /// Bring up the shared substrate: one platform, one data plane loaded
    /// into its TEE, one worker pool. No tenants are admitted yet.
    pub fn new(config: ServerConfig) -> Arc<Self> {
        let platform_config = EngineConfig::for_variant(config.variant, config.cores)
            .with_secure_mem(config.secure_mem_bytes)
            .platform_config();
        let platform = Platform::new(platform_config);
        let dp = DataPlane::new(platform.clone(), config.dataplane.clone());
        let pool = Arc::new(Executor::new(config.cores));
        Arc::new(StreamServer {
            platform,
            dp,
            pool,
            tenants: Mutex::new(Vec::new()),
            // Tenant 0 is the data plane's built-in unconstrained default;
            // server tenants start at 1.
            next_tenant: Mutex::new(1),
            reserved_quota: Mutex::new(0),
            config,
        })
    }

    /// Estimated worst-case cycle demand of one tenant, in cost units per
    /// millisecond: its quota-bounded window working set must be processed
    /// within its declared output-delay target.
    fn demand_per_ms(quota_bytes: u64, target_delay_ms: u32) -> u64 {
        CycleCost::window_bound(quota_bytes) / u64::from(target_delay_ms.max(1))
    }

    /// Admit a tenant: check capacity, quota headroom and pool headroom
    /// (the delay target must be meetable at current load), register the
    /// tenant's namespace and quota inside the TEE, and build its
    /// control-plane engine over the shared data plane and executor.
    pub fn admit(
        &self,
        tenant_config: TenantConfig,
        pipeline: Pipeline,
    ) -> Result<TenantId, AdmissionError> {
        if tenant_config.quota_bytes == 0 {
            return Err(AdmissionError::EmptyQuota);
        }
        let mut tenants = self.tenants.lock();
        if tenants.len() >= self.config.max_tenants {
            return Err(AdmissionError::ServerFull { max_tenants: self.config.max_tenants });
        }
        if tenants.iter().any(|t| t.config.name == tenant_config.name) {
            return Err(AdmissionError::DuplicateName(tenant_config.name));
        }
        // Pool-aware admission: sum every admitted tenant's estimated cycle
        // demand plus the candidate's; refuse if the worker pool cannot
        // sustain it (the candidate's delay target — or someone's — would
        // become unmeetable under load).
        let required = tenants
            .iter()
            .map(|t| Self::demand_per_ms(t.config.quota_bytes, t.engine.pipeline().target_delay()))
            .sum::<u64>()
            + Self::demand_per_ms(tenant_config.quota_bytes, pipeline.target_delay());
        let capacity = self.config.cores as u64 * CycleCost::CORE_CAPACITY_PER_MS;
        if required > capacity {
            return Err(AdmissionError::DelayUnmeetable { required, capacity });
        }
        {
            let mut reserved = self.reserved_quota.lock();
            let available = self.config.secure_mem_bytes.saturating_sub(*reserved);
            if tenant_config.quota_bytes > available {
                return Err(AdmissionError::QuotaOvercommit {
                    requested: tenant_config.quota_bytes,
                    available,
                });
            }
            *reserved += tenant_config.quota_bytes;
        }
        let id = {
            let mut next = self.next_tenant.lock();
            let id = TenantId(*next);
            *next += 1;
            id
        };
        if let Err(e) = self.dp.register_tenant(id, Some(tenant_config.quota_bytes)) {
            *self.reserved_quota.lock() -= tenant_config.quota_bytes;
            return Err(AdmissionError::Rejected(e));
        }
        let engine_config = EngineConfig {
            dataplane: self.config.dataplane.clone(),
            ..EngineConfig::for_variant(self.config.variant, self.config.cores)
                .with_secure_mem(self.config.secure_mem_bytes)
        };
        let engine =
            Engine::for_tenant(engine_config, pipeline, self.dp.clone(), id, self.pool.clone());
        tenants.push(TenantEntry { id, config: tenant_config, engine });
        Ok(id)
    }

    /// Ids of the admitted tenants, in admission order.
    pub fn tenants(&self) -> Vec<TenantId> {
        self.tenants.lock().iter().map(|t| t.id).collect()
    }

    /// The engine serving one tenant.
    pub fn engine(&self, tenant: TenantId) -> Option<Arc<Engine>> {
        self.tenants.lock().iter().find(|t| t.id == tenant).map(|t| t.engine.clone())
    }

    /// The admitted configuration of one tenant.
    pub fn tenant_config(&self, tenant: TenantId) -> Option<TenantConfig> {
        self.tenants.lock().iter().find(|t| t.id == tenant).map(|t| t.config.clone())
    }

    /// Secure-memory bytes not yet reserved by tenant quotas.
    pub fn unreserved_quota(&self) -> u64 {
        self.config.secure_mem_bytes.saturating_sub(*self.reserved_quota.lock())
    }

    /// The shared data plane (introspection, per-tenant audit drains).
    pub fn data_plane(&self) -> &Arc<DataPlane> {
        &self.dp
    }

    /// The shared platform.
    pub fn platform(&self) -> &Arc<Platform> {
        &self.platform
    }

    /// The shared work-stealing executor (historically "the worker pool").
    pub fn worker_pool(&self) -> &Arc<Executor> {
        &self.pool
    }

    /// The server configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Cloud-side key material (what the per-tenant consumers hold).
    pub fn cloud_keys(&self) -> (Key128, Nonce, SigningKey) {
        self.dp.cloud_keys()
    }

    pub(crate) fn entries_snapshot(&self) -> Vec<(TenantId, u32, Arc<Engine>)> {
        self.tenants.lock().iter().map(|t| (t.id, t.config.weight, t.engine.clone())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbt_engine::Operator;

    fn pipeline() -> Pipeline {
        Pipeline::new("t").then(Operator::WindowSum).target_delay_ms(60_000).batch_events(1_000)
    }

    #[test]
    fn admits_tenants_and_tracks_quota_headroom() {
        let server = StreamServer::new(ServerConfig::default().with_secure_mem(64 * 1024 * 1024));
        let a = server.admit(TenantConfig::new("a", 16 * 1024 * 1024), pipeline()).unwrap();
        let b = server.admit(TenantConfig::new("b", 16 * 1024 * 1024), pipeline()).unwrap();
        assert_ne!(a, b);
        assert_eq!(server.tenants(), vec![a, b]);
        assert_eq!(server.unreserved_quota(), 32 * 1024 * 1024);
        // The engines share one platform, data plane and pool.
        let ea = server.engine(a).unwrap();
        let eb = server.engine(b).unwrap();
        assert!(Arc::ptr_eq(ea.data_plane(), eb.data_plane()));
        assert!(Arc::ptr_eq(ea.worker_pool(), eb.worker_pool()));
        assert_eq!(ea.tenant(), a);
        assert_eq!(server.tenant_config(a).unwrap().name, "a");
    }

    #[test]
    fn admission_rejects_overcommit_full_and_duplicates() {
        let server = StreamServer::new(
            ServerConfig::default().with_secure_mem(8 * 1024 * 1024).with_max_tenants(2),
        );
        server.admit(TenantConfig::new("a", 6 * 1024 * 1024), pipeline()).unwrap();
        // Overcommit.
        let err = server.admit(TenantConfig::new("b", 4 * 1024 * 1024), pipeline()).unwrap_err();
        assert_eq!(
            err,
            AdmissionError::QuotaOvercommit {
                requested: 4 * 1024 * 1024,
                available: 2 * 1024 * 1024
            }
        );
        // Duplicate name.
        assert!(matches!(
            server.admit(TenantConfig::new("a", 1024), pipeline()),
            Err(AdmissionError::DuplicateName(_))
        ));
        // Zero quota.
        assert!(matches!(
            server.admit(TenantConfig::new("z", 0), pipeline()),
            Err(AdmissionError::EmptyQuota)
        ));
        // Fill the server, then hit the cap.
        server.admit(TenantConfig::new("c", 1024 * 1024), pipeline()).unwrap();
        assert!(matches!(
            server.admit(TenantConfig::new("d", 1024), pipeline()),
            Err(AdmissionError::ServerFull { max_tenants: 2 })
        ));
    }

    #[test]
    fn admission_is_pool_aware_about_delay_targets() {
        // A 1 ms output-delay target over a 64 MB working set cannot be met
        // by a 2-core pool: admission refuses up front rather than letting
        // `serve` miss the target for everyone.
        let server = StreamServer::new(ServerConfig::default().with_cores(2));
        let greedy =
            Pipeline::new("rt").then(Operator::WindowSum).target_delay_ms(1).batch_events(1_000);
        let err = server.admit(TenantConfig::new("rt", 64 * 1024 * 1024), greedy).unwrap_err();
        let AdmissionError::DelayUnmeetable { required, capacity } = err else {
            panic!("expected DelayUnmeetable, got {err:?}");
        };
        assert!(required > capacity);
        // The same quota under a relaxed target fits comfortably.
        let relaxed = Pipeline::new("relaxed")
            .then(Operator::WindowSum)
            .target_delay_ms(60_000)
            .batch_events(1_000);
        server.admit(TenantConfig::new("relaxed", 64 * 1024 * 1024), relaxed).unwrap();
    }
}
