//! Multi-tenant stream serving: many pipelines, one shared TEE.
//!
//! The paper's engine runs a single pipeline whose tasks all enter one
//! shared TEE (§2.2, §4.2). Production edges serve many independent streams,
//! so this crate multiplexes N **tenants** — each an admitted pipeline with
//! its own control-plane engine — over one [`Platform`], one
//! [`DataPlane`] and one worker pool:
//!
//! * **Admission control** ([`StreamServer::admit`]): each tenant declares a
//!   TEE memory quota; the server refuses to overcommit the secure carve-out
//!   and caps the tenant count. Quotas are enforced inside the TEE through
//!   the uArray allocator's owner accounting.
//! * **Fair scheduling** ([`StreamServer::serve`]): tenant sources are
//!   drained by weighted round-robin; each tenant's per-batch primitive
//!   tasks then fan out onto the shared worker pool. Backpressure is per
//!   tenant — a tenant nearing its quota is slowed (and its overflowing
//!   batches rejected) without stalling the other tenants.
//! * **Isolation**: opaque-reference namespaces, audit-log segment streams,
//!   egress sequence numbers **and key material** are all per tenant; one
//!   tenant's control plane cannot invoke a primitive on another tenant's
//!   state, results seal under per-tenant derived keys, and the cloud
//!   verifies each tenant's audit trail independently under that tenant's
//!   keychain (`sbt_attest::verify_tenant_trail`).
//! * **Lifecycle** ([`StreamServer::evict`], [`StreamServer::drain`],
//!   [`StreamServer::rekey`], [`StreamServer::resize_quota`]): tenants
//!   come and go on a long-running edge. Draining runs the remaining
//!   windows to the watermark before teardown; eviction unwinds the
//!   scheduler lane mid-`serve`; either frees the tenant's references,
//!   uArrays and quota reservation in one pass, and the departed tenant's
//!   trail stays verifiable under its final epoch's keychain.
//! * **Crash recovery** ([`StreamServer::checkpoint`],
//!   [`StreamServer::restore_tenant`], [`StreamServer::retire_epochs`]):
//!   per-tenant snapshots seal inside the TEE, park as ciphertext in an
//!   untrusted [`CheckpointVault`] that outlives the server instance, and
//!   chain their hash into the signed trail — a replacement server restores
//!   mid-stream, rollback to a stale snapshot is detected by the cloud
//!   verifiers, and retired key epochs refuse old snapshots outright.
//!
//! The TCB story is unchanged: the server, like the engine, is untrusted
//! control-plane code. Everything it is trusted *not* to do is enforced by
//! the data plane, and everything it does is reflected in per-tenant audit
//! records.
//!
//! [`Platform`]: sbt_tz::Platform
//! [`DataPlane`]: sbt_dataplane::DataPlane

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod recovery;
pub mod sched;
pub mod server;
pub mod tenant;

pub use recovery::{CheckpointVault, VaultError, VaultFault};
pub use sched::{DrrAccounting, Scheduler, ServeReport, TenantProgress, TenantStream};
pub use server::{CheckpointReceipt, DepartureReport, ServerConfig, StreamServer};
pub use tenant::{AdmissionError, LifecycleError, TenantConfig};
