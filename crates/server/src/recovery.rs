//! Crash recovery: the untrusted checkpoint vault and its deterministic
//! fault injection.
//!
//! Sealed snapshots leave the enclave as opaque ciphertext (AES-CTR +
//! HMAC under keys derived from the tenant's epoch material, see
//! `sbt_dataplane::snapshot`), so they can be parked on any untrusted
//! medium. The [`CheckpointVault`] models that medium: a per-tenant slot
//! store that **outlives a server instance** — a crashed server's vault is
//! handed to its replacement via
//! [`ServerConfig::with_vault`](crate::ServerConfig::with_vault), exactly
//! as an on-disk or cloud-object vault would survive a reboot.
//!
//! Each slot keeps the current snapshot *and* the previous one. Stores are
//! write-ahead in spirit: the old current becomes `previous` before the new
//! bytes land, so a torn or corrupted write (which restore detects —
//! truncation fails the wire parse, corruption fails the MAC, both fail
//! closed) still leaves one older, intact snapshot to fall back to. Falling
//! back is safe for *recovery* but is rollback from the verifier's
//! viewpoint beyond the trail the cloud already holds — the stitched trail
//! only verifies from the restored checkpoint's cursor, which is the
//! guarantee the kill-and-restart suite pins down.
//!
//! Fault injection is deterministic and ordinal-based: the test plan names
//! the Nth store (1-based, counted across all tenants) and what happens to
//! it — refused outright (a crash *before* the write, mid-seal), torn (a
//! crash *during* the write), or bit-flipped (media corruption). No clocks,
//! no randomness: a failing schedule replays exactly.

use parking_lot::Mutex;
use sbt_types::TenantId;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// What happens to one specific store call, identified by its 1-based
/// ordinal across the vault's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VaultFault {
    /// The Nth store fails before any byte is written: the slot keeps its
    /// prior contents. Models a crash between sealing and persisting.
    FailStore {
        /// 1-based store ordinal the fault fires on.
        nth: u64,
    },
    /// The Nth store writes only the first `keep` bytes: a torn write.
    /// Restore must fail closed on the truncated snapshot.
    TearStore {
        /// 1-based store ordinal the fault fires on.
        nth: u64,
        /// Bytes that make it to the medium.
        keep: usize,
    },
    /// The Nth store lands fully but with one bit flipped at `byte`
    /// (clamped into range): media corruption. Restore must fail the MAC.
    FlipBit {
        /// 1-based store ordinal the fault fires on.
        nth: u64,
        /// Byte offset whose low bit is flipped.
        byte: usize,
    },
}

impl VaultFault {
    fn nth(&self) -> u64 {
        match self {
            VaultFault::FailStore { nth }
            | VaultFault::TearStore { nth, .. }
            | VaultFault::FlipBit { nth, .. } => *nth,
        }
    }
}

/// Why a vault store failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VaultError {
    /// An injected [`VaultFault::FailStore`] refused the write.
    InjectedFailure,
}

impl std::fmt::Display for VaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VaultError::InjectedFailure => write!(f, "injected vault store failure"),
        }
    }
}

impl std::error::Error for VaultError {}

/// One tenant's slot: the latest snapshot plus the one it replaced.
#[derive(Debug, Default, Clone)]
struct VaultSlot {
    current: Vec<u8>,
    previous: Option<Vec<u8>>,
}

/// Untrusted, server-lifetime-independent storage for sealed snapshots.
#[derive(Debug, Default)]
pub struct CheckpointVault {
    slots: Mutex<HashMap<u32, VaultSlot>>,
    plan: Mutex<Vec<VaultFault>>,
    stores: AtomicU64,
}

impl CheckpointVault {
    /// An empty vault with no fault plan.
    pub fn new() -> Arc<Self> {
        Arc::new(CheckpointVault::default())
    }

    /// Arm a deterministic fault. Faults are one-shot: each fires on the
    /// store whose ordinal it names, then is spent.
    pub fn inject(&self, fault: VaultFault) {
        self.plan.lock().push(fault);
    }

    /// Persist a tenant's sealed snapshot, demoting the prior current to
    /// the fallback slot. Applies any armed fault whose ordinal matches
    /// this store (faulted stores still consume an ordinal — a crash is a
    /// crash whether or not bytes landed).
    pub fn store(&self, tenant: TenantId, bytes: Vec<u8>) -> Result<(), VaultError> {
        let ordinal = self.stores.fetch_add(1, Ordering::SeqCst) + 1;
        let fault = {
            let mut plan = self.plan.lock();
            plan.iter().position(|f| f.nth() == ordinal).map(|i| plan.remove(i))
        };
        let bytes = match fault {
            Some(VaultFault::FailStore { .. }) => return Err(VaultError::InjectedFailure),
            Some(VaultFault::TearStore { keep, .. }) => bytes[..keep.min(bytes.len())].to_vec(),
            Some(VaultFault::FlipBit { byte, .. }) => {
                let mut bytes = bytes;
                if !bytes.is_empty() {
                    let i = byte.min(bytes.len() - 1);
                    bytes[i] ^= 1;
                }
                bytes
            }
            None => bytes,
        };
        let mut slots = self.slots.lock();
        let slot = slots.entry(tenant.0).or_default();
        if !slot.current.is_empty() {
            slot.previous = Some(std::mem::take(&mut slot.current));
        }
        slot.current = bytes;
        Ok(())
    }

    /// The latest snapshot bytes stored for a tenant.
    pub fn fetch(&self, tenant: TenantId) -> Option<Vec<u8>> {
        self.slots.lock().get(&tenant.0).map(|s| s.current.clone()).filter(|b| !b.is_empty())
    }

    /// The fallback snapshot: whatever the latest store displaced. Used
    /// when the current snapshot fails closed (torn / corrupted).
    pub fn fetch_previous(&self, tenant: TenantId) -> Option<Vec<u8>> {
        self.slots.lock().get(&tenant.0).and_then(|s| s.previous.clone())
    }

    /// Tenants with at least one stored snapshot.
    pub fn tenants(&self) -> Vec<TenantId> {
        let mut ids: Vec<TenantId> = self.slots.lock().keys().map(|id| TenantId(*id)).collect();
        ids.sort_by_key(|t| t.0);
        ids
    }

    /// Store calls attempted over the vault's lifetime (faulted ones
    /// included) — the ordinal space the fault plan indexes.
    pub fn stores_attempted(&self) -> u64 {
        self.stores.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_rotates_current_into_previous() {
        let vault = CheckpointVault::new();
        let t = TenantId(3);
        assert!(vault.fetch(t).is_none());
        vault.store(t, vec![1, 2, 3]).unwrap();
        assert_eq!(vault.fetch(t).unwrap(), vec![1, 2, 3]);
        assert!(vault.fetch_previous(t).is_none());
        vault.store(t, vec![4, 5]).unwrap();
        assert_eq!(vault.fetch(t).unwrap(), vec![4, 5]);
        assert_eq!(vault.fetch_previous(t).unwrap(), vec![1, 2, 3]);
        assert_eq!(vault.tenants(), vec![t]);
        assert_eq!(vault.stores_attempted(), 2);
    }

    #[test]
    fn faults_fire_on_their_ordinal_and_are_one_shot() {
        let vault = CheckpointVault::new();
        let t = TenantId(1);
        vault.inject(VaultFault::FailStore { nth: 2 });
        vault.inject(VaultFault::TearStore { nth: 3, keep: 1 });
        vault.inject(VaultFault::FlipBit { nth: 4, byte: 0 });
        vault.store(t, vec![10, 11]).unwrap();
        // Ordinal 2 fails; the slot keeps its contents.
        assert_eq!(vault.store(t, vec![20]), Err(VaultError::InjectedFailure));
        assert_eq!(vault.fetch(t).unwrap(), vec![10, 11]);
        // Ordinal 3 tears; the displaced good snapshot is the fallback.
        vault.store(t, vec![30, 31, 32]).unwrap();
        assert_eq!(vault.fetch(t).unwrap(), vec![30]);
        assert_eq!(vault.fetch_previous(t).unwrap(), vec![10, 11]);
        // Ordinal 4 flips a bit.
        vault.store(t, vec![0x40]).unwrap();
        assert_eq!(vault.fetch(t).unwrap(), vec![0x41]);
        // The plan is spent: ordinal 5 stores cleanly.
        vault.store(t, vec![50]).unwrap();
        assert_eq!(vault.fetch(t).unwrap(), vec![50]);
    }
}
