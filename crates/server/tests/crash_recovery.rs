//! Kill-and-restart differential suite.
//!
//! Each scenario runs the same stream twice: once uninterrupted (the
//! oracle), and once through a crash — the first server is abandoned at a
//! chosen crash point with only its untrusted [`CheckpointVault`] surviving,
//! a replacement server restores the tenant from the vault and replays the
//! stream suffix from the checkpoint cut. The suite then requires:
//!
//! * the recovered run's output equals the uninterrupted run's output from
//!   the last durable checkpoint onward, window for window;
//! * the stitched audit trail — the prefix the cloud fetched at checkpoint
//!   time plus the recovered server's suffix — verifies under the tenant's
//!   keychain, by the serial and the pool-parallel verifier alike;
//! * torn and corrupted snapshots fail closed inside the TEE, and recovery
//!   falls back to the vault's previous intact slot;
//! * restoring from a *stale* checkpoint (older than trail the cloud
//!   holds) is detected by both verifiers.
//!
//! Crash points cover the checkpoint lifecycle: mid-ingest and
//! mid-window-fire (doomed work after a durable checkpoint), mid-seal (the
//! crash lands before the snapshot bytes ever reach the vault) and
//! mid-checkpoint-write (the bytes land torn).
//!
//! The trailing property test interleaves checkpoint / rekey / crash+restore
//! / evict arbitrarily and requires the cloud-held trail to stay verifiable
//! after every schedule.
//!
//! [`CheckpointVault`]: sbt_server::CheckpointVault

use proptest::prelude::*;
use sbt_attest::{verify_tenant_trail, verify_tenant_trail_parallel, LogSegment};
use sbt_crypto::MasterSecret;
use sbt_engine::{Operator, Pipeline, StreamSide};
use sbt_server::{ServerConfig, StreamServer, TenantConfig, TenantStream, VaultFault};
use sbt_types::TenantId;
use sbt_workloads::datasets::{multi_tenant_streams, StreamChunk};
use sbt_workloads::generator::{Generator, GeneratorConfig};
use sbt_workloads::transport::Channel;
use std::sync::Arc;

const WINDOWS: u32 = 4;
const EVENTS_PER_WINDOW: usize = 1_200;
const BATCH: usize = 400;
const QUOTA: u64 = 8 * 1024 * 1024;

fn pipeline(name: &str) -> Pipeline {
    Pipeline::new(name).then(Operator::WindowSum).target_delay_ms(60_000).batch_events(BATCH)
}

fn chunks() -> Vec<StreamChunk> {
    multi_tenant_streams(1, WINDOWS, EVENTS_PER_WINDOW, 16, 42).remove(0)
}

/// A stream of the given chunks for one tenant, encrypted under the
/// tenant's key material at `epoch`.
fn stream(tenant: TenantId, epoch: u32, chunks: &[StreamChunk]) -> TenantStream {
    TenantStream {
        tenant,
        generator: Generator::new(
            GeneratorConfig { batch_events: BATCH },
            Channel::for_tenant(&MasterSecret::demo(), tenant, epoch),
            chunks.to_vec(),
        ),
    }
}

/// Per-window oracle sums.
fn window_sums(chunks: &[StreamChunk]) -> Vec<u64> {
    chunks.iter().map(|c| c.events.iter().map(|e| e.value as u64).sum()).collect()
}

/// Decrypt a server's externalized window results for one tenant.
fn opened_results(server: &StreamServer, tenant: TenantId) -> Vec<u64> {
    let chain = server.verifier_keys(tenant).unwrap();
    server
        .engine(tenant)
        .unwrap()
        .results()
        .iter()
        .map(|msg| {
            let plain = msg.open_with(chain.latest()).unwrap();
            u64::from_le_bytes(plain[..8].try_into().unwrap())
        })
        .collect()
}

/// Verify a stitched trail with both verifiers and require them to agree.
fn verify_both(server: &StreamServer, tenant: TenantId, cloud: Vec<LogSegment>) {
    let chain = server.verifier_keys(tenant).unwrap();
    let serial = verify_tenant_trail(&cloud, tenant, &chain)
        .expect("stitched prefix + recovered suffix must verify");
    let arc = Arc::new(cloud);
    let parallel =
        verify_tenant_trail_parallel(&arc, tenant, &chain, server.worker_pool().as_ref())
            .expect("parallel verifier must accept what the serial one accepts");
    assert_eq!(serial.len(), parallel.len(), "both verifiers see the same record stream");
}

#[derive(Debug, Clone, Copy)]
#[allow(clippy::enum_variant_names)] // the crash points are all genuinely mid-something
enum CrashPoint {
    /// Crash with a partial batch of the next window ingested.
    MidIngest,
    /// Crash after the next window fired but before its result or audit
    /// segments were fetched.
    MidWindowFire,
    /// Crash during the next checkpoint, before its bytes reach the vault.
    MidSeal,
    /// Crash during the next checkpoint's vault write: the bytes land torn.
    MidCheckpointWrite,
}

fn run_crash_scenario(point: CrashPoint) {
    let all = chunks();
    let oracle = window_sums(&all);

    // Uninterrupted oracle run.
    let uninterrupted = StreamServer::new(ServerConfig::default().with_cores(2));
    let t = uninterrupted.admit(TenantConfig::new("t", QUOTA), pipeline("t")).unwrap();
    uninterrupted.serve(vec![stream(t, 0, &all)]).unwrap();
    let u_results = opened_results(&uninterrupted, t);
    assert_eq!(u_results, oracle, "oracle run must be correct before it can anchor the diff");

    // Doomed run: serve two windows, take a durable checkpoint, let the
    // cloud fetch the trail prefix up to it.
    let doomed = StreamServer::new(ServerConfig::default().with_cores(2));
    let t2 = doomed.admit(TenantConfig::new("t", QUOTA), pipeline("t")).unwrap();
    assert_eq!(t2, t, "a fresh server mints the same first tenant id");
    doomed.serve(vec![stream(t, 0, &all[..2])]).unwrap();
    let receipt = doomed.checkpoint(t).unwrap();
    assert_eq!(receipt.ckpt_seq, 0);
    let mut cloud: Vec<LogSegment> = doomed.engine(t).unwrap().drain_audit_segments();
    assert!(!cloud.is_empty(), "the checkpoint record flushes a segment");

    // Post-checkpoint work that the crash will destroy.
    match point {
        CrashPoint::MidIngest => {
            // A partial batch of window 2 enters the TEE; its audit records
            // and memory die with the enclave.
            let engine = doomed.engine(t).unwrap();
            let mut ch = Channel::for_tenant(&MasterSecret::demo(), t, 0);
            let sub = StreamChunk {
                events: all[2].events[..BATCH].to_vec(),
                power_events: Vec::new(),
                watermark: all[2].watermark,
            };
            engine.ingest_on(&ch.send(&sub), StreamSide::Left).unwrap();
        }
        CrashPoint::MidWindowFire => {
            // Window 2 fully fires, but neither its result nor its audit
            // segments are ever fetched.
            doomed.serve(vec![stream(t, 0, &all[2..3])]).unwrap();
        }
        CrashPoint::MidSeal => {
            // The next checkpoint crashes before its bytes reach the vault:
            // the store is refused, the durable state stays checkpoint 0.
            doomed
                .vault()
                .inject(VaultFault::FailStore { nth: doomed.vault().stores_attempted() + 1 });
            assert!(doomed.checkpoint(t).is_err(), "mid-seal crash surfaces as a failed store");
        }
        CrashPoint::MidCheckpointWrite => {
            // More progress, then a checkpoint whose vault write tears: the
            // newest snapshot is truncated on the medium, the previous one
            // survives in the fallback slot.
            doomed.serve(vec![stream(t, 0, &all[2..3])]).unwrap();
            doomed.vault().inject(VaultFault::TearStore {
                nth: doomed.vault().stores_attempted() + 1,
                keep: 40,
            });
            doomed.checkpoint(t).unwrap();
        }
    }

    // Crash: only the untrusted vault survives.
    let vault = doomed.vault().clone();
    drop(doomed);

    // Recovery on a replacement server.
    let recovered =
        StreamServer::new(ServerConfig::default().with_cores(2).with_vault(vault.clone()));
    let restored = match point {
        CrashPoint::MidCheckpointWrite => {
            // The torn current snapshot must fail closed inside the TEE...
            let err = recovered
                .restore_tenant(t, TenantConfig::new("t", QUOTA), pipeline("t"), 0)
                .unwrap_err();
            assert!(
                matches!(err, sbt_server::AdmissionError::Rejected(_)),
                "torn snapshot must be rejected, got {err:?}"
            );
            assert!(recovered.tenants().is_empty(), "a failed restore admits nothing");
            // ...and recovery falls back to the previous intact slot.
            let previous = vault.fetch_previous(t).unwrap();
            recovered
                .restore_tenant_from_bytes(
                    &previous,
                    TenantConfig::new("t", QUOTA),
                    pipeline("t"),
                    0,
                )
                .unwrap()
        }
        _ => recovered.restore_tenant(t, TenantConfig::new("t", QUOTA), pipeline("t"), 0).unwrap(),
    };
    assert_eq!(restored.tenant, t);
    assert_eq!(restored.ckpt_seq, 0, "every scenario recovers from the durable checkpoint");
    assert_eq!(restored.next_unexecuted, 2, "windows 0 and 1 were checkpointed as fired");

    // Replay the suffix from the checkpoint cut and compare against the
    // uninterrupted run, window for window.
    recovered.serve(vec![stream(t, 0, &all[2..])]).unwrap();
    let r_results = opened_results(&recovered, t);
    assert_eq!(
        r_results,
        u_results[2..],
        "recovered output must equal the uninterrupted run from the checkpoint onward"
    );

    // The stitched trail — cloud prefix + recovered suffix — verifies
    // under both verifiers.
    cloud.extend(recovered.engine(t).unwrap().drain_audit_segments());
    verify_both(&recovered, t, cloud);
}

#[test]
fn crash_mid_ingest_recovers_to_uninterrupted_output() {
    run_crash_scenario(CrashPoint::MidIngest);
}

#[test]
fn crash_mid_window_fire_recovers_to_uninterrupted_output() {
    run_crash_scenario(CrashPoint::MidWindowFire);
}

#[test]
fn crash_mid_seal_recovers_from_the_prior_checkpoint() {
    run_crash_scenario(CrashPoint::MidSeal);
}

#[test]
fn crash_mid_checkpoint_write_fails_closed_then_recovers_from_fallback() {
    run_crash_scenario(CrashPoint::MidCheckpointWrite);
}

#[test]
fn bit_flipped_snapshot_fails_closed() {
    let all = chunks();
    let server = StreamServer::new(ServerConfig::default().with_cores(2));
    let t = server.admit(TenantConfig::new("t", QUOTA), pipeline("t")).unwrap();
    server.serve(vec![stream(t, 0, &all[..1])]).unwrap();
    // Flip one ciphertext bit on the medium (past the 30-byte header).
    server.vault().inject(VaultFault::FlipBit { nth: 1, byte: 64 });
    server.checkpoint(t).unwrap();
    let vault = server.vault().clone();
    drop(server);
    let recovered = StreamServer::new(ServerConfig::default().with_cores(2).with_vault(vault));
    let err =
        recovered.restore_tenant(t, TenantConfig::new("t", QUOTA), pipeline("t"), 0).unwrap_err();
    assert!(
        matches!(err, sbt_server::AdmissionError::Rejected(_)),
        "corrupted snapshot must fail the MAC, got {err:?}"
    );
    assert!(recovered.tenants().is_empty());
}

#[test]
fn stale_checkpoint_restore_is_detected_by_both_verifiers() {
    let all = chunks();
    let server = StreamServer::new(ServerConfig::default().with_cores(2));
    let t = server.admit(TenantConfig::new("t", QUOTA), pipeline("t")).unwrap();

    // Checkpoint 0, whose bytes an attacker squirrels away.
    server.serve(vec![stream(t, 0, &all[..1])]).unwrap();
    server.checkpoint(t).unwrap();
    let stale = server.vault().fetch(t).unwrap();

    // More progress and a newer checkpoint; the cloud fetches the trail
    // through it.
    server.serve(vec![stream(t, 0, &all[1..2])]).unwrap();
    server.checkpoint(t).unwrap();
    let mut cloud: Vec<LogSegment> = server.engine(t).unwrap().drain_audit_segments();
    drop(server);

    // Rollback: a replacement server is fed the stale snapshot.
    let rolled = StreamServer::new(ServerConfig::default().with_cores(2));
    let restored = rolled
        .restore_tenant_from_bytes(&stale, TenantConfig::new("t", QUOTA), pipeline("t"), 0)
        .unwrap();
    assert_eq!(restored.ckpt_seq, 0, "the rollback resumes from the older checkpoint");
    rolled.serve(vec![stream(t, 0, &all[1..])]).unwrap();
    cloud.extend(rolled.engine(t).unwrap().drain_audit_segments());

    // The stitched trail forks against what the cloud already holds: both
    // verifiers must refuse it, identically.
    let chain = rolled.verifier_keys(t).unwrap();
    let serial = verify_tenant_trail(&cloud, t, &chain)
        .expect_err("rollback to a stale checkpoint must not verify");
    let arc = Arc::new(cloud);
    let parallel = verify_tenant_trail_parallel(&arc, t, &chain, rolled.worker_pool().as_ref())
        .expect_err("the parallel verifier must refuse the rollback too");
    assert_eq!(serial, parallel, "serial and parallel verifiers report the same violation");
}

#[test]
fn policy_driven_checkpoints_fire_during_serve_and_restore_mid_window() {
    let all = chunks();
    let server = StreamServer::new(ServerConfig::default().with_cores(2));
    // A record-driven policy that cuts mid-window: every 1 000 events with
    // 1 200-event windows.
    let t = server
        .admit(TenantConfig::new("t", QUOTA).with_checkpoint_every_records(1_000), pipeline("t"))
        .unwrap();
    let report = server.serve(vec![stream(t, 0, &all)]).unwrap();
    assert!(
        report.per_tenant[0].checkpoints_taken >= 1,
        "the serve loop must take amortized checkpoints, got {:?}",
        report.per_tenant[0]
    );
    assert_eq!(opened_results(&server, t), window_sums(&all), "checkpointing must not skew output");
    // The live trail — checkpoints chained in — verifies end to end.
    let cloud = server.engine(t).unwrap().drain_audit_segments();
    verify_both(&server, t, cloud);

    // Crash after the run; restore from the last amortized checkpoint and
    // replay the stream from the snapshot's source cursor (a mid-window
    // cut: the restored window state plus the replayed remainder must
    // reassemble the exact windows).
    let vault = server.vault().clone();
    let u_results = opened_results(&server, t);
    drop(server);
    let recovered = StreamServer::new(ServerConfig::default().with_cores(2).with_vault(vault));
    let restored =
        recovered.restore_tenant(t, TenantConfig::new("t", QUOTA), pipeline("t"), 0).unwrap();
    let fired = restored.next_unexecuted as usize;
    // Source cursor: events the snapshot already holds, beyond the fully
    // fired windows.
    let events_at_ckpt = recovered.engine(t).unwrap().metrics().events_ingested as usize;
    let mut into_unfired = events_at_ckpt - all[..fired].iter().map(|c| c.len()).sum::<usize>();
    // Replay: skip fired windows entirely; slice the partially-checkpointed
    // ones from the cursor (a fully-checkpointed unfired window replays as
    // just its watermark).
    let mut replay: Vec<StreamChunk> = Vec::new();
    for chunk in &all[fired..] {
        let skip = into_unfired.min(chunk.len());
        into_unfired -= skip;
        replay.push(StreamChunk {
            events: chunk.events[skip..].to_vec(),
            power_events: Vec::new(),
            watermark: chunk.watermark,
        });
    }
    recovered.serve(vec![stream(t, 0, &replay)]).unwrap();
    assert_eq!(
        opened_results(&recovered, t),
        u_results[fired..],
        "mid-window restore must reassemble the exact remaining windows"
    );
}

// ---------------------------------------------------------------------------
// Property: arbitrary interleavings of serve / checkpoint / rekey /
// crash+restore / evict keep the cloud-held trail verifiable.
// ---------------------------------------------------------------------------

const PROP_WINDOWS: u32 = 4;
const PROP_EVENTS: usize = 400;
const PROP_BATCH: usize = 200;

fn prop_stream(tenant: TenantId, epoch: u32, chunks: &[StreamChunk]) -> TenantStream {
    TenantStream {
        tenant,
        generator: Generator::new(
            GeneratorConfig { batch_events: PROP_BATCH },
            Channel::for_tenant(&MasterSecret::demo(), tenant, epoch),
            chunks.to_vec(),
        ),
    }
}

fn prop_pipeline() -> Pipeline {
    Pipeline::new("p").then(Operator::WindowSum).target_delay_ms(60_000).batch_events(PROP_BATCH)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Ops: 0 = serve next window, 1 = checkpoint (cloud fetches the trail),
    /// 2 = rekey, 3 = crash + restore from the vault, 4 = evict (terminal).
    #[test]
    fn interleaved_lifecycle_keeps_trails_verifiable(ops in collection::vec(0u8..5u8, 1..9)) {
        let all = multi_tenant_streams(1, PROP_WINDOWS, PROP_EVENTS, 8, 7).remove(0);
        let mut server = StreamServer::new(ServerConfig::default().with_cores(2));
        let t = server.admit(TenantConfig::new("p", QUOTA), prop_pipeline()).unwrap();
        let mut cloud: Vec<LogSegment> = Vec::new();
        let mut next_window = 0usize;
        let mut epoch = 0u32;
        let mut has_ckpt = false;
        let mut alive = true;

        for op in ops {
            match op {
                0 => {
                    if next_window < all.len() {
                        server
                            .serve(vec![prop_stream(t, epoch, &all[next_window..next_window + 1])])
                            .unwrap();
                        next_window += 1;
                    }
                }
                1 => {
                    server.checkpoint(t).unwrap();
                    // The cloud fetches everything through the checkpoint
                    // record; only fetched segments survive a later crash.
                    cloud.extend(server.engine(t).unwrap().drain_audit_segments());
                    has_ckpt = true;
                }
                2 => {
                    epoch = server.rekey(t).unwrap();
                }
                3 => {
                    if !has_ckpt {
                        continue; // nothing durable to restore from
                    }
                    let vault = server.vault().clone();
                    drop(server);
                    server = StreamServer::new(
                        ServerConfig::default().with_cores(2).with_vault(vault),
                    );
                    let restored = server
                        .restore_tenant(t, TenantConfig::new("p", QUOTA), prop_pipeline(), 0)
                        .unwrap();
                    // The snapshot fixes the replay cursor and key epoch.
                    next_window = restored.next_unexecuted as usize;
                    epoch = restored.epoch;
                }
                _ => {
                    // Evict: terminal. The departure trail continues the
                    // fetched prefix.
                    let report = server.evict(t).unwrap();
                    cloud.extend(report.trail);
                    alive = false;
                    break;
                }
            }
        }

        if alive {
            cloud.extend(server.engine(t).unwrap().drain_audit_segments());
        }
        if !cloud.is_empty() {
            let chain = server.verifier_keys(t).unwrap();
            let serial = verify_tenant_trail(&cloud, t, &chain);
            prop_assert!(
                serial.is_ok(),
                "interleaved lifecycle broke the trail: {:?}",
                serial.err()
            );
            let arc = Arc::new(cloud);
            let parallel = verify_tenant_trail_parallel(
                &arc,
                t,
                &chain,
                server.worker_pool().as_ref(),
            );
            prop_assert!(parallel.is_ok(), "parallel verifier disagrees: {:?}", parallel.err());
        }
    }
}
