//! The specialized uArray allocator with hint-guided placement (§6.2).
//!
//! The allocator decides, for every new uArray, whether to append it to an
//! existing uGroup or open a new one:
//!
//! * a *consumed-after* hint walks back along the consumed-after chain and
//!   appends the new uArray behind the first predecessor that is already
//!   `Produced` and sits at the end of a uGroup; otherwise a new uGroup is
//!   opened;
//! * a *consumed-in-parallel* hint forces each sibling into its own uGroup so
//!   a straggling consumer cannot block reclamation of the others;
//! * with no hint, the policy depends on [`PlacementPolicy`]:
//!   `HintGuided` opens a new uGroup (conservative), while `SameProducer`
//!   (the Figure 10 baseline) co-locates all outputs of the same producer
//!   primitive on the heuristic that they form one generation.
//!
//! The allocator also owns the reclamation scan (front-of-group, in order)
//! and the memory statistics the evaluation reports: committed bytes,
//! stuck-but-retired bytes, live uGroup count and virtual-space usage.

use crate::hints::ConsumptionHint;
use crate::quota::{QuotaBook, QuotaError};
use crate::uarray::{UArrayId, UArrayState};
use crate::ugroup::{UGroup, UGroupId};
use crate::vspace::VirtualSpace;
use std::collections::HashMap;

/// How the allocator places uArrays that carry no usable hint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// The paper's design: follow hints; without a hint, open a new uGroup.
    HintGuided,
    /// The Figure 10 baseline: ignore hints and co-locate all outputs of the
    /// same producer primitive in one uGroup ("same generation" heuristic).
    SameProducer,
}

/// Allocator configuration.
#[derive(Debug, Clone, Copy)]
pub struct AllocatorConfig {
    /// Placement policy.
    pub policy: PlacementPolicy,
    /// Virtual reservation handed to each uGroup (the paper uses the size of
    /// the entire TEE DRAM).
    pub group_reservation_bytes: u64,
}

impl Default for AllocatorConfig {
    fn default() -> Self {
        AllocatorConfig {
            policy: PlacementPolicy::HintGuided,
            group_reservation_bytes: 256 * 1024 * 1024,
        }
    }
}

/// Point-in-time memory statistics of the allocator.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MemoryReport {
    /// Bytes committed by live (unreclaimed) uArrays.
    pub committed_bytes: u64,
    /// Bytes committed by retired uArrays that are stuck behind live ones.
    pub stuck_bytes: u64,
    /// Number of live uGroups.
    pub live_groups: usize,
    /// Number of live (unreclaimed) uArrays.
    pub live_uarrays: usize,
    /// Bytes of virtual address space reserved by live uGroups.
    pub virtual_reserved_bytes: u64,
    /// Percentage of the TEE virtual address space reserved.
    pub virtual_utilization_percent: f64,
    /// Total bytes reclaimed since the allocator was created.
    pub reclaimed_bytes: u64,
}

/// Result of tearing down one owner's arrays ([`Allocator::release_owner`]).
#[derive(Debug, Clone, Default)]
pub struct OwnerTeardown {
    /// `(id, charged bytes)` of every array freed; the caller releases their
    /// backing storage.
    pub arrays: Vec<(UArrayId, u64)>,
    /// Total bytes reclaimed by the teardown.
    pub reclaimed_bytes: u64,
}

/// Where a uArray currently lives.
#[derive(Debug, Clone, Copy)]
struct Placement {
    group: UGroupId,
}

/// The uArray placement allocator.
///
/// The allocator tracks *metadata only* (ids, states, committed sizes); the
/// record storage itself lives with the data plane, which reports state
/// transitions and committed sizes back to the allocator.
#[derive(Debug)]
pub struct Allocator {
    config: AllocatorConfig,
    vspace: VirtualSpace,
    groups: HashMap<UGroupId, UGroup>,
    placements: HashMap<UArrayId, Placement>,
    /// Chains of consumed-after hints: child -> parent.
    consumed_after: HashMap<UArrayId, UArrayId>,
    /// Producer -> group used by the `SameProducer` policy.
    producer_groups: HashMap<u64, UGroupId>,
    /// Per-owner (tenant) quota accounting.
    quotas: QuotaBook,
    next_group: u64,
    total_reclaimed: u64,
    peak_committed: u64,
}

impl Allocator {
    /// Create an allocator.
    pub fn new(config: AllocatorConfig) -> Self {
        Allocator {
            vspace: VirtualSpace::new(config.group_reservation_bytes),
            config,
            groups: HashMap::new(),
            placements: HashMap::new(),
            consumed_after: HashMap::new(),
            producer_groups: HashMap::new(),
            quotas: QuotaBook::new(),
            next_group: 0,
            total_reclaimed: 0,
            peak_committed: 0,
        }
    }

    /// Create an allocator with the default (hint-guided) configuration.
    pub fn hint_guided() -> Self {
        Allocator::new(AllocatorConfig::default())
    }

    /// Create the Figure 10 baseline allocator that ignores hints.
    pub fn same_producer_baseline() -> Self {
        Allocator::new(AllocatorConfig {
            policy: PlacementPolicy::SameProducer,
            ..AllocatorConfig::default()
        })
    }

    /// The active placement policy.
    pub fn policy(&self) -> PlacementPolicy {
        self.config.policy
    }

    fn new_group(&mut self) -> UGroupId {
        let id = UGroupId(self.next_group);
        self.next_group += 1;
        let base = self.vspace.reserve();
        self.groups.insert(id, UGroup::new(id, base));
        id
    }

    /// Find a uGroup that can accept a new uArray behind `pred`, walking the
    /// consumed-after chain backwards as the paper describes: the candidate
    /// must be `Produced` (its growth finished) and must be the tail of its
    /// group.
    fn group_via_consumed_after(&self, mut pred: UArrayId) -> Option<UGroupId> {
        for _ in 0..64 {
            if let Some(p) = self.placements.get(&pred) {
                if let Some(group) = self.groups.get(&p.group) {
                    if let Some(tail) = group.tail() {
                        if tail.id == pred && tail.state != UArrayState::Open && group.can_append()
                        {
                            return Some(p.group);
                        }
                    }
                }
            }
            // Walk back one step on the chain.
            match self.consumed_after.get(&pred) {
                Some(parent) => pred = *parent,
                None => return None,
            }
        }
        None
    }

    /// Place a new uArray.
    ///
    /// * `id` — the id minted by the data plane for the new uArray.
    /// * `producer` — an opaque tag identifying the producing primitive
    ///   instance (used only by the `SameProducer` baseline policy).
    /// * `hint` — the consumption hint covering this output, if any.
    ///
    /// Returns the uGroup the uArray was placed in.
    pub fn place(
        &mut self,
        id: UArrayId,
        producer: u64,
        hint: Option<ConsumptionHint>,
    ) -> UGroupId {
        let group_id = match (self.config.policy, hint) {
            // Hint-guided policy, consumed-after: co-locate on the chain.
            (PlacementPolicy::HintGuided, Some(ConsumptionHint::ConsumedAfter(pred))) => {
                self.consumed_after.insert(id, pred);
                self.group_via_consumed_after(pred).unwrap_or_else(|| self.new_group())
            }
            // Hint-guided policy, consumed-in-parallel: isolate each sibling.
            (PlacementPolicy::HintGuided, Some(ConsumptionHint::ConsumedInParallel { .. })) => {
                self.new_group()
            }
            // Hint-guided policy, no hint: conservative new group.
            (PlacementPolicy::HintGuided, None) => self.new_group(),
            // Baseline policy: same producer -> same group, if appendable.
            (PlacementPolicy::SameProducer, _) => {
                match self.producer_groups.get(&producer).copied() {
                    Some(g) if self.groups.get(&g).map(|grp| grp.can_append()).unwrap_or(false) => {
                        g
                    }
                    _ => {
                        let g = self.new_group();
                        self.producer_groups.insert(producer, g);
                        g
                    }
                }
            }
        };
        self.groups.get_mut(&group_id).expect("group just selected must exist").append(id);
        self.placements.insert(id, Placement { group: group_id });
        group_id
    }

    /// Report a state/size update for a uArray (open→produced→retired and
    /// the current committed byte count).
    pub fn update(&mut self, id: UArrayId, state: UArrayState, committed_bytes: u64) {
        if let Some(p) = self.placements.get(&id) {
            if let Some(g) = self.groups.get_mut(&p.group) {
                g.update_member(id, state, committed_bytes);
            }
        }
        let report = self.committed_bytes();
        if report > self.peak_committed {
            self.peak_committed = report;
        }
    }

    // ----- per-owner quotas (multi-tenant serving) -----------------------

    /// Install (or replace) a per-owner memory quota. Owners without a quota
    /// are unconstrained.
    pub fn set_owner_quota(&mut self, owner: u64, bytes: u64) {
        self.quotas.set_quota(owner, bytes);
    }

    /// Remove an owner's quota.
    pub fn clear_owner_quota(&mut self, owner: u64) {
        self.quotas.clear_quota(owner);
    }

    /// Bytes currently charged to an owner.
    pub fn owner_used(&self, owner: u64) -> u64 {
        self.quotas.used_by(owner)
    }

    /// The owner's quota, if one is installed.
    pub fn owner_quota(&self, owner: u64) -> Option<u64> {
        self.quotas.quota_of(owner)
    }

    /// Whether charging `bytes` more to the owner would exceed its quota.
    pub fn owner_would_exceed(&self, owner: u64, bytes: u64) -> bool {
        self.quotas.would_exceed(owner, bytes)
    }

    /// Charge a uArray's committed bytes to an owner. Fails (without
    /// charging) when the owner's quota would be exceeded; the caller is
    /// responsible for releasing the array's pages in that case.
    pub fn charge_owner(&mut self, owner: u64, id: UArrayId, bytes: u64) -> Result<(), QuotaError> {
        self.quotas.charge(owner, id, bytes)
    }

    /// Tear down everything an owner holds in one pass: every uArray charged
    /// to the owner — live, open or stuck-retired alike — is removed from
    /// its group (ignoring the front-of-group reclaim frontier), its quota
    /// charge released, and groups emptied by the sweep dissolved. Returns
    /// the freed arrays with their charged bytes so the caller can release
    /// their backing storage.
    pub fn release_owner(&mut self, owner: u64) -> OwnerTeardown {
        let arrays = self.quotas.charged_to(owner);
        let mut reclaimed_bytes = 0;
        for (id, bytes) in &arrays {
            if let Some(p) = self.placements.remove(id) {
                if let Some(g) = self.groups.get_mut(&p.group) {
                    g.remove_member(*id);
                }
            }
            self.consumed_after.remove(id);
            self.quotas.release(*id);
            reclaimed_bytes += *bytes;
        }
        let empty_groups: Vec<UGroupId> =
            self.groups.iter().filter(|(_, g)| g.is_empty()).map(|(gid, _)| *gid).collect();
        for gid in empty_groups {
            if let Some(g) = self.groups.remove(&gid) {
                self.total_reclaimed += g.reclaimed_bytes();
                self.vspace.release();
                self.producer_groups.retain(|_, v| *v != gid);
            }
        }
        OwnerTeardown { arrays, reclaimed_bytes }
    }

    /// Run the reclamation scan over all groups: from the front of each
    /// group, pop members while they are retired. Returns the ids whose
    /// backing storage the data plane should now release. Groups that become
    /// empty are dissolved and their virtual reservation released.
    pub fn reclaim(&mut self) -> Vec<UArrayId> {
        let mut reclaimed = Vec::new();
        let mut empty_groups = Vec::new();
        for (gid, group) in self.groups.iter_mut() {
            let taken = group.take_reclaimable();
            if !taken.is_empty() {
                reclaimed.extend(taken);
            }
            if group.is_empty() {
                empty_groups.push(*gid);
            }
        }
        for id in &reclaimed {
            if let Some(p) = self.placements.remove(id) {
                self.consumed_after.remove(id);
                let _ = p;
            }
            self.quotas.release(*id);
        }
        for gid in empty_groups {
            if let Some(g) = self.groups.remove(&gid) {
                self.total_reclaimed += g.reclaimed_bytes();
                self.vspace.release();
                // Drop the producer mapping if it pointed at the dissolved
                // group, so the baseline policy opens a fresh group next time.
                self.producer_groups.retain(|_, v| *v != gid);
            }
        }
        reclaimed
    }

    /// Bytes committed by live uArrays across all groups.
    pub fn committed_bytes(&self) -> u64 {
        self.groups.values().map(|g| g.committed_bytes()).sum()
    }

    /// Peak committed bytes observed so far.
    pub fn peak_committed_bytes(&self) -> u64 {
        self.peak_committed
    }

    /// Current memory report.
    pub fn report(&self) -> MemoryReport {
        MemoryReport {
            committed_bytes: self.committed_bytes(),
            stuck_bytes: self.groups.values().map(|g| g.stuck_bytes()).sum(),
            live_groups: self.groups.len(),
            live_uarrays: self.placements.len(),
            virtual_reserved_bytes: self.vspace.reserved_bytes(),
            virtual_utilization_percent: self.vspace.utilization_percent(),
            reclaimed_bytes: self.total_reclaimed
                + self.groups.values().map(|g| g.reclaimed_bytes()).sum::<u64>(),
        }
    }

    /// Which uGroup a live uArray currently belongs to.
    pub fn group_of(&self, id: UArrayId) -> Option<UGroupId> {
        self.placements.get(&id).map(|p| p.group)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seal(alloc: &mut Allocator, id: UArrayId, bytes: u64) {
        alloc.update(id, UArrayState::Produced, bytes);
    }

    fn retire(alloc: &mut Allocator, id: UArrayId, bytes: u64) {
        alloc.update(id, UArrayState::Retired, bytes);
    }

    #[test]
    fn consumed_after_chain_shares_group() {
        let mut a = Allocator::hint_guided();
        let g1 = a.place(UArrayId(1), 0, None);
        seal(&mut a, UArrayId(1), 4096);
        let g2 = a.place(UArrayId(2), 0, Some(ConsumptionHint::ConsumedAfter(UArrayId(1))));
        assert_eq!(g1, g2, "consumed-after outputs should share the predecessor's group");
        seal(&mut a, UArrayId(2), 4096);
        let g3 = a.place(UArrayId(3), 0, Some(ConsumptionHint::ConsumedAfter(UArrayId(2))));
        assert_eq!(g2, g3);
        assert_eq!(a.report().live_groups, 1);
    }

    #[test]
    fn consumed_after_opens_new_group_when_predecessor_not_at_tail() {
        let mut a = Allocator::hint_guided();
        let g1 = a.place(UArrayId(1), 0, None);
        seal(&mut a, UArrayId(1), 4096);
        // Another unrelated uArray lands behind 1 in the same group via a
        // consumed-after hint, putting 1 away from the tail.
        let _ = a.place(UArrayId(2), 0, Some(ConsumptionHint::ConsumedAfter(UArrayId(1))));
        seal(&mut a, UArrayId(2), 4096);
        // A new uArray hinted after 1 cannot append behind 1 anymore, but the
        // chain walk finds 1's group tail unusable and... walks to 1's parent
        // (none), so a new group is opened.
        let g3 = a.place(UArrayId(3), 0, Some(ConsumptionHint::ConsumedAfter(UArrayId(1))));
        assert_ne!(g3, g1);
    }

    #[test]
    fn consumed_after_walks_back_the_chain() {
        let mut a = Allocator::hint_guided();
        // Chain 1 <= 2 <= 3, but 2 is still open when 3 is placed; the walk
        // falls back to 1 which is produced and at the tail of its group...
        let g1 = a.place(UArrayId(1), 0, None);
        seal(&mut a, UArrayId(1), 4096);
        let g2 = a.place(UArrayId(2), 0, Some(ConsumptionHint::ConsumedAfter(UArrayId(1))));
        assert_eq!(g1, g2);
        // 2 is open (no seal). 3 hinted after 2: tail of g1 is 2 and open, so
        // the walk cannot use it, and 1 is not at the tail; a new group opens.
        let g3 = a.place(UArrayId(3), 0, Some(ConsumptionHint::ConsumedAfter(UArrayId(2))));
        assert_ne!(g3, g1);
    }

    #[test]
    fn parallel_hint_isolates_siblings() {
        let mut a = Allocator::hint_guided();
        let g1 =
            a.place(UArrayId(1), 7, Some(ConsumptionHint::ConsumedInParallel { k: 3, index: 0 }));
        let g2 =
            a.place(UArrayId(2), 7, Some(ConsumptionHint::ConsumedInParallel { k: 3, index: 1 }));
        let g3 =
            a.place(UArrayId(3), 7, Some(ConsumptionHint::ConsumedInParallel { k: 3, index: 2 }));
        assert_ne!(g1, g2);
        assert_ne!(g2, g3);
        assert_eq!(a.report().live_groups, 3);
    }

    #[test]
    fn same_producer_policy_groups_by_producer() {
        let mut a = Allocator::same_producer_baseline();
        let g1 = a.place(UArrayId(1), 42, None);
        seal(&mut a, UArrayId(1), 4096);
        let g2 = a.place(UArrayId(2), 42, None);
        seal(&mut a, UArrayId(2), 4096);
        let g3 = a.place(UArrayId(3), 99, None);
        assert_eq!(g1, g2);
        assert_ne!(g1, g3);
    }

    #[test]
    fn same_producer_policy_can_strand_memory() {
        // The baseline policy's weakness (Figure 10): a straggling consumer
        // of an early output blocks reclamation of later, already-consumed
        // outputs in the same group.
        let mut a = Allocator::same_producer_baseline();
        a.place(UArrayId(1), 1, None);
        seal(&mut a, UArrayId(1), 4096);
        a.place(UArrayId(2), 1, None);
        seal(&mut a, UArrayId(2), 4096);
        a.place(UArrayId(3), 1, None);
        seal(&mut a, UArrayId(3), 4096);
        // 2 and 3 retire, 1 is still being consumed.
        retire(&mut a, UArrayId(2), 4096);
        retire(&mut a, UArrayId(3), 4096);
        assert!(a.reclaim().is_empty());
        assert_eq!(a.report().stuck_bytes, 8192);
        assert_eq!(a.report().committed_bytes, 3 * 4096);

        // The hint-guided allocator with parallel hints would have isolated
        // them; show reclamation works there.
        let mut b = Allocator::hint_guided();
        b.place(UArrayId(1), 1, Some(ConsumptionHint::ConsumedInParallel { k: 3, index: 0 }));
        seal(&mut b, UArrayId(1), 4096);
        b.place(UArrayId(2), 1, Some(ConsumptionHint::ConsumedInParallel { k: 3, index: 1 }));
        seal(&mut b, UArrayId(2), 4096);
        b.place(UArrayId(3), 1, Some(ConsumptionHint::ConsumedInParallel { k: 3, index: 2 }));
        seal(&mut b, UArrayId(3), 4096);
        retire(&mut b, UArrayId(2), 4096);
        retire(&mut b, UArrayId(3), 4096);
        let reclaimed = b.reclaim();
        assert_eq!(reclaimed.len(), 2);
        assert_eq!(b.report().committed_bytes, 4096);
    }

    #[test]
    fn reclaim_dissolves_empty_groups_and_releases_vspace() {
        let mut a = Allocator::hint_guided();
        a.place(UArrayId(1), 0, None);
        seal(&mut a, UArrayId(1), 4096);
        assert_eq!(a.report().live_groups, 1);
        assert!(a.report().virtual_reserved_bytes > 0);
        retire(&mut a, UArrayId(1), 4096);
        let reclaimed = a.reclaim();
        assert_eq!(reclaimed, vec![UArrayId(1)]);
        let r = a.report();
        assert_eq!(r.live_groups, 0);
        assert_eq!(r.live_uarrays, 0);
        assert_eq!(r.virtual_reserved_bytes, 0);
        assert_eq!(r.reclaimed_bytes, 4096);
        assert_eq!(a.group_of(UArrayId(1)), None);
    }

    #[test]
    fn peak_committed_tracks_high_water() {
        let mut a = Allocator::hint_guided();
        a.place(UArrayId(1), 0, None);
        a.update(UArrayId(1), UArrayState::Open, 8192);
        seal(&mut a, UArrayId(1), 8192);
        retire(&mut a, UArrayId(1), 8192);
        a.reclaim();
        assert_eq!(a.committed_bytes(), 0);
        assert_eq!(a.peak_committed_bytes(), 8192);
    }

    #[test]
    fn owner_quotas_gate_charges_and_release_on_reclaim() {
        let mut a = Allocator::hint_guided();
        a.set_owner_quota(1, 8192);
        // Two 4 KiB arrays fill the quota; a third is rejected.
        a.place(UArrayId(1), 0, None);
        seal(&mut a, UArrayId(1), 4096);
        a.charge_owner(1, UArrayId(1), 4096).unwrap();
        a.place(UArrayId(2), 0, None);
        seal(&mut a, UArrayId(2), 4096);
        a.charge_owner(1, UArrayId(2), 4096).unwrap();
        assert_eq!(a.owner_used(1), 8192);
        assert!(a.owner_would_exceed(1, 1));
        assert!(a.charge_owner(1, UArrayId(3), 4096).is_err());
        // A different owner is unaffected.
        assert!(!a.owner_would_exceed(2, 1 << 30));
        // Retiring and reclaiming releases the owner's usage.
        retire(&mut a, UArrayId(1), 4096);
        retire(&mut a, UArrayId(2), 4096);
        let reclaimed = a.reclaim();
        assert_eq!(reclaimed.len(), 2);
        assert_eq!(a.owner_used(1), 0);
        assert_eq!(a.owner_quota(1), Some(8192));
        a.clear_owner_quota(1);
        assert_eq!(a.owner_quota(1), None);
    }

    #[test]
    fn release_owner_frees_everything_in_one_pass() {
        let mut a = Allocator::hint_guided();
        a.set_owner_quota(1, 1 << 20);
        a.set_owner_quota(2, 1 << 20);
        // Owner 1: one live array, one retired-but-stuck behind it (same
        // group via consumed-after), plus one in its own group. Owner 2: one
        // array that must survive untouched.
        a.place(UArrayId(1), 0, None);
        seal(&mut a, UArrayId(1), 4096);
        a.charge_owner(1, UArrayId(1), 4096).unwrap();
        let g_shared = a.place(UArrayId(2), 0, Some(ConsumptionHint::ConsumedAfter(UArrayId(1))));
        seal(&mut a, UArrayId(2), 4096);
        a.charge_owner(1, UArrayId(2), 4096).unwrap();
        retire(&mut a, UArrayId(2), 4096); // stuck behind live 1
        a.place(UArrayId(3), 9, None);
        seal(&mut a, UArrayId(3), 8192);
        a.charge_owner(1, UArrayId(3), 8192).unwrap();
        let g_other = a.place(UArrayId(4), 9, None);
        seal(&mut a, UArrayId(4), 4096);
        a.charge_owner(2, UArrayId(4), 4096).unwrap();
        assert_ne!(g_shared, g_other);
        assert_eq!(a.owner_used(1), 16384);

        let torn = a.release_owner(1);
        assert_eq!(torn.reclaimed_bytes, 16384);
        let mut ids: Vec<UArrayId> = torn.arrays.iter().map(|(id, _)| *id).collect();
        ids.sort();
        assert_eq!(ids, vec![UArrayId(1), UArrayId(2), UArrayId(3)]);
        assert_eq!(a.owner_used(1), 0);
        // Owner 2's array is untouched; its group survives.
        assert_eq!(a.owner_used(2), 4096);
        assert_eq!(a.group_of(UArrayId(4)), Some(g_other));
        assert_eq!(a.group_of(UArrayId(1)), None);
        let r = a.report();
        assert_eq!(r.committed_bytes, 4096);
        assert_eq!(r.live_uarrays, 1);
        assert!(r.reclaimed_bytes >= 16384);
        // A second teardown is a no-op.
        assert_eq!(a.release_owner(1).reclaimed_bytes, 0);
    }

    #[test]
    fn report_counts_live_uarrays() {
        let mut a = Allocator::hint_guided();
        a.place(UArrayId(1), 0, None);
        a.place(UArrayId(2), 0, None);
        assert_eq!(a.report().live_uarrays, 2);
        assert_eq!(a.report().live_groups, 2);
    }
}
