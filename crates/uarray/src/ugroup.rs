//! uGroups: physical co-location of uArrays for consecutive reclamation
//! (§6.2, Figure 5).
//!
//! A uGroup spans one (large) virtual reservation and holds a sequence of
//! uArrays: zero or more `retired`/`produced` uArrays followed by at most
//! one `open` uArray at its end. The allocator reclaims memory by scanning
//! from the *front* of the group and releasing uArrays while they are
//! retired — so placement order must match future consumption order, which
//! is exactly what the consumption hints communicate.
//!
//! The grouping is purely a placement/reclamation concern: trusted
//! primitives and the control plane never observe it.

use crate::uarray::{UArrayId, UArrayState};

/// Identifier of a uGroup within one allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct UGroupId(pub u64);

/// Per-member bookkeeping the group needs for reclamation decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemberInfo {
    /// The member uArray.
    pub id: UArrayId,
    /// Last state reported for the member.
    pub state: UArrayState,
    /// Bytes of secure memory committed for the member.
    pub committed_bytes: u64,
}

/// A uGroup: an ordered sequence of uArrays sharing one virtual reservation.
#[derive(Debug)]
pub struct UGroup {
    id: UGroupId,
    /// Base virtual address of the group's reservation (for reporting).
    base_addr: u64,
    /// Members in placement order. The reclaim frontier is index 0; members
    /// are removed from the front as they are reclaimed.
    members: Vec<MemberInfo>,
    /// Total bytes reclaimed from this group so far.
    reclaimed_bytes: u64,
}

impl UGroup {
    /// Create an empty group over the reservation starting at `base_addr`.
    pub fn new(id: UGroupId, base_addr: u64) -> Self {
        UGroup { id, base_addr, members: Vec::new(), reclaimed_bytes: 0 }
    }

    /// The group's identifier.
    pub fn id(&self) -> UGroupId {
        self.id
    }

    /// Base virtual address of the group's reservation.
    pub fn base_addr(&self) -> u64 {
        self.base_addr
    }

    /// Number of live (not yet reclaimed) members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the group has no live members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Ids of live members in placement order.
    pub fn member_ids(&self) -> impl Iterator<Item = UArrayId> + '_ {
        self.members.iter().map(|m| m.id)
    }

    /// The last member of the group, if any.
    pub fn tail(&self) -> Option<&MemberInfo> {
        self.members.last()
    }

    /// Whether a new uArray may be appended: the group must not end in an
    /// `Open` uArray (a group has at most one open uArray, at its end).
    pub fn can_append(&self) -> bool {
        self.members.last().map(|m| m.state != UArrayState::Open).unwrap_or(true)
    }

    /// Append a new (open) member to the end of the group.
    pub fn append(&mut self, id: UArrayId) {
        debug_assert!(self.can_append(), "appending to a group whose tail is still open");
        self.members.push(MemberInfo { id, state: UArrayState::Open, committed_bytes: 0 });
    }

    /// Record a state/commit update for a member. Unknown members are
    /// ignored (they may already have been reclaimed).
    pub fn update_member(&mut self, id: UArrayId, state: UArrayState, committed_bytes: u64) {
        if let Some(m) = self.members.iter_mut().find(|m| m.id == id) {
            m.state = state;
            m.committed_bytes = committed_bytes;
        }
    }

    /// Whether the member at the reclaim frontier is retired.
    pub fn front_is_retired(&self) -> bool {
        self.members.first().map(|m| m.state == UArrayState::Retired).unwrap_or(false)
    }

    /// Pop reclaimable members from the front of the group: members are
    /// reclaimed strictly in placement order, stopping at the first member
    /// that is not retired. Returns the reclaimed ids.
    pub fn take_reclaimable(&mut self) -> Vec<UArrayId> {
        let mut out = Vec::new();
        while self.front_is_retired() {
            let m = self.members.remove(0);
            self.reclaimed_bytes += m.committed_bytes;
            out.push(m.id);
        }
        out
    }

    /// Forcibly remove a member from anywhere in the group (owner teardown:
    /// the member's storage is being released regardless of its position or
    /// state). Returns the member's committed bytes, which count as
    /// reclaimed. Unlike [`take_reclaimable`](UGroup::take_reclaimable) this
    /// does not respect the front-of-group frontier — eviction frees a
    /// tenant's memory wherever it sits.
    pub fn remove_member(&mut self, id: UArrayId) -> Option<u64> {
        let pos = self.members.iter().position(|m| m.id == id)?;
        let m = self.members.remove(pos);
        self.reclaimed_bytes += m.committed_bytes;
        Some(m.committed_bytes)
    }

    /// Bytes committed by live members of this group.
    pub fn committed_bytes(&self) -> u64 {
        self.members.iter().map(|m| m.committed_bytes).sum()
    }

    /// Bytes committed by members that are retired but cannot yet be
    /// reclaimed because an earlier member is still live — the memory the
    /// hint-guided placement exists to minimize (Figure 10).
    pub fn stuck_bytes(&self) -> u64 {
        // Find the first non-retired member; everything after it that is
        // retired is stuck.
        let mut seen_live = false;
        let mut stuck = 0;
        for m in &self.members {
            if m.state != UArrayState::Retired {
                seen_live = true;
            } else if seen_live {
                stuck += m.committed_bytes;
            }
        }
        stuck
    }

    /// Total bytes reclaimed from this group over its lifetime.
    pub fn reclaimed_bytes(&self) -> u64 {
        self.reclaimed_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group() -> UGroup {
        UGroup::new(UGroupId(1), 0x1000)
    }

    #[test]
    fn append_and_reclaim_in_order() {
        let mut g = group();
        g.append(UArrayId(1));
        g.update_member(UArrayId(1), UArrayState::Produced, 4096);
        g.append(UArrayId(2));
        g.update_member(UArrayId(2), UArrayState::Produced, 4096);
        assert_eq!(g.len(), 2);

        // Retiring the second member first does not allow reclamation (the
        // frontier is the first member).
        g.update_member(UArrayId(2), UArrayState::Retired, 4096);
        assert!(g.take_reclaimable().is_empty());
        assert_eq!(g.stuck_bytes(), 4096);

        // Retiring the first member reclaims both, in order.
        g.update_member(UArrayId(1), UArrayState::Retired, 4096);
        assert_eq!(g.take_reclaimable(), vec![UArrayId(1), UArrayId(2)]);
        assert!(g.is_empty());
        assert_eq!(g.reclaimed_bytes(), 8192);
        assert_eq!(g.stuck_bytes(), 0);
    }

    #[test]
    fn can_append_only_when_tail_not_open() {
        let mut g = group();
        assert!(g.can_append());
        g.append(UArrayId(1));
        assert!(!g.can_append());
        g.update_member(UArrayId(1), UArrayState::Produced, 0);
        assert!(g.can_append());
    }

    #[test]
    fn committed_bytes_sum_live_members() {
        let mut g = group();
        g.append(UArrayId(1));
        g.update_member(UArrayId(1), UArrayState::Produced, 1000);
        g.append(UArrayId(2));
        g.update_member(UArrayId(2), UArrayState::Open, 500);
        assert_eq!(g.committed_bytes(), 1500);
    }

    #[test]
    fn unknown_member_updates_are_ignored() {
        let mut g = group();
        g.append(UArrayId(1));
        g.update_member(UArrayId(99), UArrayState::Retired, 123);
        assert_eq!(g.committed_bytes(), 0);
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn stuck_bytes_only_counts_blocked_retirees() {
        let mut g = group();
        for i in 1..=4 {
            g.append(UArrayId(i));
            g.update_member(UArrayId(i), UArrayState::Produced, 100);
        }
        // Retire members 3 and 4; member 1 and 2 still produced -> 3,4 stuck.
        g.update_member(UArrayId(3), UArrayState::Retired, 100);
        g.update_member(UArrayId(4), UArrayState::Retired, 100);
        assert_eq!(g.stuck_bytes(), 200);
        // Retire member 1: it is at the frontier, so it is *not* stuck.
        g.update_member(UArrayId(1), UArrayState::Retired, 100);
        assert_eq!(g.stuck_bytes(), 200);
        assert_eq!(g.take_reclaimable(), vec![UArrayId(1)]);
    }

    #[test]
    fn remove_member_frees_from_anywhere() {
        let mut g = group();
        for i in 1..=3 {
            g.append(UArrayId(i));
            g.update_member(UArrayId(i), UArrayState::Produced, 100 * i);
        }
        // Remove the middle member, live, not at the frontier.
        assert_eq!(g.remove_member(UArrayId(2)), Some(200));
        assert_eq!(g.member_ids().collect::<Vec<_>>(), vec![UArrayId(1), UArrayId(3)]);
        assert_eq!(g.reclaimed_bytes(), 200);
        assert_eq!(g.committed_bytes(), 400);
        assert_eq!(g.remove_member(UArrayId(2)), None, "already gone");
    }

    #[test]
    fn tail_and_member_ids() {
        let mut g = group();
        g.append(UArrayId(5));
        g.update_member(UArrayId(5), UArrayState::Produced, 0);
        g.append(UArrayId(6));
        assert_eq!(g.tail().unwrap().id, UArrayId(6));
        assert_eq!(g.member_ids().collect::<Vec<_>>(), vec![UArrayId(5), UArrayId(6)]);
        assert_eq!(g.base_addr(), 0x1000);
        assert_eq!(g.id(), UGroupId(1));
    }
}
