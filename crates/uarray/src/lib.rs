//! TEE memory management for StreamBox-TZ (§6 of the paper).
//!
//! High-velocity streams inside a TEE rule out the usual engine design of
//! many small heap objects indexed by hash tables and served by a generic
//! allocator. StreamBox-TZ instead builds its data plane around:
//!
//! * **uArrays** — contiguous, virtually unbounded, append-only buffers for
//!   same-type records. A uArray is `Open` while its producer appends,
//!   `Produced` once finalized, and `Retired` when its consumer is done and
//!   its memory may be reclaimed. Growth never relocates: each uArray
//!   reserves a large virtual range up front and commits physical pages on
//!   demand inside the TEE.
//! * **uGroups** — the allocator co-locates uArrays that will be consumed
//!   consecutively into a uGroup and reclaims from the front of the group,
//!   which keeps the physical layout compact with trivial bookkeeping.
//! * **Consumption hints** — the untrusted control plane may annotate
//!   invocations with *consumed-after* and *consumed-in-parallel* hints;
//!   the allocator uses them to choose uGroup placement. Hints are
//!   untrusted: they only influence placement (never integrity), and
//!   misleading hints at worst waste memory / delay results (§6.2).
//! * **A TEE pager** — pages are committed against the secure-memory budget
//!   (`sbt-tz`), charging the TEE paging cost, which is much cheaper than a
//!   round trip through a commodity OS (validated by Figure 11).
//!
//! The crate is generic over record types; the data plane instantiates it
//! for events and intermediate record layouts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allocator;
pub mod disjoint;
pub mod hints;
pub mod pager;
pub mod quota;
pub mod uarray;
pub mod ugroup;
pub mod vspace;

pub use allocator::{Allocator, AllocatorConfig, MemoryReport, OwnerTeardown, PlacementPolicy};
pub use disjoint::DisjointWriter;
pub use hints::{ConsumptionHint, HintSet};
pub use pager::{PageError, TeePager, PAGE_SIZE};
pub use quota::{QuotaBook, QuotaError};
pub use uarray::{UArray, UArrayId, UArrayState};
pub use ugroup::{UGroup, UGroupId};
pub use vspace::VirtualSpace;
