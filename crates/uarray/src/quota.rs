//! Per-owner (tenant) memory quotas over the uArray allocator.
//!
//! The multi-tenant server admits many pipelines onto one TEE; the secure
//! carve-out they share is partitioned by *quotas* so one tenant filling its
//! budget cannot starve the others. The quota book charges every uArray's
//! committed bytes against the owner tag it was registered under and rejects
//! charges that would push an owner past its quota. Owners without an entry
//! are unconstrained (single-tenant deployments never touch this).

use crate::uarray::UArrayId;
use std::collections::HashMap;

/// Error returned when a charge would exceed an owner's quota.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuotaError {
    /// The owner tag that hit its quota.
    pub owner: u64,
    /// Bytes the charge requested.
    pub requested: u64,
    /// Bytes the owner had in use before the charge.
    pub in_use: u64,
    /// The owner's quota in bytes.
    pub quota: u64,
}

impl std::fmt::Display for QuotaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "owner {} quota exhausted: requested {} B with {} B in use of {} B quota",
            self.owner, self.requested, self.in_use, self.quota
        )
    }
}

impl std::error::Error for QuotaError {}

/// Per-owner usage bookkeeping and quota enforcement.
#[derive(Debug, Default)]
pub struct QuotaBook {
    /// Owner tag -> quota in bytes. Absent owners are unconstrained.
    quotas: HashMap<u64, u64>,
    /// Owner tag -> bytes currently charged.
    used: HashMap<u64, u64>,
    /// uArray -> (owner, bytes charged), so reclamation can release.
    charges: HashMap<UArrayId, (u64, u64)>,
}

impl QuotaBook {
    /// Create an empty book.
    pub fn new() -> Self {
        QuotaBook::default()
    }

    /// Install (or replace) an owner's quota.
    pub fn set_quota(&mut self, owner: u64, bytes: u64) {
        self.quotas.insert(owner, bytes);
    }

    /// Remove an owner's quota (it becomes unconstrained again).
    pub fn clear_quota(&mut self, owner: u64) {
        self.quotas.remove(&owner);
    }

    /// The owner's quota, if one is installed.
    pub fn quota_of(&self, owner: u64) -> Option<u64> {
        self.quotas.get(&owner).copied()
    }

    /// Bytes currently charged to an owner.
    pub fn used_by(&self, owner: u64) -> u64 {
        self.used.get(&owner).copied().unwrap_or(0)
    }

    /// Whether charging `bytes` more would exceed the owner's quota.
    pub fn would_exceed(&self, owner: u64, bytes: u64) -> bool {
        match self.quota_of(owner) {
            Some(quota) => self.used_by(owner).saturating_add(bytes) > quota,
            None => false,
        }
    }

    /// Charge `bytes` for a uArray to an owner; fails without charging if the
    /// owner's quota would be exceeded.
    pub fn charge(&mut self, owner: u64, id: UArrayId, bytes: u64) -> Result<(), QuotaError> {
        let in_use = self.used_by(owner);
        if let Some(quota) = self.quota_of(owner) {
            if in_use.saturating_add(bytes) > quota {
                return Err(QuotaError { owner, requested: bytes, in_use, quota });
            }
        }
        *self.used.entry(owner).or_insert(0) += bytes;
        self.charges.insert(id, (owner, bytes));
        Ok(())
    }

    /// Release the charge recorded for a uArray (on reclamation). Unknown
    /// ids are a no-op: uArrays predating quota tracking carry no charge.
    pub fn release(&mut self, id: UArrayId) {
        if let Some((owner, bytes)) = self.charges.remove(&id) {
            if let Some(used) = self.used.get_mut(&owner) {
                *used = used.saturating_sub(bytes);
            }
        }
    }

    /// The owner a uArray was charged to, if any.
    pub fn owner_of(&self, id: UArrayId) -> Option<u64> {
        self.charges.get(&id).map(|(owner, _)| *owner)
    }

    /// Every uArray currently charged to an owner, with its charged bytes.
    /// The order is unspecified (teardown frees them all in one pass).
    pub fn charged_to(&self, owner: u64) -> Vec<(UArrayId, u64)> {
        self.charges
            .iter()
            .filter(|(_, (o, _))| *o == owner)
            .map(|(id, (_, bytes))| (*id, *bytes))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_and_release() {
        let mut q = QuotaBook::new();
        q.set_quota(1, 1000);
        q.charge(1, UArrayId(10), 400).unwrap();
        q.charge(1, UArrayId(11), 500).unwrap();
        assert_eq!(q.used_by(1), 900);
        q.release(UArrayId(10));
        assert_eq!(q.used_by(1), 500);
        assert_eq!(q.owner_of(UArrayId(11)), Some(1));
        assert_eq!(q.owner_of(UArrayId(10)), None);
    }

    #[test]
    fn exceeding_the_quota_fails_without_charging() {
        let mut q = QuotaBook::new();
        q.set_quota(2, 100);
        q.charge(2, UArrayId(1), 80).unwrap();
        let err = q.charge(2, UArrayId(2), 30).unwrap_err();
        assert_eq!(err, QuotaError { owner: 2, requested: 30, in_use: 80, quota: 100 });
        assert_eq!(q.used_by(2), 80);
        assert!(q.would_exceed(2, 21));
        assert!(!q.would_exceed(2, 20));
    }

    #[test]
    fn unconstrained_owners_always_fit() {
        let mut q = QuotaBook::new();
        assert!(!q.would_exceed(9, u64::MAX));
        q.charge(9, UArrayId(1), u64::MAX / 2).unwrap();
        assert_eq!(q.quota_of(9), None);
        q.set_quota(9, 10);
        q.clear_quota(9);
        assert!(!q.would_exceed(9, 1 << 40));
    }

    #[test]
    fn quotas_are_per_owner() {
        let mut q = QuotaBook::new();
        q.set_quota(1, 100);
        q.set_quota(2, 100);
        q.charge(1, UArrayId(1), 100).unwrap();
        // Owner 1 is full; owner 2 is unaffected.
        assert!(q.charge(1, UArrayId(2), 1).is_err());
        q.charge(2, UArrayId(3), 100).unwrap();
        assert_eq!(q.used_by(2), 100);
    }

    #[test]
    fn charged_to_lists_only_the_owners_arrays() {
        let mut q = QuotaBook::new();
        q.charge(1, UArrayId(10), 100).unwrap();
        q.charge(1, UArrayId(11), 200).unwrap();
        q.charge(2, UArrayId(12), 300).unwrap();
        let mut mine = q.charged_to(1);
        mine.sort_by_key(|(id, _)| *id);
        assert_eq!(mine, vec![(UArrayId(10), 100), (UArrayId(11), 200)]);
        assert!(q.charged_to(9).is_empty());
    }

    #[test]
    fn error_display_names_the_owner() {
        let e = QuotaError { owner: 5, requested: 1, in_use: 2, quota: 3 };
        assert!(e.to_string().contains("owner 5"));
    }
}
