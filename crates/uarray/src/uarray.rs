//! The uArray abstraction (§6.1).
//!
//! A uArray is a contiguous, append-only buffer of same-type records with a
//! producer/consumer lifecycle: **Open** (producer appends), **Produced**
//! (finalized, read-only), **Retired** (consumed, memory reclaimable).
//! Growth is backed by on-demand paging fully inside the TEE and never
//! relocates data: the buffer reserves its maximum virtual extent when it is
//! created and only commits physical pages as the append index advances.
//!
//! In this reproduction, the virtual reservation is a `Vec` capacity
//! reservation (the host OS commits pages lazily, just as the TEE pager
//! does), and the page commits are charged to the platform's secure-memory
//! budget through [`TeePager`].

use crate::pager::{PageError, TeePager, PAGE_SIZE};

/// Identifier of a uArray, unique within one data plane.
///
/// The data plane mints monotonically increasing identifiers for audit
/// records (§7); opaque references handed to the control plane are a
/// *separate*, randomized namespace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct UArrayId(pub u64);

impl UArrayId {
    /// The next id in sequence.
    pub fn next(self) -> UArrayId {
        UArrayId(self.0 + 1)
    }
}

/// Lifecycle state of a uArray.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UArrayState {
    /// Being appended to by its producer primitive.
    Open,
    /// Production finished; read-only.
    Produced,
    /// Consumed; memory is subject to reclamation.
    Retired,
}

/// Error returned on operations that violate the uArray lifecycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UArrayError {
    /// Appending to a uArray that is not `Open`.
    NotOpen(UArrayState),
    /// The TEE pager could not commit more secure memory.
    OutOfSecureMemory(PageError),
}

impl std::fmt::Display for UArrayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UArrayError::NotOpen(s) => write!(f, "uArray is not open (state {s:?})"),
            UArrayError::OutOfSecureMemory(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for UArrayError {}

/// A contiguous, virtually unbounded, append-only buffer of `T` records.
#[derive(Debug)]
pub struct UArray<T> {
    id: UArrayId,
    data: Vec<T>,
    state: UArrayState,
    /// Bytes of secure memory committed for this uArray (page-rounded).
    committed_bytes: u64,
    /// Simulated nanoseconds spent committing pages for this uArray.
    paging_nanos: u64,
}

impl<T: Copy> UArray<T> {
    /// Create an open uArray with an initial virtual reservation of
    /// `reserve_items` records. Appending beyond the reservation extends it
    /// (still without relocating committed data in the modelled TEE; the
    /// reproduction's `Vec` may relocate in that rare case, which only makes
    /// our measured numbers *pessimistic* for uArray).
    pub fn with_reservation(id: UArrayId, reserve_items: usize) -> Self {
        UArray {
            id,
            data: Vec::with_capacity(reserve_items),
            state: UArrayState::Open,
            committed_bytes: 0,
            paging_nanos: 0,
        }
    }

    /// Create a sealed uArray of at most `items` records whose contents are
    /// streamed straight into the reserved destination by `fill` — the
    /// zero-copy ingest path.
    ///
    /// Pages for the whole extent are committed **before** any record is
    /// written, so a secure-memory failure is all-or-nothing: the error
    /// returns with no pages charged and no partially populated array ever
    /// existing. (The incremental [`append`]/[`extend_from_slice`] path, by
    /// contrast, keeps the committed prefix — right for producers whose
    /// output size is unknown, wrong for ingest, where the batch size is
    /// known up front and a half-ingested batch must not survive.)
    ///
    /// `fill` appends into a buffer pre-reserved for `items` records; the
    /// reservation guarantees no reallocation, so the records land in their
    /// final location. Should `fill` produce more than `items` records, the
    /// surplus is dropped to keep the page accounting truthful.
    ///
    /// [`append`]: UArray::append
    /// [`extend_from_slice`]: UArray::extend_from_slice
    pub fn produce_exact(
        id: UArrayId,
        items: usize,
        pager: &TeePager,
        fill: impl FnOnce(&mut Vec<T>),
    ) -> Result<Self, UArrayError> {
        let needed = (items * std::mem::size_of::<T>()) as u64;
        let committed = needed.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        let paging_nanos =
            pager.commit_pages(committed / PAGE_SIZE).map_err(UArrayError::OutOfSecureMemory)?;
        let mut data = Vec::with_capacity(items);
        fill(&mut data);
        data.truncate(items);
        Ok(UArray {
            id,
            data,
            state: UArrayState::Produced,
            committed_bytes: committed,
            paging_nanos,
        })
    }

    /// The uArray's identifier.
    pub fn id(&self) -> UArrayId {
        self.id
    }

    /// Current lifecycle state.
    pub fn state(&self) -> UArrayState {
        self.state
    }

    /// Number of records appended so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the uArray holds no records.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Bytes of secure memory committed on behalf of this uArray.
    pub fn committed_bytes(&self) -> u64 {
        self.committed_bytes
    }

    /// Simulated nanoseconds this uArray spent in the TEE pager.
    pub fn paging_nanos(&self) -> u64 {
        self.paging_nanos
    }

    /// Read-only view of the records. Valid in every state (consumers read
    /// `Produced` uArrays; tests may inspect `Open` ones).
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Append one record. Fails if the uArray is not `Open` or secure memory
    /// is exhausted.
    #[inline]
    pub fn append(&mut self, item: T, pager: &TeePager) -> Result<(), UArrayError> {
        if self.state != UArrayState::Open {
            return Err(UArrayError::NotOpen(self.state));
        }
        self.data.push(item);
        self.commit_to_len(pager)
    }

    /// Append a slice of records in one go (the common case for primitives
    /// producing output in bulk).
    pub fn extend_from_slice(&mut self, items: &[T], pager: &TeePager) -> Result<(), UArrayError> {
        if self.state != UArrayState::Open {
            return Err(UArrayError::NotOpen(self.state));
        }
        self.data.extend_from_slice(items);
        self.commit_to_len(pager)
    }

    /// Commit pages so that `committed_bytes` covers the current length.
    #[inline]
    fn commit_to_len(&mut self, pager: &TeePager) -> Result<(), UArrayError> {
        let needed = (self.data.len() * std::mem::size_of::<T>()) as u64;
        if needed > self.committed_bytes {
            let new_committed = needed.div_ceil(PAGE_SIZE) * PAGE_SIZE;
            let pages = (new_committed - self.committed_bytes) / PAGE_SIZE;
            match pager.commit_pages(pages) {
                Ok(nanos) => {
                    self.committed_bytes = new_committed;
                    self.paging_nanos += nanos;
                }
                Err(e) => {
                    // Roll back the uncommitted tail so accounting stays
                    // consistent with the data actually backed by pages.
                    let max_items =
                        (self.committed_bytes as usize) / std::mem::size_of::<T>().max(1);
                    self.data.truncate(max_items);
                    return Err(UArrayError::OutOfSecureMemory(e));
                }
            }
        }
        Ok(())
    }

    /// Finalize production: the uArray becomes read-only.
    pub fn seal(&mut self) {
        if self.state == UArrayState::Open {
            self.state = UArrayState::Produced;
        }
    }

    /// Mark the uArray as consumed. The records stay readable until the
    /// allocator actually reclaims the backing memory (reclamation is a
    /// uGroup-level decision).
    pub fn retire(&mut self) {
        self.state = UArrayState::Retired;
    }

    /// Drop the record storage and release the committed pages back to the
    /// pager. Called by the allocator when the uArray is reclaimed.
    pub fn reclaim(&mut self, pager: &TeePager) -> u64 {
        let released = self.committed_bytes;
        pager.release_pages(released / PAGE_SIZE);
        self.committed_bytes = 0;
        self.data = Vec::new();
        released
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbt_tz::{CostModel, SecureMemory, TzStats};
    use std::sync::Arc;

    fn pager(budget: u64) -> TeePager {
        TeePager::new(
            Arc::new(SecureMemory::new(budget, 80)),
            Arc::new(TzStats::new()),
            CostModel::hikey(),
        )
    }

    #[test]
    fn append_and_read_back() {
        let p = pager(1 << 20);
        let mut a: UArray<u32> = UArray::with_reservation(UArrayId(1), 16);
        for i in 0..100u32 {
            a.append(i, &p).unwrap();
        }
        assert_eq!(a.len(), 100);
        assert_eq!(a.as_slice()[42], 42);
        assert!(!a.is_empty());
        assert_eq!(a.id(), UArrayId(1));
    }

    #[test]
    fn produce_exact_commits_full_extent_and_seals() {
        let p = pager(1 << 20);
        let a: UArray<u32> = UArray::produce_exact(UArrayId(9), 2000, &p, |dst| {
            dst.extend(0..2000u32);
        })
        .unwrap();
        assert_eq!(a.len(), 2000);
        assert_eq!(a.as_slice()[1234], 1234);
        assert_eq!(a.state(), UArrayState::Produced);
        // 2000 * 4 bytes = 8000 bytes -> two pages, charged up front.
        assert_eq!(a.committed_bytes(), 2 * PAGE_SIZE);
        assert_eq!(p.committed_bytes(), 2 * PAGE_SIZE);
        assert!(a.paging_nanos() > 0);
    }

    #[test]
    fn produce_exact_truncates_overproduction() {
        let p = pager(1 << 20);
        let a: UArray<u32> = UArray::produce_exact(UArrayId(9), 4, &p, |dst| {
            dst.extend(0..100u32);
        })
        .unwrap();
        assert_eq!(a.len(), 4);
        assert_eq!(a.committed_bytes(), PAGE_SIZE);
    }

    #[test]
    fn produce_exact_oom_leaks_nothing() {
        let p = pager(PAGE_SIZE);
        // 2000 u32s need two pages; only one is available. The reservation
        // happens before any record is produced, so the fill closure must
        // never run and the pager accounting must be untouched.
        let ran = std::cell::Cell::new(false);
        let r: Result<UArray<u32>, _> = UArray::produce_exact(UArrayId(3), 2000, &p, |dst| {
            ran.set(true);
            dst.extend(0..2000u32);
        });
        assert!(matches!(r, Err(UArrayError::OutOfSecureMemory(_))));
        assert!(!ran.get());
        assert_eq!(p.committed_bytes(), 0);
    }

    #[test]
    fn produce_exact_empty_commits_no_pages() {
        let p = pager(1 << 20);
        let a: UArray<u32> = UArray::produce_exact(UArrayId(0), 0, &p, |_| {}).unwrap();
        assert!(a.is_empty());
        assert_eq!(a.committed_bytes(), 0);
        assert_eq!(p.committed_bytes(), 0);
    }

    #[test]
    fn committed_bytes_are_page_rounded_and_charged() {
        let p = pager(1 << 20);
        let mut a: UArray<u64> = UArray::with_reservation(UArrayId(0), 0);
        a.append(1, &p).unwrap();
        assert_eq!(a.committed_bytes(), PAGE_SIZE);
        assert_eq!(p.committed_bytes(), PAGE_SIZE);
        // Fill exactly one page of u64s, still one page.
        let fill: Vec<u64> = (0..(PAGE_SIZE as usize / 8 - 1) as u64).collect();
        a.extend_from_slice(&fill, &p).unwrap();
        assert_eq!(a.committed_bytes(), PAGE_SIZE);
        // One more record spills to the second page.
        a.append(7, &p).unwrap();
        assert_eq!(a.committed_bytes(), 2 * PAGE_SIZE);
        assert_eq!(p.committed_bytes(), 2 * PAGE_SIZE);
    }

    #[test]
    fn lifecycle_enforced() {
        let p = pager(1 << 20);
        let mut a: UArray<u32> = UArray::with_reservation(UArrayId(0), 4);
        a.append(1, &p).unwrap();
        a.seal();
        assert_eq!(a.state(), UArrayState::Produced);
        assert!(matches!(a.append(2, &p), Err(UArrayError::NotOpen(UArrayState::Produced))));
        a.retire();
        assert_eq!(a.state(), UArrayState::Retired);
        assert!(matches!(a.append(2, &p), Err(UArrayError::NotOpen(UArrayState::Retired))));
        // Data still readable until reclamation.
        assert_eq!(a.as_slice(), &[1]);
    }

    #[test]
    fn seal_is_idempotent_and_does_not_unretire() {
        let p = pager(1 << 20);
        let mut a: UArray<u32> = UArray::with_reservation(UArrayId(0), 4);
        a.append(1, &p).unwrap();
        a.retire();
        a.seal();
        assert_eq!(a.state(), UArrayState::Retired);
    }

    #[test]
    fn reclaim_releases_pages() {
        let p = pager(1 << 20);
        let mut a: UArray<u32> = UArray::with_reservation(UArrayId(0), 0);
        let data: Vec<u32> = (0..10_000).collect();
        a.extend_from_slice(&data, &p).unwrap();
        let committed = a.committed_bytes();
        assert!(committed >= 10_000 * 4);
        assert_eq!(p.committed_bytes(), committed);
        a.retire();
        let released = a.reclaim(&p);
        assert_eq!(released, committed);
        assert_eq!(p.committed_bytes(), 0);
        assert_eq!(a.committed_bytes(), 0);
    }

    #[test]
    fn out_of_memory_truncates_to_committed_prefix() {
        // Budget of 2 pages of u32s.
        let p = pager(2 * PAGE_SIZE);
        let mut a: UArray<u32> = UArray::with_reservation(UArrayId(0), 0);
        let data: Vec<u32> = (0..10_000).collect();
        let err = a.extend_from_slice(&data, &p).unwrap_err();
        assert!(matches!(err, UArrayError::OutOfSecureMemory(_)));
        // The visible records fit exactly in the committed pages.
        assert_eq!(a.len() * 4, a.committed_bytes() as usize);
        assert!(a.committed_bytes() <= 2 * PAGE_SIZE);
        // The prefix that survived is intact.
        for (i, v) in a.as_slice().iter().enumerate() {
            assert_eq!(*v, i as u32);
        }
    }

    #[test]
    fn growth_does_not_relocate_within_reservation() {
        let p = pager(1 << 24);
        let mut a: UArray<u32> = UArray::with_reservation(UArrayId(0), 1 << 20);
        a.append(0, &p).unwrap();
        let base = a.as_slice().as_ptr();
        let data: Vec<u32> = (1..100_000).collect();
        a.extend_from_slice(&data, &p).unwrap();
        assert_eq!(a.as_slice().as_ptr(), base, "uArray relocated within its reservation");
    }

    #[test]
    fn paging_nanos_accumulate() {
        let p = pager(1 << 24);
        let mut a: UArray<u64> = UArray::with_reservation(UArrayId(0), 0);
        let data: Vec<u64> = (0..100_000).collect();
        a.extend_from_slice(&data, &p).unwrap();
        assert!(a.paging_nanos() > 0);
    }
}
