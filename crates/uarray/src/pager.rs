//! The TEE pager: on-demand commitment of secure pages.
//!
//! uArrays grow by bumping an index; the physical memory behind the growth
//! is committed page-by-page inside the TEE. The pager charges committed
//! pages against the secure-memory budget (the TZASC carve-out) and records
//! the paging cost in the platform counters, so that memory-management time
//! shows up in the Figure 9 breakdown and memory usage in Figure 7/10.

use sbt_tz::{CostModel, SecureMemory, SecureMemoryError, TzStats};
use std::sync::Arc;

/// Page size used by the simulated TEE pager (4 KiB, as on ARMv8).
pub const PAGE_SIZE: u64 = 4096;

/// Error produced when the pager cannot commit more secure memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageError(pub SecureMemoryError);

impl std::fmt::Display for PageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TEE pager: {}", self.0)
    }
}

impl std::error::Error for PageError {}

/// On-demand pager for secure memory.
pub struct TeePager {
    secure_mem: Arc<SecureMemory>,
    stats: Arc<TzStats>,
    cost: CostModel,
}

impl TeePager {
    /// Create a pager over a platform's secure memory and counters.
    pub fn new(secure_mem: Arc<SecureMemory>, stats: Arc<TzStats>, cost: CostModel) -> Self {
        TeePager { secure_mem, stats, cost }
    }

    /// Round a byte count up to whole pages.
    pub fn pages_for(bytes: u64) -> u64 {
        bytes.div_ceil(PAGE_SIZE)
    }

    /// Commit `pages` additional pages, charging the budget and the paging
    /// cost. Returns the simulated nanoseconds spent.
    pub fn commit_pages(&self, pages: u64) -> Result<u64, PageError> {
        if pages == 0 {
            return Ok(0);
        }
        self.secure_mem.charge(pages * PAGE_SIZE).map_err(PageError)?;
        let nanos = self.cost.tee_paging_nanos(pages as usize);
        self.stats.record_tee_paging(pages, nanos);
        Ok(nanos)
    }

    /// Release `pages` previously committed pages back to the budget.
    pub fn release_pages(&self, pages: u64) {
        if pages > 0 {
            self.secure_mem.release(pages * PAGE_SIZE);
        }
    }

    /// Bytes of secure memory currently committed (over the whole platform).
    pub fn committed_bytes(&self) -> u64 {
        self.secure_mem.in_use()
    }

    /// Whether the platform is under memory pressure (backpressure signal).
    pub fn under_pressure(&self) -> bool {
        self.secure_mem.under_pressure()
    }

    /// The underlying secure-memory tracker.
    pub fn secure_mem(&self) -> &Arc<SecureMemory> {
        &self.secure_mem
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pager(budget: u64) -> TeePager {
        TeePager::new(
            Arc::new(SecureMemory::new(budget, 80)),
            Arc::new(TzStats::new()),
            CostModel::hikey(),
        )
    }

    #[test]
    fn pages_for_rounds_up() {
        assert_eq!(TeePager::pages_for(0), 0);
        assert_eq!(TeePager::pages_for(1), 1);
        assert_eq!(TeePager::pages_for(4096), 1);
        assert_eq!(TeePager::pages_for(4097), 2);
        assert_eq!(TeePager::pages_for(12 * 1024), 3);
    }

    #[test]
    fn commit_charges_budget_and_cost() {
        let p = pager(1 << 20);
        let nanos = p.commit_pages(4).unwrap();
        assert!(nanos > 0);
        assert_eq!(p.committed_bytes(), 4 * PAGE_SIZE);
        p.release_pages(4);
        assert_eq!(p.committed_bytes(), 0);
    }

    #[test]
    fn commit_zero_pages_is_free() {
        let p = pager(1 << 20);
        assert_eq!(p.commit_pages(0).unwrap(), 0);
        assert_eq!(p.committed_bytes(), 0);
    }

    #[test]
    fn commit_fails_beyond_budget() {
        let p = pager(8 * PAGE_SIZE);
        p.commit_pages(8).unwrap();
        assert!(p.commit_pages(1).is_err());
        // Failed commit does not change accounting.
        assert_eq!(p.committed_bytes(), 8 * PAGE_SIZE);
    }

    #[test]
    fn pressure_reflects_budget_usage() {
        let p = pager(10 * PAGE_SIZE);
        assert!(!p.under_pressure());
        p.commit_pages(9).unwrap();
        assert!(p.under_pressure());
    }
}
