//! Parallel production of one uArray extent, in safe code.
//!
//! Parallel in-enclave ingest splits one large batch into per-worker
//! sub-ranges (lanes) that decrypt and parse concurrently. The records of
//! all lanes end up in **one** contiguous reserved extent, so the naive
//! shape — N workers holding `&mut` sub-slices of one `Vec` — needs either
//! scoped borrows (impossible with `'static` executor tasks) or raw-pointer
//! aliasing by convention. This crate forbids `unsafe_code`, so the
//! [`DisjointWriter`] takes a third shape that the type system checks:
//!
//! * each lane is backed by its **own** buffer behind its **own** mutex —
//!   a worker locks exactly its lane, so the "disjointness" of the writes
//!   is enforced by ownership, not promised by pointer arithmetic;
//! * lane buffers are *caller-provided and reusable*: the data plane pools
//!   them across batches, so steady-state parallel ingest allocates nothing
//!   beyond the destination extent itself (each buffer grows once to its
//!   high-water capacity and is then recycled);
//! * after every lane has filled (the caller joins its workers first), the
//!   lanes are stitched into the reserved extent in lane order with one
//!   sequential pass — inside `produce_exact`'s fill, so the all-or-nothing
//!   page-commit discipline of zero-copy ingest is untouched.
//!
//! The lane mutexes are never contended (one producer per lane); they cost
//! one uncontended lock/unlock per lane per batch and buy compiler-checked
//! aliasing safety.

use std::sync::Mutex;

/// One lane's backing store plus its fill bookkeeping.
struct Lane<T> {
    buf: Vec<T>,
    /// Records this lane is expected to produce.
    expected: usize,
    /// Whether the lane's producer has run.
    filled: bool,
}

/// Safe parallel-fill handle over the lanes of one batch.
///
/// Create it with the per-lane record counts and a set of reusable buffers,
/// share it (`Arc`) with one producer task per lane, have each task call
/// [`fill`](DisjointWriter::fill) exactly once for its lane index, join the
/// tasks, then [`stitch_into`](DisjointWriter::stitch_into) the destination
/// and [`reclaim`](DisjointWriter::reclaim) the buffers for the next batch.
pub struct DisjointWriter<T> {
    lanes: Vec<Mutex<Lane<T>>>,
}

impl<T: Copy> DisjointWriter<T> {
    /// Build a writer with one lane per entry of `counts`. `buffers`
    /// provides recycled backing stores (cleared here, capacity retained);
    /// missing buffers are created fresh, surplus ones are dropped.
    pub fn new(mut buffers: Vec<Vec<T>>, counts: &[usize]) -> Self {
        let lanes = counts
            .iter()
            .map(|&expected| {
                let mut buf = buffers.pop().unwrap_or_default();
                buf.clear();
                buf.reserve(expected);
                Mutex::new(Lane { buf, expected, filled: false })
            })
            .collect();
        DisjointWriter { lanes }
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Records lane `lane` is expected to produce.
    pub fn expected(&self, lane: usize) -> usize {
        self.lanes[lane].lock().expect("lane lock").expected
    }

    /// Fill lane `lane`: runs `f` on the lane's cleared buffer (capacity
    /// pre-reserved for the expected count). Overproduction is truncated to
    /// the expected count, mirroring `produce_exact`'s truncate discipline.
    ///
    /// Each lane must be filled exactly once; a second fill panics, because
    /// it means two producers were handed the same lane index.
    pub fn fill(&self, lane: usize, f: impl FnOnce(&mut Vec<T>)) {
        let mut slot = self.lanes[lane].lock().expect("lane lock");
        assert!(!slot.filled, "lane {lane} filled twice");
        slot.filled = true;
        let expected = slot.expected;
        f(&mut slot.buf);
        slot.buf.truncate(expected);
    }

    /// Whether every lane has been filled.
    pub fn all_filled(&self) -> bool {
        self.lanes.iter().all(|l| l.lock().expect("lane lock").filled)
    }

    /// Total records currently held across all lanes.
    pub fn total_len(&self) -> usize {
        self.lanes.iter().map(|l| l.lock().expect("lane lock").buf.len()).sum()
    }

    /// Append every lane's records to `dst` in lane order. Call only after
    /// all producers have been joined; panics if a lane was never filled
    /// (stitching a half-produced batch would silently corrupt the store).
    pub fn stitch_into(&self, dst: &mut Vec<T>) {
        for (ix, lane) in self.lanes.iter().enumerate() {
            let slot = lane.lock().expect("lane lock");
            assert!(slot.filled, "stitching unfilled lane {ix}");
            dst.extend_from_slice(&slot.buf);
        }
    }

    /// Take the lane buffers back (cleared, capacity retained) so the
    /// caller can pool them for the next batch.
    pub fn reclaim(&self) -> Vec<Vec<T>> {
        self.lanes
            .iter()
            .map(|l| {
                let mut slot = l.lock().expect("lane lock");
                let mut buf = std::mem::take(&mut slot.buf);
                buf.clear();
                buf
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lanes_fill_and_stitch_in_order() {
        let w = DisjointWriter::new(Vec::new(), &[3, 2, 4]);
        assert_eq!(w.lanes(), 3);
        // Fill out of order: stitch order is lane order, not fill order.
        w.fill(2, |b| b.extend_from_slice(&[6, 7, 8, 9]));
        w.fill(0, |b| b.extend_from_slice(&[0, 1, 2]));
        assert!(!w.all_filled());
        w.fill(1, |b| b.extend_from_slice(&[4, 5]));
        assert!(w.all_filled());
        assert_eq!(w.total_len(), 9);
        let mut dst = Vec::new();
        w.stitch_into(&mut dst);
        assert_eq!(dst, vec![0, 1, 2, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn concurrent_producers_never_alias() {
        // The parallel-ingest shape: one 'static task per lane, each writing
        // a distinct value pattern; the stitched result is deterministic.
        let counts = vec![1000usize; 8];
        let w = Arc::new(DisjointWriter::new(Vec::new(), &counts));
        let handles: Vec<_> = (0..8)
            .map(|lane| {
                let w = Arc::clone(&w);
                std::thread::spawn(move || {
                    w.fill(lane, |b| b.extend((0..1000).map(|i| lane * 1000 + i)))
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut dst = Vec::new();
        w.stitch_into(&mut dst);
        assert_eq!(dst, (0..8000).collect::<Vec<_>>());
    }

    #[test]
    fn reclaimed_buffers_keep_capacity_and_recycle() {
        let w = DisjointWriter::new(Vec::new(), &[512, 512]);
        w.fill(0, |b| b.extend(std::iter::repeat_n(1u64, 512)));
        w.fill(1, |b| b.extend(std::iter::repeat_n(2u64, 512)));
        let bufs = w.reclaim();
        assert_eq!(bufs.len(), 2);
        assert!(bufs.iter().all(|b| b.is_empty() && b.capacity() >= 512));
        // Recycled into a next batch: the stale contents never leak through.
        let ptrs: Vec<_> = bufs.iter().map(|b| b.as_ptr()).collect();
        let w2 = DisjointWriter::new(bufs, &[16, 16]);
        w2.fill(0, |b| b.extend(std::iter::repeat_n(9u64, 16)));
        w2.fill(1, |b| b.extend(std::iter::repeat_n(9u64, 16)));
        let mut dst = Vec::new();
        w2.stitch_into(&mut dst);
        assert_eq!(dst, vec![9u64; 32]);
        // And no reallocation happened: same backing stores, reused.
        let reclaimed: Vec<_> = w2.reclaim().iter().map(|b| b.as_ptr()).collect();
        assert!(reclaimed.iter().all(|p| ptrs.contains(p)));
    }

    #[test]
    fn overproduction_is_truncated_to_expected() {
        let w = DisjointWriter::new(Vec::new(), &[2]);
        w.fill(0, |b| b.extend_from_slice(&[1, 2, 3, 4]));
        assert_eq!(w.total_len(), 2);
        let mut dst = Vec::new();
        w.stitch_into(&mut dst);
        assert_eq!(dst, vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "filled twice")]
    fn double_fill_panics() {
        let w: DisjointWriter<u8> = DisjointWriter::new(Vec::new(), &[1]);
        w.fill(0, |_| {});
        w.fill(0, |_| {});
    }

    #[test]
    #[should_panic(expected = "unfilled lane")]
    fn stitching_an_unfilled_lane_panics() {
        let w: DisjointWriter<u8> = DisjointWriter::new(Vec::new(), &[1, 1]);
        w.fill(0, |b| b.push(1));
        let mut dst = Vec::new();
        w.stitch_into(&mut dst);
    }
}
