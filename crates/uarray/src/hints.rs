//! Consumption hints supplied by the untrusted control plane (§6.2).
//!
//! When the control plane invokes a trusted primitive it may attach optional
//! hints describing how the primitive's *output* uArrays will be consumed in
//! the future:
//!
//! * *consumed-after* (`b1 ⇐ b2`): the consumer of `b2` will be scheduled
//!   after the consumer of `b1`; the allocator then places both on the same
//!   uGroup so they can be reclaimed consecutively.
//! * *consumed-in-parallel* (`‖k`): `k` sibling outputs will be consumed by
//!   independent workers; the allocator places them in separate uGroups so a
//!   straggling consumer does not block reclamation of the others.
//!
//! Hints are untrusted input: they influence only placement policy. The data
//! plane forwards them into audit records so the cloud verifier can detect
//! systematically misleading hints in retrospect (§7).

use crate::uarray::UArrayId;

/// One placement hint attached to a primitive invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConsumptionHint {
    /// The new uArray will be consumed after the given existing uArray.
    ConsumedAfter(UArrayId),
    /// The new uArray is one of `k` siblings that will be consumed by `k`
    /// parallel workers; `index` identifies which sibling this hint is for.
    ConsumedInParallel {
        /// Number of sibling outputs consumed in parallel.
        k: u32,
        /// This output's index among the siblings (`0..k`).
        index: u32,
    },
}

impl ConsumptionHint {
    /// Encode the hint into the 64-bit field used by audit records
    /// (Figure 6): the top bit distinguishes the two kinds.
    pub fn encode(&self) -> u64 {
        match *self {
            ConsumptionHint::ConsumedAfter(id) => id.0 & 0x7FFF_FFFF_FFFF_FFFF,
            ConsumptionHint::ConsumedInParallel { k, index } => {
                (1u64 << 63) | ((k as u64) << 32) | index as u64
            }
        }
    }

    /// Decode a hint previously encoded with [`encode`].
    ///
    /// [`encode`]: ConsumptionHint::encode
    pub fn decode(raw: u64) -> ConsumptionHint {
        if raw >> 63 == 1 {
            ConsumptionHint::ConsumedInParallel {
                k: ((raw >> 32) & 0x7FFF_FFFF) as u32,
                index: (raw & 0xFFFF_FFFF) as u32,
            }
        } else {
            ConsumptionHint::ConsumedAfter(UArrayId(raw))
        }
    }
}

/// The set of hints accompanying one primitive invocation, one entry per
/// output uArray position (outputs without a hint carry `None`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HintSet {
    hints: Vec<Option<ConsumptionHint>>,
}

impl HintSet {
    /// An empty hint set (no outputs annotated).
    pub fn none() -> Self {
        HintSet { hints: Vec::new() }
    }

    /// A hint set with a single consumed-after annotation for the first
    /// output.
    pub fn consumed_after(predecessor: UArrayId) -> Self {
        HintSet { hints: vec![Some(ConsumptionHint::ConsumedAfter(predecessor))] }
    }

    /// A hint set annotating `k` outputs as consumed in parallel.
    pub fn consumed_in_parallel(k: u32) -> Self {
        HintSet {
            hints: (0..k)
                .map(|index| Some(ConsumptionHint::ConsumedInParallel { k, index }))
                .collect(),
        }
    }

    /// Add a hint for the next output position.
    pub fn push(&mut self, hint: Option<ConsumptionHint>) {
        self.hints.push(hint);
    }

    /// Hint for output position `i`, if any.
    pub fn get(&self, i: usize) -> Option<ConsumptionHint> {
        self.hints.get(i).copied().flatten()
    }

    /// Number of annotated output positions.
    pub fn len(&self) -> usize {
        self.hints.len()
    }

    /// Whether no output carries a hint.
    pub fn is_empty(&self) -> bool {
        self.hints.iter().all(Option::is_none)
    }

    /// Iterate over all present hints.
    pub fn iter(&self) -> impl Iterator<Item = ConsumptionHint> + '_ {
        self.hints.iter().filter_map(|h| *h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_consumed_after() {
        let h = ConsumptionHint::ConsumedAfter(UArrayId(123_456_789));
        assert_eq!(ConsumptionHint::decode(h.encode()), h);
    }

    #[test]
    fn encode_decode_consumed_in_parallel() {
        let h = ConsumptionHint::ConsumedInParallel { k: 8, index: 5 };
        assert_eq!(ConsumptionHint::decode(h.encode()), h);
    }

    #[test]
    fn encodings_are_distinct() {
        let a = ConsumptionHint::ConsumedAfter(UArrayId(1)).encode();
        let b = ConsumptionHint::ConsumedInParallel { k: 0, index: 1 }.encode();
        assert_ne!(a, b);
    }

    #[test]
    fn hint_set_constructors() {
        let s = HintSet::none();
        assert!(s.is_empty());
        assert_eq!(s.get(0), None);

        let s = HintSet::consumed_after(UArrayId(9));
        assert_eq!(s.get(0), Some(ConsumptionHint::ConsumedAfter(UArrayId(9))));
        assert!(!s.is_empty());

        let s = HintSet::consumed_in_parallel(4);
        assert_eq!(s.len(), 4);
        assert_eq!(s.get(2), Some(ConsumptionHint::ConsumedInParallel { k: 4, index: 2 }));
        assert_eq!(s.iter().count(), 4);
    }

    #[test]
    fn push_and_get_mixed() {
        let mut s = HintSet::none();
        s.push(None);
        s.push(Some(ConsumptionHint::ConsumedAfter(UArrayId(3))));
        assert_eq!(s.get(0), None);
        assert_eq!(s.get(1), Some(ConsumptionHint::ConsumedAfter(UArrayId(3))));
        assert_eq!(s.get(2), None);
        assert!(!s.is_empty());
        assert_eq!(s.len(), 2);
    }
}
