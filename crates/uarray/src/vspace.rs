//! Virtual address space management for uGroups.
//!
//! TrustZone TEEs on ARMv8 have a 256 TB virtual address space — four orders
//! of magnitude larger than the physical secure DRAM — so the allocator can
//! afford to reserve a virtual range *as large as the entire TEE DRAM* for
//! every uGroup and let them grow in place without ever colliding or
//! relocating (§6.2). This module tracks those reservations so the
//! evaluation can validate the paper's claim that virtual usage stays at a
//! few percent of the space.

/// Total TEE virtual address space modelled (256 TB, ARMv8 with 48-bit VA).
pub const TEE_VA_SPACE_BYTES: u64 = 256 * (1u64 << 40);

/// Tracker of virtual-address reservations made on behalf of uGroups.
#[derive(Debug)]
pub struct VirtualSpace {
    /// Size of the reservation handed to each uGroup.
    reservation_bytes: u64,
    /// Next free virtual address (bump reservation).
    next_addr: u64,
    /// Currently live reservations.
    live_reservations: u64,
    /// Peak number of simultaneously live reservations.
    peak_reservations: u64,
}

impl VirtualSpace {
    /// Create a tracker that hands out `reservation_bytes` per uGroup
    /// (the paper reserves the size of the entire TEE DRAM).
    pub fn new(reservation_bytes: u64) -> Self {
        VirtualSpace {
            reservation_bytes: reservation_bytes.max(1),
            next_addr: 0,
            live_reservations: 0,
            peak_reservations: 0,
        }
    }

    /// Reserve a fresh virtual range for a new uGroup, returning its base
    /// address. Reservations are never reused in-place (matching the bump
    /// behaviour of the paper's allocator); exhausting 256 TB would require
    /// billions of uGroups and indicates a logic error, so it panics.
    pub fn reserve(&mut self) -> u64 {
        let base = self.next_addr;
        self.next_addr = self
            .next_addr
            .checked_add(self.reservation_bytes)
            .expect("TEE virtual address space exhausted");
        assert!(
            self.next_addr <= TEE_VA_SPACE_BYTES,
            "TEE virtual address space exhausted ({} reservations)",
            self.live_reservations + 1
        );
        self.live_reservations += 1;
        self.peak_reservations = self.peak_reservations.max(self.live_reservations);
        base
    }

    /// Release a reservation (the address range is not recycled, only the
    /// live count drops — mirroring that the allocator tracks live uGroups,
    /// not address reuse).
    pub fn release(&mut self) {
        debug_assert!(self.live_reservations > 0, "releasing more reservations than made");
        self.live_reservations = self.live_reservations.saturating_sub(1);
    }

    /// Bytes of virtual address space currently reserved by live uGroups.
    pub fn reserved_bytes(&self) -> u64 {
        self.live_reservations * self.reservation_bytes
    }

    /// Fraction of the 256 TB TEE virtual space currently reserved, in
    /// percent (floating point for reporting).
    pub fn utilization_percent(&self) -> f64 {
        self.reserved_bytes() as f64 / TEE_VA_SPACE_BYTES as f64 * 100.0
    }

    /// Number of live reservations (== live uGroups).
    pub fn live_reservations(&self) -> u64 {
        self.live_reservations
    }

    /// Peak number of simultaneously live reservations.
    pub fn peak_reservations(&self) -> u64 {
        self.peak_reservations
    }

    /// The per-uGroup reservation size.
    pub fn reservation_bytes_each(&self) -> u64 {
        self.reservation_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reservations_do_not_overlap() {
        let mut vs = VirtualSpace::new(1 << 20);
        let a = vs.reserve();
        let b = vs.reserve();
        let c = vs.reserve();
        assert_eq!(a, 0);
        assert_eq!(b, 1 << 20);
        assert_eq!(c, 2 << 20);
    }

    #[test]
    fn live_and_peak_counts() {
        let mut vs = VirtualSpace::new(1 << 30);
        vs.reserve();
        vs.reserve();
        vs.reserve();
        assert_eq!(vs.live_reservations(), 3);
        vs.release();
        assert_eq!(vs.live_reservations(), 2);
        assert_eq!(vs.peak_reservations(), 3);
        assert_eq!(vs.reserved_bytes(), 2 << 30);
    }

    #[test]
    fn utilization_stays_small_for_realistic_group_counts() {
        // 256 MB reservations (the TEE DRAM size), a few hundred live groups:
        // utilization must be far below 1% of 256 TB, validating the paper's
        // "1–5% of the virtual address space" headroom claim.
        let mut vs = VirtualSpace::new(256 << 20);
        for _ in 0..500 {
            vs.reserve();
        }
        assert!(vs.utilization_percent() < 1.0, "{}", vs.utilization_percent());
    }

    #[test]
    #[should_panic(expected = "virtual address space exhausted")]
    fn exhaustion_panics() {
        let mut vs = VirtualSpace::new(TEE_VA_SPACE_BYTES / 2 + 1);
        vs.reserve();
        vs.reserve();
    }
}
