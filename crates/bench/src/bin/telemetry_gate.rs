//! CI gate for the telemetry subsystem: tracing overhead and snapshot
//! consistency.
//!
//! Drives the WinSum pipeline (encrypted ingress) at the boundary-dominated
//! regime — small 1 K-event batches on 4 cores, where world switches and
//! boundary crossings dominate and any per-crossing tracing cost shows up
//! first — once with telemetry disabled (the default) and once enabled, and
//! fails (exit 1) when:
//!
//! * enabled tracing costs more than `SBT_TELEMETRY_GATE_MAX_OVERHEAD`
//!   (default 3%) of the disabled-run throughput,
//! * the registry snapshot disagrees with the platform's own `TzStats`
//!   totals or the gateway's per-tenant boundary metering (a counter went
//!   unmirrored), or
//! * the per-tenant window-emit latency histograms of a 2-tenant server run
//!   come back empty or non-monotone (p50 ≤ p95 ≤ p99 ≤ max).
//!
//! Besides the verdict it writes `BENCH_telemetry.json` at the repo root —
//! the committed record of the overhead measurement and the per-tenant
//! latency quantiles — plus the usual copy under `target/evaluation/`.
//!
//! Run with `cargo run --release -p sbt_bench --bin telemetry_gate`.

use sbt_bench::{drive, print_table, BenchId, RunScale};
use sbt_crypto::MasterSecret;
use sbt_engine::{Engine, EngineConfig, EngineVariant, Operator, Pipeline, StreamSide};
use sbt_server::{ServerConfig, StreamServer, TenantConfig, TenantStream};
use sbt_telemetry::TenantLatencyRow;
use sbt_workloads::datasets::multi_tenant_streams;
use sbt_workloads::generator::{Generator, GeneratorConfig};
use sbt_workloads::transport::Channel;
use serde::Serialize;

/// One measured regime: the boundary-dominated WinSum run with tracing
/// either off or on.
#[derive(Serialize)]
struct RegimeRow {
    label: String,
    variant: String,
    batch_events: usize,
    tracing: bool,
    events: u64,
    mevents_per_sec: f64,
    /// Spans drained from the tracer after the run (0 when disabled).
    spans_drained: u64,
    /// Spans the ring had to drop because no one drained it in time.
    spans_dropped: u64,
}

/// Everything the gate measured, serialized to `BENCH_telemetry.json`.
#[derive(Serialize)]
struct TelemetryReport {
    generated_by: &'static str,
    scale: RunScale,
    regimes: Vec<RegimeRow>,
    /// Per-tenant watermark-to-window-emit quantiles from the 2-tenant
    /// server run with tracing enabled.
    tenant_window_emit_latencies: Vec<TenantLatencyRow>,
    gates: GateVerdict,
}

#[derive(Serialize)]
struct GateVerdict {
    max_overhead: f64,
    measured_overhead: f64,
    counters_consistent: bool,
    histograms_populated: bool,
    pass: bool,
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

/// One WinSum run at the boundary-dominated regime; cross-checks the
/// registry snapshot against the independent platform and gateway counters
/// when tracing is on.
fn run_once(batch: usize, tracing: bool, scale: RunScale, failures: &mut Vec<String>) -> RegimeRow {
    let variant = EngineVariant::Sbt;
    let engine =
        Engine::new(EngineConfig::for_variant(variant, 4), BenchId::WinSum.pipeline(batch));
    engine.telemetry().set_enabled(tracing);
    let chunks = BenchId::WinSum.stream(scale.windows, scale.events_per_window, 42);
    drive(&engine, chunks, variant, batch, StreamSide::Left);
    let metrics = engine.metrics();

    if tracing {
        // The registry mirrors counters other subsystems also keep for
        // themselves; any disagreement means a crossing went unmirrored.
        let snap = engine.telemetry().snapshot();
        let tz = engine.platform().stats().snapshot();
        for (name, expected) in [
            ("tz.world_switches", tz.world_switches),
            ("tz.switch_nanos", tz.switch_nanos),
            ("tz.boundary_copy_bytes", tz.boundary_copy_bytes),
            ("tz.smc_invocations", tz.smc_invocations),
            ("plane.events_ingested", metrics.events_ingested),
        ] {
            let got = snap.counter_u64(name);
            if got != expected {
                failures.push(format!(
                    "registry counter {name} = {got} disagrees with the subsystem total {expected}"
                ));
            }
        }
        let gw = engine.boundary_events();
        let section = format!("gateway.t{}", engine.tenant().0);
        for (name, expected) in [
            ("switches", gw.switches),
            ("copied_bytes", gw.copied_bytes),
            ("invocations", gw.invocations),
        ] {
            let key = format!("{section}.{name}");
            let got = snap.counter_u64(&key);
            if got != expected {
                failures.push(format!(
                    "registry counter {key} = {got} disagrees with gateway metering {expected}"
                ));
            }
        }
    }

    let mut spans_drained = 0u64;
    engine.telemetry().tracer().drain(|_| spans_drained += 1);
    if tracing && spans_drained == 0 {
        failures.push("tracing was enabled but the run produced no spans".to_string());
    }
    if !tracing && spans_drained != 0 {
        failures
            .push(format!("tracing was disabled but {spans_drained} spans were still recorded"));
    }

    RegimeRow {
        label: (if tracing { "boundary-dominated/traced" } else { "boundary-dominated" })
            .to_string(),
        variant: variant.label().to_string(),
        batch_events: batch,
        tracing,
        events: metrics.events_ingested,
        mevents_per_sec: metrics.events_per_sec() / 1e6,
        spans_drained,
        spans_dropped: engine.telemetry().tracer().dropped(),
    }
}

/// Best-of-`reps` throughput for both tracing modes, measured interleaved
/// (off, on, off, on, …) after one untimed warm-up run. A 3% gate cannot
/// afford either cold-start noise or time-correlated drift (frequency
/// ramp-up, a co-tenant waking mid-measurement): interleaving spreads any
/// drift evenly over both modes and best-of keeps the cleanest rep of
/// each. Consistency failures are collected on every rep.
fn measure_regimes(
    batch: usize,
    scale: RunScale,
    reps: usize,
) -> (RegimeRow, RegimeRow, Vec<String>) {
    // Untimed warm-up: page in code and data. Its consistency failures are
    // discarded — the checks are deterministic and re-run on every rep.
    run_once(batch, true, scale, &mut Vec::new());
    let mut best: [Option<RegimeRow>; 2] = [None, None];
    let mut mode_failures: [Vec<String>; 2] = [Vec::new(), Vec::new()];
    for _ in 0..reps {
        for (slot, tracing) in [(0usize, false), (1usize, true)] {
            let mut f = Vec::new();
            let row = run_once(batch, tracing, scale, &mut f);
            mode_failures[slot] = f; // deterministic counters: latest rep's view
            if best[slot].as_ref().is_none_or(|b| row.mevents_per_sec > b.mevents_per_sec) {
                best[slot] = Some(row);
            }
        }
    }
    let [off, on] = best;
    let [mut failures, on_failures] = mode_failures;
    failures.extend(on_failures);
    (off.expect("at least one rep"), on.expect("at least one rep"), failures)
}

/// A 2-tenant server run with tracing enabled: every tenant must come back
/// with a populated, monotone window-emit latency histogram.
fn tenant_latencies(failures: &mut Vec<String>) -> Vec<TenantLatencyRow> {
    let windows = 2u32;
    let events_per_window = 20_000usize;
    let batch = events_per_window / 4;
    let server = StreamServer::new(ServerConfig::default().with_cores(4));
    server.telemetry().set_enabled(true);
    let master = MasterSecret::demo();
    let ids: Vec<_> = (0..2)
        .map(|t| {
            server
                .admit(
                    TenantConfig::new(&format!("tenant-{t}"), 32 * 1024 * 1024),
                    Pipeline::new(&format!("winsum-{t}"))
                        .then(Operator::WindowSum)
                        .target_delay_ms(60_000)
                        .batch_events(batch),
                )
                .expect("admission within quota")
        })
        .collect();
    let loads = multi_tenant_streams(2, windows, events_per_window, 64, 42);
    let streams: Vec<TenantStream> = ids
        .iter()
        .zip(loads)
        .map(|(id, chunks)| TenantStream {
            tenant: *id,
            generator: Generator::new(
                GeneratorConfig { batch_events: batch },
                Channel::for_tenant(&master, *id, 0),
                chunks,
            ),
        })
        .collect();
    server.serve(streams).expect("serve completes");

    let rows: Vec<TenantLatencyRow> =
        server.telemetry().latency_rows().into_iter().filter(|r| r.kind == "window_emit").collect();
    for id in &ids {
        match rows.iter().find(|r| r.tenant == id.0) {
            None => failures.push(format!("tenant {id} has no window-emit histogram")),
            Some(r) => {
                if r.count < u64::from(windows) {
                    failures.push(format!(
                        "tenant {id} recorded {} window emits, expected at least {windows}",
                        r.count
                    ));
                }
                if !(r.p50_nanos <= r.p95_nanos
                    && r.p95_nanos <= r.p99_nanos
                    && r.p99_nanos <= r.max_nanos)
                {
                    failures.push(format!(
                        "tenant {id} quantiles are not monotone: p50 {} p95 {} p99 {} max {}",
                        r.p50_nanos, r.p95_nanos, r.p99_nanos, r.max_nanos
                    ));
                }
            }
        }
    }
    rows
}

fn main() {
    let scale = RunScale::from_env();
    let batch = 1_000usize; // boundary-dominated: one crossing set per 1 K events
    let reps: usize =
        std::env::var("SBT_REPS").ok().and_then(|s| s.parse().ok()).unwrap_or(5).max(1);
    let max_overhead = env_f64("SBT_TELEMETRY_GATE_MAX_OVERHEAD", 0.03);

    let (off, on, mut failures) = measure_regimes(batch, scale, reps);
    let counters_consistent = failures.is_empty();

    let overhead = 1.0 - on.mevents_per_sec / off.mevents_per_sec.max(f64::MIN_POSITIVE);
    if overhead > max_overhead {
        failures.push(format!(
            "enabled tracing cost {:.2}% of throughput at the boundary-dominated regime \
             (max {:.2}%): {:.3} vs {:.3} Mevents/s",
            overhead * 100.0,
            max_overhead * 100.0,
            on.mevents_per_sec,
            off.mevents_per_sec
        ));
    }

    let before_hist_failures = failures.len();
    let latencies = tenant_latencies(&mut failures);
    let histograms_populated = failures.len() == before_hist_failures;

    let regimes = vec![off, on];
    let table: Vec<Vec<String>> = regimes
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                r.batch_events.to_string(),
                if r.tracing { "on" } else { "off" }.to_string(),
                format!("{:.3}", r.mevents_per_sec),
                r.spans_drained.to_string(),
                r.spans_dropped.to_string(),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Telemetry overhead — WinSum, {} windows x {} events, {batch}-event batches",
            scale.windows, scale.events_per_window
        ),
        &["regime", "batch", "tracing", "Mevents/s", "spans", "dropped"],
        &table,
    );
    let ms = |nanos: u64| format!("{:.2}", nanos as f64 / 1e6);
    let lat_table: Vec<Vec<String>> = latencies
        .iter()
        .map(|l| {
            vec![
                format!("t{}", l.tenant),
                l.count.to_string(),
                ms(l.p50_nanos),
                ms(l.p95_nanos),
                ms(l.p99_nanos),
                ms(l.max_nanos),
            ]
        })
        .collect();
    print_table(
        "Per-tenant window-emit latency (2 tenants, tracing on)",
        &["tenant", "windows", "p50 ms", "p95 ms", "p99 ms", "max ms"],
        &lat_table,
    );
    println!(
        "\ngate: tracing overhead {:.2}% (max {:.2}%), counters {}, histograms {}",
        overhead * 100.0,
        max_overhead * 100.0,
        if counters_consistent { "consistent" } else { "INCONSISTENT" },
        if histograms_populated { "populated" } else { "MISSING" },
    );

    let report = TelemetryReport {
        generated_by: "cargo run --release -p sbt_bench --bin telemetry_gate",
        scale,
        regimes,
        tenant_window_emit_latencies: latencies,
        gates: GateVerdict {
            max_overhead,
            measured_overhead: overhead,
            counters_consistent,
            histograms_populated,
            pass: failures.is_empty(),
        },
    };
    match serde_json::to_string_pretty(&report) {
        Ok(json) => {
            if let Err(e) = std::fs::write("BENCH_telemetry.json", json + "\n") {
                eprintln!("could not write BENCH_telemetry.json: {e}");
            } else {
                eprintln!("(telemetry record written to BENCH_telemetry.json)");
            }
        }
        Err(e) => eprintln!("could not serialize telemetry report: {e}"),
    }
    sbt_bench::dump_json("telemetry_gate", &report);

    if !report.gates.pass {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!("telemetry gate passed");
}
