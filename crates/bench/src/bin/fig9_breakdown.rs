//! Figure 9: run-time breakdown of the GroupBy operator — in-enclave
//! decrypt vs operator compute vs world switches vs boundary copies vs TEE
//! memory management — as a function of the input batch size, with 8 worker
//! threads executing both the ingest decrypt lanes and GroupBy in parallel.
//!
//! Every lane comes from one diff of the unified telemetry registry
//! snapshot (the `tz.*` and `plane.*` counters the run actually
//! accumulated), not from model arithmetic, and each row also reports the
//! raw boundary *events* behind the percentages: world switches made, bytes
//! copied, secure pages committed. The decrypt lane is the sum of the
//! per-sub-batch `Decrypt` spans: under parallel ingest a batch decrypts as
//! N concurrent lanes inside its single crossing, so CPU time is the sum of
//! the lane spans, not the wall time of the batch — summing spans keeps the
//! compute-side accounting correct at any pool width. The sweep runs the
//! ingest + GroupBy profile under both ingress paths, so the copy lane is
//! demonstrably zero on trusted IO and proportional to payload via the OS.
//!
//! Run with `cargo run --release -p sbt-bench --bin fig9_breakdown`.

use sbt_bench::print_table;
use sbt_crypto::{AesCtr, MasterSecret};
use sbt_dataplane::{DataPlane, DataPlaneConfig, PrimitiveParams};
use sbt_engine::{TeeGateway, WorkerPool};
use sbt_telemetry::SpanKind;
use sbt_types::{Event, PrimitiveKind};
use sbt_tz::{BoundaryEvents, IngressPathConfig, Platform, PlatformConfig};
use sbt_uarray::HintSet;
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

#[derive(Serialize)]
struct BreakdownRow {
    ingress: &'static str,
    batch_events: usize,
    decrypt_pct: f64,
    compute_pct: f64,
    switch_pct: f64,
    copy_pct: f64,
    memory_pct: f64,
    total_ms: f64,
    /// Decrypt lanes recorded (sub-batches across all ingest batches).
    decrypt_spans: u64,
    /// Raw boundary events over the run, from the live platform counters.
    boundary: BoundaryEvents,
}

/// Ingest `batches` encrypted batches of `batch_events` events through
/// `path` (each batch decrypting as per-worker lanes inside its one
/// crossing), then GroupBy (Sort + SumCnt per batch) on the same `threads`
/// worker threads; return the five-lane breakdown from the platform's
/// counter deltas plus the drained per-sub-batch `Decrypt` spans.
fn run_groupby(
    batch_events: usize,
    batches: usize,
    threads: usize,
    path: IngressPathConfig,
) -> BreakdownRow {
    let platform = Platform::new(PlatformConfig::hikey().with_ingress(path));
    let dp = DataPlane::new(platform.clone(), DataPlaneConfig::default());
    let gateway = Arc::new(TeeGateway::open(dp.clone()));
    // The pool that runs GroupBy also runs the ingest decrypt lanes.
    let pool = Arc::new(WorkerPool::new(threads));
    dp.set_ingest_pool(pool.clone());
    let tracer = Arc::clone(dp.telemetry().tracer());
    tracer.set_enabled(true);
    let keys = MasterSecret::demo().tenant_keys(gateway.tenant().0, 0);

    let before = dp.telemetry().snapshot();
    let wall_start = Instant::now();

    // Ingest is part of the profile: it is where the ingress paths differ
    // (trusted IO copies nothing; via-OS pays the boundary copy), and where
    // the batch fans out into per-worker decrypt lanes.
    let refs: Vec<_> = (0..batches)
        .map(|b| {
            let events: Vec<Event> = (0..batch_events)
                .map(|i| Event::new((i % 1000) as u32, (i + b) as u32, 0))
                .collect();
            let mut wire = Event::slice_to_bytes(&events);
            AesCtr::new(&keys.source_key, &keys.source_nonce).apply_keystream_at(&mut wire, 0);
            gateway.ingress_shared(&Arc::new(wire), true, false, 0).expect("ingest").opaque
        })
        .collect();

    // GroupBy over each batch in parallel: Sort then SumCnt.
    let tasks: Vec<_> = refs
        .iter()
        .map(|r| {
            let gw = Arc::clone(&gateway);
            let r = *r;
            move || {
                let sorted = gw
                    .invoke(PrimitiveKind::Sort, &[r], PrimitiveParams::None, &HintSet::none())
                    .expect("sort");
                gw.retire(r).expect("retire input");
                let aggs = gw
                    .invoke(
                        PrimitiveKind::SumCnt,
                        &[sorted[0].opaque],
                        PrimitiveParams::None,
                        &HintSet::none(),
                    )
                    .expect("sumcnt");
                gw.retire(sorted[0].opaque).expect("retire sorted");
                gw.retire(aggs[0].opaque).expect("retire aggs");
            }
        })
        .collect();
    pool.run_all(tasks);

    let wall = wall_start.elapsed().as_nanos() as u64;
    let delta = dp.telemetry().snapshot().delta_since(&before);

    // The decrypt lane sums the per-sub-batch `Decrypt` spans. Each span is
    // one lane's CPU time; a batch split across N workers contributes N
    // spans whose durations sum to the work done, so the lane stays correct
    // however the batch was split (wall time per batch would under-count by
    // the parallel speedup).
    let mut decrypt = 0u64;
    let mut decrypt_spans = 0u64;
    tracer.drain(|s| {
        if s.kind == SpanKind::Decrypt {
            decrypt += s.duration_nanos;
            decrypt_spans += 1;
        }
    });
    // Cross-check: the data plane's own counter is the same lane sum.
    let counted = delta.counter_u64("plane.decrypt_nanos");
    assert_eq!(
        decrypt, counted,
        "Decrypt span sum ({decrypt} ns) disagrees with plane.decrypt_nanos ({counted} ns)"
    );

    // Five lanes; all but decrypt from one unified registry snapshot diff:
    // the data plane and platform counters arrive through the same named
    // sections the other observability consumers read.
    let compute = delta.counter_u64("plane.compute_nanos");
    let memory = delta.counter_u64("plane.memory_nanos") + delta.counter_u64("tz.tee_paging_nanos");
    let switches = delta.counter_u64("tz.switch_nanos");
    let copies = delta.counter_u64("tz.boundary_copy_nanos");
    let total = decrypt + compute + memory + switches + copies;
    let pct = |x: u64| 100.0 * x as f64 / total.max(1) as f64;
    BreakdownRow {
        ingress: match path {
            IngressPathConfig::TrustedIo => "trusted-io",
            IngressPathConfig::ViaOs => "via-os",
        },
        batch_events,
        decrypt_pct: pct(decrypt),
        compute_pct: pct(compute),
        switch_pct: pct(switches),
        copy_pct: pct(copies),
        memory_pct: pct(memory),
        total_ms: (wall + (switches + copies + memory) / threads.max(1) as u64) as f64 / 1e6,
        decrypt_spans,
        boundary: BoundaryEvents {
            switches: delta.counter_u64("tz.world_switches"),
            copied_bytes: delta.counter_u64("tz.boundary_copy_bytes"),
            pages_committed: delta.counter_u64("tz.tee_pages_committed"),
            invocations: delta.counter_u64("tz.smc_invocations"),
        },
    }
}

fn main() {
    let threads = 8;
    let full = std::env::var("SBT_FULL").map(|v| v == "1").unwrap_or(false);
    // Total events held constant; batch size sweeps the TEE entry/exit rate.
    let total_events: usize = if full { 4_000_000 } else { 1_000_000 };
    let batch_sizes = [8_000usize, 32_000, 128_000, 512_000, 1_000_000];

    let mut rows = Vec::new();
    let mut table = Vec::new();
    for path in [IngressPathConfig::TrustedIo, IngressPathConfig::ViaOs] {
        for &batch in &batch_sizes {
            let batches = (total_events / batch).max(1);
            let row = run_groupby(batch, batches, threads, path);
            table.push(vec![
                row.ingress.to_string(),
                format!("{}K", batch / 1000),
                format!("{:.1}%", row.decrypt_pct),
                format!("{:.1}%", row.compute_pct),
                format!("{:.1}%", row.switch_pct),
                format!("{:.1}%", row.copy_pct),
                format!("{:.1}%", row.memory_pct),
                format!("{:.1}", row.total_ms),
                row.decrypt_spans.to_string(),
                row.boundary.switches.to_string(),
                format!("{}", row.boundary.copied_bytes / 1024),
                row.boundary.pages_committed.to_string(),
            ]);
            rows.push(row);
        }
    }
    print_table(
        &format!(
            "Figure 9 — GroupBy run-time breakdown ({threads} threads, {total_events} events)"
        ),
        &[
            "ingress",
            "batch",
            "decrypt",
            "compute",
            "switch",
            "copy",
            "mem mgmt",
            "total ms",
            "lanes",
            "switches",
            "copied KiB",
            "pages",
        ],
        &table,
    );
    println!(
        "\nExpectation from the paper: with batches of 128K events or more, >90% of time is\n\
         compute (decrypt + operators) inside the TEE; with 8K-event batches the\n\
         world-switch share dominates. Trusted IO keeps the copy lane at exactly zero;\n\
         via-OS ingress pays a per-byte boundary copy on top of the same switch profile.\n\
         The decrypt lane is summed over per-sub-batch spans, so it reads as CPU time\n\
         across the worker pool, not wall time."
    );
    sbt_bench::dump_json("fig9_breakdown", &rows);
}
