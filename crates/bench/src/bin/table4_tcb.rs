//! Table 4: breakdown of the StreamBox-TZ source into trusted (data-plane)
//! and untrusted (control-plane / library) code, demonstrating the lean TCB.
//!
//! The reproduction measures its own source tree: the crates that would run
//! inside the TEE versus those that stay in the normal world. Run with
//! `cargo run -p sbt-bench --bin table4_tcb` from the repository root.

use sbt_bench::print_table;
use serde::Serialize;
use std::path::Path;

#[derive(Serialize)]
struct CrateRow {
    component: String,
    crates: Vec<String>,
    sloc: usize,
    trusted: bool,
}

/// Count non-empty, non-comment-only lines of Rust source under a crate's
/// `src` directory (tests included: the paper's SLoC counts are source
/// counts of the implementation files).
fn count_sloc(dir: &Path) -> usize {
    let mut total = 0;
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            total += count_sloc(&path);
        } else if path.extension().map(|e| e == "rs").unwrap_or(false) {
            if let Ok(content) = std::fs::read_to_string(&path) {
                total += content
                    .lines()
                    .map(str::trim)
                    .filter(|l| !l.is_empty() && !l.starts_with("//"))
                    .count();
            }
        }
    }
    total
}

fn main() {
    // Locate the workspace root whether we run from it or from the crate dir.
    let root = if Path::new("crates").exists() {
        Path::new(".").to_path_buf()
    } else {
        Path::new("../..").to_path_buf()
    };

    let groups: Vec<(&str, Vec<&str>, bool)> = vec![
        // The data plane: what would be compiled into the TA (trusted).
        ("Data plane: trusted primitives", vec!["primitives"], true),
        ("Data plane: TEE memory mgmt (uArray)", vec!["uarray"], true),
        ("Data plane: crypto", vec!["crypto"], true),
        ("Data plane: attestation (records + codec)", vec!["attest"], true),
        ("Data plane: dispatch/ingress/egress", vec!["dataplane"], true),
        // The control plane and everything else (untrusted).
        ("Control plane: engine, operators, scheduler", vec!["engine"], false),
        ("Shared types", vec!["types"], false),
        ("Platform simulation (OP-TEE/TrustZone stand-in)", vec!["tz"], false),
        ("Workloads & transport", vec!["workloads"], false),
        ("Baselines", vec!["baselines"], false),
        ("Benchmark harness", vec!["bench"], false),
    ];

    let mut rows = Vec::new();
    let mut table = Vec::new();
    let mut trusted_total = 0;
    let mut untrusted_total = 0;
    for (label, crates, trusted) in groups {
        let sloc: usize =
            crates.iter().map(|c| count_sloc(&root.join("crates").join(c).join("src"))).sum();
        if trusted {
            trusted_total += sloc;
        } else {
            untrusted_total += sloc;
        }
        table.push(vec![
            label.to_string(),
            crates.join(", "),
            sloc.to_string(),
            if trusted { "trusted (TCB)" } else { "untrusted" }.to_string(),
        ]);
        rows.push(CrateRow {
            component: label.to_string(),
            crates: crates.iter().map(|s| s.to_string()).collect(),
            sloc,
            trusted,
        });
    }
    print_table(
        "Table 4 — source breakdown of this reproduction",
        &["component", "crates", "SLoC", "trust"],
        &table,
    );
    let total = trusted_total + untrusted_total;
    println!("\nTrusted (data plane) SLoC:   {trusted_total}");
    println!("Untrusted SLoC:              {untrusted_total}");
    println!(
        "Data plane share of sources: {:.1}% (paper: the data plane adds 5K SLoC / 42.5 KB,\n\
         16% of the OP-TEE TCB binary; the untrusted side is ~31K SLoC plus ~1.3M SLoC of\n\
         commodity libraries that this reproduction does not need to link)",
        100.0 * trusted_total as f64 / total.max(1) as f64
    );
    sbt_bench::dump_json("table4_tcb", &rows);
}
