//! CI gate for the audit-log codec: the streaming (format-v2) columnar
//! encoder must stay ≥ `SBT_CODEC_GATE_MIN`× (default 2×) faster than the
//! recorded legacy baseline — the batch (format-v1) codec re-measured on
//! the same machine, which anchors the gate to hardware-independent ground
//! truth — at an equal-or-better compression ratio, and both payloads must
//! round-trip.
//!
//! The gate measures two segment granularities:
//!
//! * **production** — the data plane's `audit_flush_threshold` default of
//!   256 records, where the streaming encoder's ~2.7× advantage lives and
//!   is gated at `SBT_CODEC_GATE_MIN`;
//! * **large-segment** — 16 K-record segments, the ROADMAP's known gap:
//!   streaming encode is only ~1.1–1.3× v1 there. The regime is gated at
//!   `SBT_CODEC_GATE_MIN_LARGE` (default 1.0×, i.e. "no worse than v1")
//!   and its measured speedup is recorded in the committed
//!   `BENCH_codec.json`, so the gap has a measured floor before someone
//!   closes it — and closing it tightens the committed number, not a
//!   guess.
//!
//! Per segment, the legacy codec re-walks the record batch and builds
//! per-column Huffman trees, while the streaming encoder has already
//! columnar-coded every field at append time and only entropy-codes the
//! byte columns against precomputed static tables at seal.
//!
//! Exits nonzero if:
//! * either codec fails to decode back to the input records (any regime);
//! * the streaming compression ratio drops below the batch ratio;
//! * a regime's streaming encode speedup falls under its threshold.
//!
//! Besides the verdict it writes `BENCH_codec.json` at the repo root — a
//! committed, machine-readable record of both regimes — plus the usual
//! copy under `target/evaluation/`.
//!
//! Run with `cargo run --release -p sbt_bench --bin codec_gate`.

use sbt_attest::{compress_records, decompress_records, AuditRecord, ColumnarEncoder};
use sbt_bench::{best_secs, synthetic_audit_records};
use serde::Serialize;

/// Records per segment: the data plane's default `audit_flush_threshold`.
const SEGMENT_RECORDS: usize = 256;
/// The large-segment regime where the streaming encoder's edge narrows.
const LARGE_SEGMENT_RECORDS: usize = 16 * 1024;

/// One (segment size) regime's measurements, serialized to
/// `BENCH_codec.json`.
#[derive(Serialize)]
struct RegimeRow {
    label: &'static str,
    segment_records: usize,
    records: usize,
    raw_kb: f64,
    batch_encode_mbps: f64,
    streaming_encode_mbps: f64,
    encode_speedup: f64,
    batch_decode_mbps: f64,
    streaming_decode_mbps: f64,
    decode_speedup: f64,
    batch_ratio: f64,
    streaming_ratio: f64,
    min_encode_speedup: f64,
}

#[derive(Serialize)]
struct CodecReport {
    generated_by: &'static str,
    regimes: Vec<RegimeRow>,
    pass: bool,
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

/// Round-trip, time and ratio one segment-size regime; exits on a
/// correctness failure, returns the measurements for gating.
fn run_regime(
    label: &'static str,
    records: &[AuditRecord],
    segment_records: usize,
    iters: u32,
    min_encode_speedup: f64,
) -> RegimeRow {
    let raw_bytes = AuditRecord::raw_size(records) as f64;

    // Correctness first: both formats must round-trip exactly, segment by
    // segment.
    let mut encoder = ColumnarEncoder::with_capacity(segment_records);
    let mut batch_bytes = 0usize;
    let mut streaming_bytes = 0usize;
    for chunk in records.chunks(segment_records) {
        let batch_payload = compress_records(chunk);
        for r in chunk {
            encoder.append(r);
        }
        let streaming_payload = encoder.seal();
        batch_bytes += batch_payload.len();
        streaming_bytes += streaming_payload.len();
        for (name, payload) in
            [("batch(v1)", &batch_payload), ("streaming(v2)", &streaming_payload)]
        {
            match decompress_records(payload) {
                Ok(decoded) if decoded == chunk => {}
                Ok(_) => {
                    eprintln!("codec gate [{label}]: {name} segment decoded to different records");
                    std::process::exit(1);
                }
                Err(e) => {
                    eprintln!("codec gate [{label}]: {name} segment failed to decode: {e}");
                    std::process::exit(1);
                }
            }
        }
    }

    // Throughput at segment granularity; the streaming encoder is reused
    // across seals exactly as the audit log uses it (buffers warm).
    let batch_secs = best_secs(iters, || {
        for chunk in records.chunks(segment_records) {
            std::hint::black_box(compress_records(chunk));
        }
    });
    let mut out = Vec::new();
    let streaming_secs = best_secs(iters, || {
        for chunk in records.chunks(segment_records) {
            for r in chunk {
                encoder.append(r);
            }
            out.clear();
            encoder.seal_into(&mut out);
            std::hint::black_box(&out);
        }
    });

    // Decode throughput over the same segments.
    let batch_payloads: Vec<Vec<u8>> =
        records.chunks(segment_records).map(compress_records).collect();
    let streaming_payloads: Vec<Vec<u8>> = records
        .chunks(segment_records)
        .map(|chunk| {
            for r in chunk {
                encoder.append(r);
            }
            encoder.seal()
        })
        .collect();
    let decode_batch_secs = best_secs(iters, || {
        for p in &batch_payloads {
            std::hint::black_box(decompress_records(p).expect("decodes"));
        }
    });
    let decode_streaming_secs = best_secs(iters, || {
        for p in &streaming_payloads {
            std::hint::black_box(decompress_records(p).expect("decodes"));
        }
    });

    let mbps = |secs: f64| raw_bytes / secs / 1e6;
    RegimeRow {
        label,
        segment_records,
        records: records.len(),
        raw_kb: raw_bytes / 1024.0,
        batch_encode_mbps: mbps(batch_secs),
        streaming_encode_mbps: mbps(streaming_secs),
        encode_speedup: mbps(streaming_secs) / mbps(batch_secs),
        batch_decode_mbps: mbps(decode_batch_secs),
        streaming_decode_mbps: mbps(decode_streaming_secs),
        decode_speedup: mbps(decode_streaming_secs) / mbps(decode_batch_secs),
        batch_ratio: raw_bytes / batch_bytes as f64,
        streaming_ratio: raw_bytes / streaming_bytes as f64,
        min_encode_speedup,
    }
}

fn main() {
    let iters: u32 =
        std::env::var("SBT_CODEC_GATE_ITERS").ok().and_then(|v| v.parse().ok()).unwrap_or(30);
    let min_speedup = env_f64("SBT_CODEC_GATE_MIN", 2.0);
    let min_large_speedup = env_f64("SBT_CODEC_GATE_MIN_LARGE", 1.0);

    // Production granularity: the stream the codec benches always measured.
    let records = synthetic_audit_records(50, 32);
    // Large segments: enough records for two full 16 K segments, so the
    // regime times steady-state large-segment seals, not one warm-up.
    let large_records = synthetic_audit_records(250, 32);

    let regimes = vec![
        run_regime("production", &records, SEGMENT_RECORDS, iters, min_speedup),
        run_regime(
            "large-segment",
            &large_records,
            LARGE_SEGMENT_RECORDS,
            iters,
            min_large_speedup,
        ),
    ];

    let mut failures = Vec::new();
    for r in &regimes {
        println!(
            "=== audit codec gate [{}] ({} records, {:.0} raw KB, {}-record segments) ===",
            r.label, r.records, r.raw_kb, r.segment_records
        );
        println!(
            "encode:  batch {:8.0} MB/s   streaming {:8.0} MB/s   ({:.2}x, min {:.2}x)",
            r.batch_encode_mbps, r.streaming_encode_mbps, r.encode_speedup, r.min_encode_speedup,
        );
        println!(
            "decode:  batch {:8.0} MB/s   streaming {:8.0} MB/s   ({:.2}x)",
            r.batch_decode_mbps, r.streaming_decode_mbps, r.decode_speedup,
        );
        println!(
            "ratio:   batch {:8.2}x        streaming {:8.2}x",
            r.batch_ratio, r.streaming_ratio
        );

        if r.streaming_ratio < r.batch_ratio {
            failures.push(format!(
                "[{}] streaming ratio {:.3}x regressed below the batch baseline {:.3}x",
                r.label, r.streaming_ratio, r.batch_ratio
            ));
        }
        if r.encode_speedup < r.min_encode_speedup {
            failures.push(format!(
                "[{}] streaming encode is only {:.2}x the batch baseline (required ≥ {:.2}x)",
                r.label, r.encode_speedup, r.min_encode_speedup
            ));
        }
    }

    let report = CodecReport {
        generated_by: "cargo run --release -p sbt_bench --bin codec_gate",
        regimes,
        pass: failures.is_empty(),
    };
    match serde_json::to_string_pretty(&report) {
        Ok(json) => {
            if let Err(e) = std::fs::write("BENCH_codec.json", json + "\n") {
                eprintln!("could not write BENCH_codec.json: {e}");
            } else {
                eprintln!("(codec record written to BENCH_codec.json)");
            }
        }
        Err(e) => eprintln!("could not serialize codec report: {e}"),
    }
    sbt_bench::dump_json("codec_gate", &report);

    if !report.pass {
        for f in &failures {
            eprintln!("codec gate FAILED: {f}");
        }
        std::process::exit(1);
    }
    println!("codec gate OK");
}
