//! CI gate for the audit-log codec: the streaming (format-v2) columnar
//! encoder must stay ≥ `SBT_CODEC_GATE_MIN`× (default 2×) faster than the
//! recorded legacy baseline — the batch (format-v1) codec re-measured on
//! the same machine, which anchors the gate to hardware-independent ground
//! truth — at an equal-or-better compression ratio, and both payloads must
//! round-trip.
//!
//! The measurement runs at the data plane's production segment granularity
//! (`audit_flush_threshold` defaults to 256 records, and every egress
//! forces a flush): per segment, the legacy codec re-walks the record batch
//! and builds per-column Huffman trees, while the streaming encoder has
//! already columnar-coded every field at append time and only entropy-codes
//! the byte columns against precomputed static tables at seal.
//!
//! Exits nonzero if:
//! * either codec fails to decode back to the input records;
//! * the streaming compression ratio drops below the batch ratio;
//! * streaming encode throughput falls under the threshold — a drop below
//!   it means the streaming path regressed far beyond the 10% budget the
//!   ROADMAP allows on the recorded baseline.
//!
//! Run with `cargo run --release -p sbt_bench --bin codec_gate`.

use sbt_attest::{compress_records, decompress_records, AuditRecord, ColumnarEncoder};
use sbt_bench::{best_secs, synthetic_audit_records};

/// Records per segment: the data plane's default `audit_flush_threshold`.
const SEGMENT_RECORDS: usize = 256;

fn main() {
    let records = synthetic_audit_records(50, 32);
    let raw_bytes = AuditRecord::raw_size(&records) as f64;
    let iters: u32 =
        std::env::var("SBT_CODEC_GATE_ITERS").ok().and_then(|v| v.parse().ok()).unwrap_or(30);
    let min_speedup: f64 =
        std::env::var("SBT_CODEC_GATE_MIN").ok().and_then(|v| v.parse().ok()).unwrap_or(2.0);

    // Correctness first: both formats must round-trip exactly, segment by
    // segment.
    let mut encoder = ColumnarEncoder::with_capacity(SEGMENT_RECORDS);
    let mut batch_bytes = 0usize;
    let mut streaming_bytes = 0usize;
    for chunk in records.chunks(SEGMENT_RECORDS) {
        let batch_payload = compress_records(chunk);
        for r in chunk {
            encoder.append(r);
        }
        let streaming_payload = encoder.seal();
        batch_bytes += batch_payload.len();
        streaming_bytes += streaming_payload.len();
        for (name, payload) in
            [("batch(v1)", &batch_payload), ("streaming(v2)", &streaming_payload)]
        {
            match decompress_records(payload) {
                Ok(decoded) if decoded == chunk => {}
                Ok(_) => {
                    eprintln!("codec gate: {name} segment decoded to different records");
                    std::process::exit(1);
                }
                Err(e) => {
                    eprintln!("codec gate: {name} segment failed to decode: {e}");
                    std::process::exit(1);
                }
            }
        }
    }

    // Throughput at segment granularity; the streaming encoder is reused
    // across seals exactly as the audit log uses it (buffers warm).
    let batch_secs = best_secs(iters, || {
        for chunk in records.chunks(SEGMENT_RECORDS) {
            std::hint::black_box(compress_records(chunk));
        }
    });
    let mut out = Vec::new();
    let streaming_secs = best_secs(iters, || {
        for chunk in records.chunks(SEGMENT_RECORDS) {
            for r in chunk {
                encoder.append(r);
            }
            out.clear();
            encoder.seal_into(&mut out);
            std::hint::black_box(&out);
        }
    });

    // Decode throughput over the same segments.
    let batch_payloads: Vec<Vec<u8>> =
        records.chunks(SEGMENT_RECORDS).map(compress_records).collect();
    let streaming_payloads: Vec<Vec<u8>> = records
        .chunks(SEGMENT_RECORDS)
        .map(|chunk| {
            for r in chunk {
                encoder.append(r);
            }
            encoder.seal()
        })
        .collect();
    let decode_batch_secs = best_secs(iters, || {
        for p in &batch_payloads {
            std::hint::black_box(decompress_records(p).expect("decodes"));
        }
    });
    let decode_streaming_secs = best_secs(iters, || {
        for p in &streaming_payloads {
            std::hint::black_box(decompress_records(p).expect("decodes"));
        }
    });

    let mbps = |secs: f64| raw_bytes / secs / 1e6;
    let batch_ratio = raw_bytes / batch_bytes as f64;
    let streaming_ratio = raw_bytes / streaming_bytes as f64;
    let encode_speedup = mbps(streaming_secs) / mbps(batch_secs);

    println!(
        "=== audit codec gate ({} records, {:.0} raw KB, {SEGMENT_RECORDS}-record segments) ===",
        records.len(),
        raw_bytes / 1024.0
    );
    println!(
        "encode:  batch {:8.0} MB/s   streaming {:8.0} MB/s   ({encode_speedup:.2}x)",
        mbps(batch_secs),
        mbps(streaming_secs),
    );
    println!(
        "decode:  batch {:8.0} MB/s   streaming {:8.0} MB/s   ({:.2}x)",
        mbps(decode_batch_secs),
        mbps(decode_streaming_secs),
        mbps(decode_streaming_secs) / mbps(decode_batch_secs),
    );
    println!("ratio:   batch {batch_ratio:8.2}x        streaming {streaming_ratio:8.2}x");

    if streaming_ratio < batch_ratio {
        eprintln!(
            "codec gate FAILED: streaming ratio {streaming_ratio:.3}x regressed below the \
             batch baseline {batch_ratio:.3}x"
        );
        std::process::exit(1);
    }
    if encode_speedup < min_speedup {
        eprintln!(
            "codec gate FAILED: streaming encode is only {encode_speedup:.2}x the batch \
             baseline (required ≥ {min_speedup:.2}x)"
        );
        std::process::exit(1);
    }
    println!("codec gate OK (threshold {min_speedup:.2}x)");
}
