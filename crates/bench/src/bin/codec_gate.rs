//! CI gate for the audit-log codec: the streaming (format-v2) columnar
//! encoder must stay ≥ `SBT_CODEC_GATE_MIN`× (default 2×) faster than the
//! recorded legacy baseline — the batch (format-v1) codec re-measured on
//! the same machine, which anchors the gate to hardware-independent ground
//! truth — at an equal-or-better compression ratio, and both payloads must
//! round-trip.
//!
//! The gate measures two segment granularities:
//!
//! * **production** — the data plane's `audit_flush_threshold` default of
//!   256 records, where the streaming encoder's ~2.7× advantage lives and
//!   is gated at `SBT_CODEC_GATE_MIN`;
//! * **large-segment** — 16 K-record segments, formerly the ROADMAP's known
//!   gap (streaming encode was only ~1.1–1.3× v1 there). Entropy-code
//!   recycling across seals, incremental static-table costing at append
//!   time (against flat per-encoder code-length tables, not the shared
//!   lazy statics), and word-at-a-time varint/bitstream writes closed it
//!   to a measured ~1.45× median (1.30× worst case under host contention)
//!   on the reference box; the regime is gated at
//!   `SBT_CODEC_GATE_MIN_LARGE` (default 1.25×, under the measured worst
//!   case with margin) and recorded in the committed `BENCH_codec.json`,
//!   so further work tightens a number, not a guess.
//!
//! Per segment, the legacy codec re-walks the record batch and builds
//! per-column Huffman trees, while the streaming encoder has already
//! columnar-coded every field at append time and only entropy-codes the
//! byte columns against precomputed static tables at seal.
//!
//! Each regime also measures **cloud-side trail verification** over the
//! same stream — authenticate + decompress + stitch a multi-segment signed
//! trail — serially and fanned across an `Executor` pool
//! (`SBT_CODEC_GATE_VERIFY_WORKERS`, default 8). The parallel verifier must
//! reach `SBT_CODEC_GATE_VERIFY_PAR_MIN` × serial throughput (default 1.0×
//! on multi-core hosts; 0.9× on a single hardware thread, where the gate
//! can only bound orchestration overhead, not demonstrate speedup).
//!
//! Exits nonzero if:
//! * either codec fails to decode back to the input records (any regime);
//! * either verifier rejects a clean trail, or they disagree (any regime);
//! * the streaming compression ratio drops below the batch ratio;
//! * a regime's streaming encode speedup falls under its threshold;
//! * a regime's parallel-verify speedup falls under its threshold.
//!
//! Besides the verdict it writes `BENCH_codec.json` at the repo root — a
//! committed, machine-readable record of both regimes — plus the usual
//! copy under `target/evaluation/`.
//!
//! Run with `cargo run --release -p sbt_bench --bin codec_gate`.

use sbt_attest::{
    compress_records, decompress_records, verify_tenant_trail, verify_tenant_trail_parallel,
    AuditRecord, ColumnarEncoder, LogSegment,
};
use sbt_bench::{best_secs, synthetic_audit_records};
use sbt_crypto::{SigningKey, TenantKeychain};
use sbt_engine::Executor;
use sbt_types::TenantId;
use serde::Serialize;
use std::sync::Arc;

/// Records per segment: the data plane's default `audit_flush_threshold`.
const SEGMENT_RECORDS: usize = 256;
/// The large-segment regime where the streaming encoder's edge narrows.
const LARGE_SEGMENT_RECORDS: usize = 16 * 1024;

/// One (segment size) regime's measurements, serialized to
/// `BENCH_codec.json`.
#[derive(Serialize)]
struct RegimeRow {
    label: &'static str,
    segment_records: usize,
    records: usize,
    raw_kb: f64,
    batch_encode_mbps: f64,
    streaming_encode_mbps: f64,
    encode_speedup: f64,
    batch_decode_mbps: f64,
    streaming_decode_mbps: f64,
    decode_speedup: f64,
    batch_ratio: f64,
    streaming_ratio: f64,
    min_encode_speedup: f64,
    segments: usize,
    verify_serial_mbps: f64,
    verify_parallel_mbps: f64,
    verify_workers: usize,
    verify_speedup: f64,
    min_verify_speedup: f64,
}

#[derive(Serialize)]
struct CodecReport {
    generated_by: &'static str,
    regimes: Vec<RegimeRow>,
    pass: bool,
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

/// Round-trip, time and ratio one segment-size regime; exits on a
/// correctness failure, returns the measurements for gating.
fn run_regime(
    label: &'static str,
    records: &[AuditRecord],
    segment_records: usize,
    iters: u32,
    min_encode_speedup: f64,
    verify_workers: usize,
    min_verify_speedup: f64,
) -> RegimeRow {
    let raw_bytes = AuditRecord::raw_size(records) as f64;

    // Correctness first: both formats must round-trip exactly, segment by
    // segment.
    let mut encoder = ColumnarEncoder::with_capacity(segment_records);
    let mut batch_bytes = 0usize;
    let mut streaming_bytes = 0usize;
    for chunk in records.chunks(segment_records) {
        let batch_payload = compress_records(chunk);
        for r in chunk {
            encoder.append(r);
        }
        let streaming_payload = encoder.seal();
        batch_bytes += batch_payload.len();
        streaming_bytes += streaming_payload.len();
        for (name, payload) in
            [("batch(v1)", &batch_payload), ("streaming(v2)", &streaming_payload)]
        {
            match decompress_records(payload) {
                Ok(decoded) if decoded == chunk => {}
                Ok(_) => {
                    eprintln!("codec gate [{label}]: {name} segment decoded to different records");
                    std::process::exit(1);
                }
                Err(e) => {
                    eprintln!("codec gate [{label}]: {name} segment failed to decode: {e}");
                    std::process::exit(1);
                }
            }
        }
    }

    // Throughput at segment granularity; the streaming encoder is reused
    // across seals exactly as the audit log uses it (buffers warm). Batch
    // and streaming are timed in alternating rounds, keeping each codec's
    // best round: on a busy host the CPU's effective speed drifts even
    // within one process, so timing one codec to completion and then the
    // other can hand the second a faster (or slower) machine. Interleaving
    // lets both codecs sample the same speed neighborhoods, which is what
    // makes the *ratio* stable enough to gate tightly.
    let rounds = 5u32;
    let per_round = iters.div_ceil(rounds);
    let mut batch_secs = f64::INFINITY;
    let mut streaming_secs = f64::INFINITY;
    let mut out = Vec::new();
    for _ in 0..rounds {
        batch_secs = batch_secs.min(best_secs(per_round, || {
            for chunk in records.chunks(segment_records) {
                std::hint::black_box(compress_records(chunk));
            }
        }));
        streaming_secs = streaming_secs.min(best_secs(per_round, || {
            for chunk in records.chunks(segment_records) {
                for r in chunk {
                    encoder.append(r);
                }
                out.clear();
                encoder.seal_into(&mut out);
                std::hint::black_box(&out);
            }
        }));
    }

    // Decode throughput over the same segments.
    let batch_payloads: Vec<Vec<u8>> =
        records.chunks(segment_records).map(compress_records).collect();
    let streaming_payloads: Vec<Vec<u8>> = records
        .chunks(segment_records)
        .map(|chunk| {
            for r in chunk {
                encoder.append(r);
            }
            encoder.seal()
        })
        .collect();
    let mut decode_batch_secs = f64::INFINITY;
    let mut decode_streaming_secs = f64::INFINITY;
    for _ in 0..rounds {
        decode_batch_secs = decode_batch_secs.min(best_secs(per_round, || {
            for p in &batch_payloads {
                std::hint::black_box(decompress_records(p).expect("decodes"));
            }
        }));
        decode_streaming_secs = decode_streaming_secs.min(best_secs(per_round, || {
            for p in &streaming_payloads {
                std::hint::black_box(decompress_records(p).expect("decodes"));
            }
        }));
    }

    // Cloud-side trail verification over the same stream: sign each
    // streaming segment into a trail, then authenticate + decode + stitch it
    // serially and fanned over an `Executor` pool. Correctness first — both
    // verifiers must accept the trail and return the original records.
    let tenant = TenantId(1);
    let key = SigningKey::new(b"codec-gate-verify");
    let keychain = TenantKeychain::single(tenant.0, key.clone());
    let trail: Arc<Vec<LogSegment>> = Arc::new(
        records
            .chunks(segment_records)
            .zip(&streaming_payloads)
            .enumerate()
            .map(|(seq, (chunk, payload))| {
                LogSegment::new_signed(
                    tenant,
                    0,
                    seq as u64,
                    payload.clone(),
                    AuditRecord::raw_size(chunk),
                    chunk.len(),
                    &key,
                )
            })
            .collect(),
    );
    let pool = Executor::new(verify_workers);
    let serial_records = verify_tenant_trail(&trail, tenant, &keychain);
    let parallel_records = verify_tenant_trail_parallel(&trail, tenant, &keychain, &pool);
    match (&serial_records, &parallel_records) {
        (Ok(s), Ok(p)) if s == records && p == records => {}
        _ => {
            eprintln!(
                "codec gate [{label}]: trail verification diverged or rejected a clean trail \
                 (serial ok: {}, parallel ok: {})",
                serial_records.is_ok(),
                parallel_records.is_ok()
            );
            std::process::exit(1);
        }
    }
    let mut verify_serial_secs = f64::INFINITY;
    let mut verify_parallel_secs = f64::INFINITY;
    for _ in 0..rounds {
        verify_serial_secs = verify_serial_secs.min(best_secs(per_round, || {
            std::hint::black_box(
                verify_tenant_trail(&trail, tenant, &keychain).expect("trail verifies"),
            );
        }));
        verify_parallel_secs = verify_parallel_secs.min(best_secs(per_round, || {
            std::hint::black_box(
                verify_tenant_trail_parallel(&trail, tenant, &keychain, &pool)
                    .expect("trail verifies"),
            );
        }));
    }

    let mbps = |secs: f64| raw_bytes / secs / 1e6;
    RegimeRow {
        label,
        segment_records,
        records: records.len(),
        raw_kb: raw_bytes / 1024.0,
        batch_encode_mbps: mbps(batch_secs),
        streaming_encode_mbps: mbps(streaming_secs),
        encode_speedup: mbps(streaming_secs) / mbps(batch_secs),
        batch_decode_mbps: mbps(decode_batch_secs),
        streaming_decode_mbps: mbps(decode_streaming_secs),
        decode_speedup: mbps(decode_streaming_secs) / mbps(decode_batch_secs),
        batch_ratio: raw_bytes / batch_bytes as f64,
        streaming_ratio: raw_bytes / streaming_bytes as f64,
        min_encode_speedup,
        segments: trail.len(),
        verify_serial_mbps: mbps(verify_serial_secs),
        verify_parallel_mbps: mbps(verify_parallel_secs),
        verify_workers,
        verify_speedup: mbps(verify_parallel_secs) / mbps(verify_serial_secs),
        min_verify_speedup,
    }
}

fn main() {
    let iters: u32 =
        std::env::var("SBT_CODEC_GATE_ITERS").ok().and_then(|v| v.parse().ok()).unwrap_or(30);
    let min_speedup = env_f64("SBT_CODEC_GATE_MIN", 2.0);
    let min_large_speedup = env_f64("SBT_CODEC_GATE_MIN_LARGE", 1.25);
    let verify_workers = env_f64("SBT_CODEC_GATE_VERIFY_WORKERS", 8.0) as usize;
    // The parallel-verify floor depends on the machine: with one hardware
    // thread, fanning out cannot win and pool threads add scheduler jitter
    // — measured 0.85–1.09x serial across runs on the single-core
    // reference box — so the gate there only guards against pathological
    // orchestration overhead (within 20% of serial). On real multi-core
    // verifier hosts, parallel must be at least as fast as serial.
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let min_verify_speedup =
        env_f64("SBT_CODEC_GATE_VERIFY_PAR_MIN", if cores > 1 { 1.0 } else { 0.8 });

    // Production granularity: the stream the codec benches always measured.
    let records = synthetic_audit_records(50, 32);
    // Large segments: enough records for two full 16 K segments, so the
    // regime times steady-state large-segment seals, not one warm-up.
    let large_records = synthetic_audit_records(250, 32);

    let regimes = vec![
        run_regime(
            "production",
            &records,
            SEGMENT_RECORDS,
            iters,
            min_speedup,
            verify_workers,
            min_verify_speedup,
        ),
        run_regime(
            "large-segment",
            &large_records,
            LARGE_SEGMENT_RECORDS,
            iters,
            min_large_speedup,
            verify_workers,
            min_verify_speedup,
        ),
    ];

    let mut failures = Vec::new();
    for r in &regimes {
        println!(
            "=== audit codec gate [{}] ({} records, {:.0} raw KB, {}-record segments) ===",
            r.label, r.records, r.raw_kb, r.segment_records
        );
        println!(
            "encode:  batch {:8.0} MB/s   streaming {:8.0} MB/s   ({:.2}x, min {:.2}x)",
            r.batch_encode_mbps, r.streaming_encode_mbps, r.encode_speedup, r.min_encode_speedup,
        );
        println!(
            "decode:  batch {:8.0} MB/s   streaming {:8.0} MB/s   ({:.2}x)",
            r.batch_decode_mbps, r.streaming_decode_mbps, r.decode_speedup,
        );
        println!(
            "ratio:   batch {:8.2}x        streaming {:8.2}x",
            r.batch_ratio, r.streaming_ratio
        );
        println!(
            "verify:  serial {:7.0} MB/s   {}-worker {:9.0} MB/s   ({:.2}x, min {:.2}x, {} segments)",
            r.verify_serial_mbps,
            r.verify_workers,
            r.verify_parallel_mbps,
            r.verify_speedup,
            r.min_verify_speedup,
            r.segments,
        );

        if r.streaming_ratio < r.batch_ratio {
            failures.push(format!(
                "[{}] streaming ratio {:.3}x regressed below the batch baseline {:.3}x",
                r.label, r.streaming_ratio, r.batch_ratio
            ));
        }
        if r.encode_speedup < r.min_encode_speedup {
            failures.push(format!(
                "[{}] streaming encode is only {:.2}x the batch baseline (required ≥ {:.2}x)",
                r.label, r.encode_speedup, r.min_encode_speedup
            ));
        }
        if r.verify_speedup < r.min_verify_speedup {
            failures.push(format!(
                "[{}] {}-worker verify is only {:.2}x serial (required ≥ {:.2}x)",
                r.label, r.verify_workers, r.verify_speedup, r.min_verify_speedup
            ));
        }
    }

    let report = CodecReport {
        generated_by: "cargo run --release -p sbt_bench --bin codec_gate",
        regimes,
        pass: failures.is_empty(),
    };
    match serde_json::to_string_pretty(&report) {
        Ok(json) => {
            if let Err(e) = std::fs::write("BENCH_codec.json", json + "\n") {
                eprintln!("could not write BENCH_codec.json: {e}");
            } else {
                eprintln!("(codec record written to BENCH_codec.json)");
            }
        }
        Err(e) => eprintln!("could not serialize codec report: {e}"),
    }
    sbt_bench::dump_json("codec_gate", &report);

    if !report.pass {
        for f in &failures {
            eprintln!("codec gate FAILED: {f}");
        }
        std::process::exit(1);
    }
    println!("codec gate OK");
}
