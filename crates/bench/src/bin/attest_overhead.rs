//! §9.2 attestation overhead: audit-record generation rate on the edge,
//! record-generation cost, compression CPU share, and the cloud verifier's
//! replay rate (the paper measures 300–400 records/s on the edge, a few
//! hundred cycles per record, 0.2% CPU for compression, and ~57 K records/s
//! replayed per verifier core).
//!
//! Run with `cargo run --release -p sbt-bench --bin attest_overhead`.

use sbt_attest::record::AuditRecord;
use sbt_attest::{compress_records, decompress_records, Verifier};
use sbt_bench::{drive, print_table, BenchId, RunScale};
use sbt_engine::{Engine, EngineConfig, EngineVariant, StreamSide};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct AttestRow {
    bench: String,
    records_per_stream_sec: f64,
    compression_cpu_share_pct: f64,
    verifier_records_per_sec: f64,
    verification_correct: bool,
}

fn run(bench: BenchId, scale: RunScale) -> AttestRow {
    let engine = Engine::new(
        EngineConfig::for_variant(EngineVariant::Sbt, 8),
        bench.pipeline(scale.batch_events),
    );
    let chunks = bench.stream(scale.windows, scale.events_per_window, 42);
    let start = Instant::now();
    drive(&engine, chunks, EngineVariant::Sbt, scale.batch_events, StreamSide::Left);
    let edge_elapsed = start.elapsed();

    let segments = engine.drain_audit_segments();
    let records: Vec<AuditRecord> = segments
        .iter()
        .flat_map(|s| decompress_records(&s.compressed).expect("segment decodes"))
        .collect();

    // Compression CPU share: time to columnar-compress the records relative
    // to the whole edge run.
    let c_start = Instant::now();
    let _ = compress_records(&records);
    let compress_time = c_start.elapsed();

    // Verifier replay rate.
    let verifier = Verifier::new(engine.pipeline().spec());
    let v_start = Instant::now();
    let report = verifier.replay(&records);
    let verify_time = v_start.elapsed().as_secs_f64();

    AttestRow {
        bench: bench.name().to_string(),
        records_per_stream_sec: records.len() as f64 / scale.windows as f64,
        compression_cpu_share_pct: 100.0 * compress_time.as_secs_f64()
            / edge_elapsed.as_secs_f64().max(1e-9),
        verifier_records_per_sec: records.len() as f64 / verify_time.max(1e-9),
        verification_correct: report.is_correct(),
    }
}

fn main() {
    let scale = RunScale::from_env();
    let mut rows = Vec::new();
    let mut table = Vec::new();
    for bench in [BenchId::WinSum, BenchId::Power, BenchId::TopK] {
        let row = run(bench, scale);
        table.push(vec![
            row.bench.clone(),
            format!("{:.0}", row.records_per_stream_sec),
            format!("{:.2}%", row.compression_cpu_share_pct),
            format!("{:.0}", row.verifier_records_per_sec),
            row.verification_correct.to_string(),
        ]);
        rows.push(row);
    }
    print_table(
        "Attestation overhead (§9.2)",
        &[
            "benchmark",
            "audit records / stream-second",
            "compression CPU share",
            "verifier replay records/s",
            "verifies correct",
        ],
        &table,
    );
    println!(
        "\nExpectation from the paper: 300-400 records/s generated, compression costs ~0.2% CPU,\n\
         and a single verifier core replays ~57K records/s (enough for ~500 edge engines)."
    );
    sbt_bench::dump_json("attest_overhead", &rows);
}
