//! Where the streaming encoder spends its time at large (16 K-record)
//! segments: full append+seal (what `codec_gate` times), append-only
//! (seal skipped via `reset`), seal-only (the difference), a
//! dispatch-and-touch-every-field walk as the floor no encoder can beat,
//! and the v1 batch codec for scale. Not a gate — a diagnosis tool for
//! the large-segment regime `codec_gate` enforces.
//!
//! Run with `cargo run --release -p sbt_bench --bin codec_profile`.
use sbt_attest::{compress_records, AuditRecord, ColumnarEncoder};
use sbt_bench::{best_secs, synthetic_audit_records};

fn main() {
    let records = synthetic_audit_records(250, 32);
    let seg = 16 * 1024;
    let n = records.len();
    let raw = AuditRecord::raw_size(&records) as f64;
    let iters = 40;

    // Full append+seal into a reused buffer — the gate's loop.
    let mut enc = ColumnarEncoder::with_capacity(seg);
    let mut out = Vec::new();
    let full_secs = best_secs(iters, || {
        for chunk in records.chunks(seg) {
            for r in chunk {
                enc.append(r);
            }
            out.clear();
            enc.seal_into(&mut out);
        }
    });

    // Append-only: same appends, `reset` wipes the columns without the
    // entropy stage, so full minus this is the seal cost.
    let mut enc2 = ColumnarEncoder::with_capacity(seg);
    let append_only_secs = best_secs(iters, || {
        for chunk in records.chunks(seg) {
            for r in chunk {
                enc2.append(r);
            }
            enc2.reset();
        }
    });

    // Walk floor: dispatch every record and touch every field, no encoding.
    let walk_secs = best_secs(iters, || {
        let mut acc = 0u64;
        for r in &records {
            match r {
                AuditRecord::Ingress { ts_ms, data } => {
                    acc = acc.wrapping_add(*ts_ms as u64);
                    match data {
                        sbt_attest::DataRef::UArray(id) => acc = acc.wrapping_add(id.0 as u64),
                        sbt_attest::DataRef::Watermark(wm) => acc = acc.wrapping_add(*wm as u64),
                    }
                }
                AuditRecord::Egress { ts_ms, data } => {
                    acc = acc.wrapping_add(*ts_ms as u64 + data.0 as u64);
                }
                AuditRecord::Windowing { ts_ms, input, win_no, output } => {
                    acc = acc
                        .wrapping_add(*ts_ms as u64 + input.0 as u64 + output.0 as u64)
                        .wrapping_add(*win_no as u64);
                }
                AuditRecord::Execution { ts_ms, op, inputs, outputs, hints } => {
                    acc = acc.wrapping_add(*ts_ms as u64 + op.code() as u64);
                    for i in inputs.iter() {
                        acc = acc.wrapping_add(i.0 as u64);
                    }
                    for o in outputs.iter() {
                        acc = acc.wrapping_add(o.0 as u64);
                    }
                    for h in hints.iter() {
                        acc = acc.wrapping_add(*h);
                    }
                }
                AuditRecord::Rekey { ts_ms, epoch } => {
                    acc = acc.wrapping_add(*ts_ms as u64 + *epoch as u64);
                }
                AuditRecord::Departure { ts_ms, .. } => acc = acc.wrapping_add(*ts_ms as u64),
                AuditRecord::Checkpoint { ts_ms, seq, hash, .. } => {
                    acc = acc.wrapping_add(*ts_ms as u64 + *seq).wrapping_add(hash[0] as u64);
                }
            }
        }
        std::hint::black_box(acc);
    });

    let v1_secs = best_secs(iters, || {
        for chunk in records.chunks(seg) {
            std::hint::black_box(compress_records(chunk));
        }
    });

    println!("records {n}, raw {:.0} KB", raw / 1024.0);
    println!(
        "v2 append+seal: {:.3} ms  ({:.0} MB/s, {:.1} ns/rec)",
        full_secs * 1e3,
        raw / full_secs / 1e6,
        full_secs * 1e9 / n as f64
    );
    println!(
        "v2 append-only: {:.3} ms  ({:.0} MB/s, {:.1} ns/rec)",
        append_only_secs * 1e3,
        raw / append_only_secs / 1e6,
        append_only_secs * 1e9 / n as f64
    );
    println!(
        "v2 seal-only:   {:.3} ms  ({:.1} ns/rec)",
        (full_secs - append_only_secs) * 1e3,
        (full_secs - append_only_secs) * 1e9 / n as f64
    );
    println!(
        "walk floor:     {:.3} ms  ({:.1} ns/rec)",
        walk_secs * 1e3,
        walk_secs * 1e9 / n as f64
    );
    println!(
        "v1 batch:       {:.3} ms  ({:.0} MB/s, {:.1} ns/rec)",
        v1_secs * 1e3,
        raw / v1_secs / 1e6,
        v1_secs * 1e9 / n as f64
    );
}
