//! §9.3 trusted-primitive vectorization: replacing the lane-parallel Sort
//! kernel that underpins GroupBy with generic comparison sorts (a libc-style
//! qsort and std::sort) drops GroupBy throughput — the paper measures up to
//! 7x (qsort) and 2x (std::sort).
//!
//! The same lesson applies to the TEE boundary's cipher: the second table
//! compares the vectorized AES-CTR hot loop (four blocks per iteration
//! through the word-parallel round tables, keystream consumed with whole-
//! word XORs) against the byte-at-a-time single-block reference.
//!
//! Run with `cargo run --release -p sbt_bench --bin vectorization`.

use sbt_bench::print_table;
use sbt_crypto::AesCtr;
use sbt_primitives::{sort_events_by_key, sum_count_per_key};
use sbt_types::Event;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct SortRow {
    implementation: String,
    groupby_mevents_per_sec: f64,
    slowdown_vs_vectorized: f64,
}

/// A deliberately generic, callback-driven quicksort standing in for libc's
/// `qsort`: every comparison goes through an opaque function pointer on
/// byte buffers, which is exactly why `qsort` cannot be inlined or
/// vectorized.
fn qsort_like(events: &mut [Event], cmp: fn(&[u8], &[u8]) -> std::cmp::Ordering) {
    if events.len() <= 1 {
        return;
    }
    let pivot = events[events.len() / 2].to_bytes();
    let (mut left, mut right): (Vec<Event>, Vec<Event>) = (Vec::new(), Vec::new());
    let mut equal = Vec::new();
    for e in events.iter() {
        match cmp(&e.to_bytes(), &pivot) {
            std::cmp::Ordering::Less => left.push(*e),
            std::cmp::Ordering::Equal => equal.push(*e),
            std::cmp::Ordering::Greater => right.push(*e),
        }
    }
    qsort_like(&mut left, cmp);
    qsort_like(&mut right, cmp);
    for (i, e) in left.into_iter().chain(equal).chain(right).enumerate() {
        events[i] = e;
    }
}

fn key_cmp(a: &[u8], b: &[u8]) -> std::cmp::Ordering {
    let ka = u32::from_le_bytes(a[0..4].try_into().unwrap());
    let kb = u32::from_le_bytes(b[0..4].try_into().unwrap());
    ka.cmp(&kb)
}

/// GroupBy = sort by key + per-key aggregation, timed over `iters` batches.
fn groupby_throughput(
    events: &[Event],
    iters: usize,
    sort: impl Fn(&[Event]) -> Vec<Event>,
) -> f64 {
    let start = Instant::now();
    let mut sink = 0u64;
    for _ in 0..iters {
        let sorted = sort(events);
        let aggs = sum_count_per_key(&sorted);
        sink = sink.wrapping_add(aggs.len() as u64);
    }
    let elapsed = start.elapsed().as_secs_f64();
    std::hint::black_box(sink);
    (events.len() * iters) as f64 / 1e6 / elapsed
}

#[derive(Serialize)]
struct CtrRow {
    implementation: String,
    mb_per_sec: f64,
    speedup_vs_scalar: f64,
}

/// Throughput of one CTR keystream application over `buf`, in MB/s.
fn ctr_throughput(ctr: &AesCtr, buf: &mut [u8], iters: usize, batched: bool) -> f64 {
    let start = Instant::now();
    for i in 0..iters {
        if batched {
            ctr.apply_keystream_at(buf, i as u32);
        } else {
            ctr.apply_keystream_scalar_at(buf, i as u32);
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    std::hint::black_box(&buf[0]);
    (buf.len() * iters) as f64 / 1e6 / elapsed
}

fn ctr_comparison(full: bool) -> Vec<CtrRow> {
    let ctr = AesCtr::new(&[7u8; 16], &[9u8; 16]);
    let mut buf = vec![0xA5u8; if full { 4 << 20 } else { 1 << 20 }];
    let iters = if full { 32 } else { 8 };
    let batched = ctr_throughput(&ctr, &mut buf, iters, true);
    let scalar = ctr_throughput(&ctr, &mut buf, iters, false);
    vec![
        CtrRow {
            implementation: "vectorized CTR (4 blocks/iter, word XOR)".to_string(),
            mb_per_sec: batched,
            speedup_vs_scalar: batched / scalar,
        },
        CtrRow {
            implementation: "scalar CTR (1 block/iter, byte XOR)".to_string(),
            mb_per_sec: scalar,
            speedup_vs_scalar: 1.0,
        },
    ]
}

fn main() {
    let full = std::env::var("SBT_FULL").map(|v| v == "1").unwrap_or(false);
    let n: usize = if full { 1_000_000 } else { 200_000 };
    let iters = if full { 5 } else { 10 };
    let events: Vec<Event> = (0..n)
        .map(|i| Event::new(((i as u64 * 2654435761) % 1000) as u32, (i % 65536) as u32, 0))
        .collect();

    let vectorized = groupby_throughput(&events, iters, sort_events_by_key);
    let std_sort = groupby_throughput(&events, iters, |e| {
        let mut v = e.to_vec();
        v.sort_by_key(|ev| ev.key);
        v
    });
    let qsort = groupby_throughput(&events, iters, |e| {
        let mut v = e.to_vec();
        qsort_like(&mut v, key_cmp);
        v
    });

    let rows = vec![
        SortRow {
            implementation: "vectorized Sort (StreamBox-TZ)".to_string(),
            groupby_mevents_per_sec: vectorized,
            slowdown_vs_vectorized: 1.0,
        },
        SortRow {
            implementation: "std::sort-style".to_string(),
            groupby_mevents_per_sec: std_sort,
            slowdown_vs_vectorized: vectorized / std_sort,
        },
        SortRow {
            implementation: "qsort-style (callback compare)".to_string(),
            groupby_mevents_per_sec: qsort,
            slowdown_vs_vectorized: vectorized / qsort,
        },
    ];
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.implementation.clone(),
                format!("{:.2}", r.groupby_mevents_per_sec),
                format!("{:.1}x", r.slowdown_vs_vectorized),
            ]
        })
        .collect();
    print_table(
        &format!("§9.3 — GroupBy throughput by Sort implementation ({n} events/batch)"),
        &["sort implementation", "GroupBy Mevents/s", "slowdown vs vectorized"],
        &table,
    );
    println!("\nExpectation from the paper: qsort up to ~7x slower, std::sort up to ~2x slower.");

    let ctr_rows = ctr_comparison(full);
    let ctr_table: Vec<Vec<String>> = ctr_rows
        .iter()
        .map(|r| {
            vec![
                r.implementation.clone(),
                format!("{:.1}", r.mb_per_sec),
                format!("{:.2}x", r.speedup_vs_scalar),
            ]
        })
        .collect();
    print_table(
        "AES-CTR keystream throughput (TEE ingress/egress hot loop)",
        &["ctr implementation", "MB/s", "speedup vs scalar"],
        &ctr_table,
    );
    sbt_bench::dump_json("vectorization", &rows);
    sbt_bench::dump_json("vectorization_ctr", &ctr_rows);
}
