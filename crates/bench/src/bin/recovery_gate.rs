//! CI gate for crash recovery: checkpoints must be cheap enough to take
//! continuously, and restores fast enough that a replacement server is
//! serving again within a checkpoint interval.
//!
//! Three measurements:
//!
//! * **recovery time vs state size** — seal and restore snapshots whose
//!   buffered (unfired) state spans ~2 K to ~32 K events, recording sealed
//!   bytes, checkpoint latency and restore latency per size. Informational:
//!   the committed numbers anchor the ROADMAP's recovery story to the
//!   machine that produced them.
//! * **replay-suffix throughput** — a full kill-and-restart cycle (serve
//!   half the stream, checkpoint, crash, restore on a replacement server),
//!   timing the replayed suffix against an uninterrupted serve of the same
//!   stream. Replay does the same work as fresh serving, so its throughput
//!   must stay ≥ `SBT_RECOVERY_GATE_REPLAY_MIN` × the uninterrupted rate
//!   (default 0.5×, a generous floor for host noise — the measured ratio is
//!   ~1×).
//! * **checkpoint overhead, boundary-dominated regime** — the same
//!   small-batch stream (many world switches per window, where the paper's
//!   SMC crossing cost dominates) served with no checkpoint policy and with
//!   a policy that checkpoints every `CKPT_EVERY_WINDOWS` windows. The
//!   policy run's amortized checkpoints — taken at quiescent post-fire
//!   points, one extra crossing plus a seal of the buffered state each —
//!   must cost ≤ `SBT_RECOVERY_GATE_MAX_OVERHEAD` (default 5%) over the
//!   plain run. See `CKPT_EVERY_WINDOWS` for why the interval, not the
//!   seal, is the knob that makes 5% honest.
//!
//! Timings interleave the compared variants round-robin and keep each
//! variant's best round, for the same reason the codec gate does: on a busy
//! host the effective CPU speed drifts, and interleaving lets both variants
//! sample the same speed neighborhoods so the *ratio* is stable enough to
//! gate tightly.
//!
//! Exits nonzero if the policy run takes no checkpoints, a restore fails or
//! changes the output, or either gated ratio misses its floor. Writes
//! `BENCH_recovery.json` at the repo root — a committed, machine-readable
//! record — plus the usual copy under `target/evaluation/`.
//!
//! Run with `cargo run --release -p sbt_bench --bin recovery_gate`.

use sbt_crypto::MasterSecret;
use sbt_engine::{Operator, Pipeline, StreamSide};
use sbt_server::{ServerConfig, StreamServer, TenantConfig, TenantStream};
use sbt_workloads::datasets::{multi_tenant_streams, StreamChunk};
use sbt_workloads::generator::{Generator, GeneratorConfig};
use sbt_workloads::transport::Channel;
use serde::Serialize;
use std::time::Instant;

const QUOTA: u64 = 32 * 1024 * 1024;
/// Small batches: many SMC crossings per window, the boundary-dominated
/// regime the overhead gate targets.
const BATCH: usize = 128;
const WINDOWS: u32 = 48;
const EVENTS_PER_WINDOW: usize = 4_000;
/// Checkpoint interval for the overhead regime, in windows. The physics:
/// sealing a snapshot (SHA-256 + AES + HMAC over the buffered events, which
/// pipelining keeps at up to one in-progress window) runs at roughly twice
/// the full pipeline's ingest rate, so one checkpoint costs ~¼–½ of one
/// window's streaming work and the overhead is ~(0.25..0.5)/interval.
/// Checkpointing every window would honestly cost 25–50% in this regime —
/// ≤ 5% needs an interval of ≥ ~10 windows. 24 targets ~1–2% with margin
/// for host noise.
const CKPT_EVERY_WINDOWS: usize = 24;

#[derive(Serialize)]
struct StateRow {
    buffered_events: usize,
    sealed_kb: f64,
    checkpoint_ms: f64,
    restore_ms: f64,
    restore_mbps: f64,
}

#[derive(Serialize)]
struct ReplayRow {
    suffix_events: usize,
    uninterrupted_kevps: f64,
    replay_kevps: f64,
    replay_ratio: f64,
    min_replay_ratio: f64,
}

#[derive(Serialize)]
struct OverheadRow {
    batch_events: usize,
    checkpoints_taken: u64,
    plain_secs: f64,
    checkpointed_secs: f64,
    overhead: f64,
    max_overhead: f64,
}

#[derive(Serialize)]
struct RecoveryReport {
    generated_by: &'static str,
    state: Vec<StateRow>,
    replay: ReplayRow,
    overhead: OverheadRow,
    pass: bool,
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

fn pipeline(name: &str) -> Pipeline {
    Pipeline::new(name).then(Operator::WindowSum).target_delay_ms(60_000).batch_events(BATCH)
}

fn stream(tenant: sbt_types::TenantId, chunks: &[StreamChunk]) -> TenantStream {
    TenantStream {
        tenant,
        generator: Generator::new(
            GeneratorConfig { batch_events: BATCH },
            Channel::for_tenant(&MasterSecret::demo(), tenant, 0),
            chunks.to_vec(),
        ),
    }
}

/// Seal + restore a snapshot holding `events` buffered (unfired) events;
/// best-of-`rounds` latency on each side.
fn state_row(events: usize, rounds: u32) -> StateRow {
    let mut checkpoint_secs = f64::INFINITY;
    let mut restore_secs = f64::INFINITY;
    let mut sealed_bytes = 0usize;
    for _ in 0..rounds {
        let server = StreamServer::new(ServerConfig::default().with_cores(2));
        let t = server.admit(TenantConfig::new("state", QUOTA), pipeline("state")).unwrap();
        let chunk = &multi_tenant_streams(1, 1, events, 16, 11)[0][0];
        let engine = server.engine(t).unwrap();
        let mut ch = Channel::for_tenant(&MasterSecret::demo(), t, 0);
        // Ingest without a watermark: nothing fires, the whole window sits
        // buffered in TEE memory and lands in the snapshot.
        for batch in chunk.events.chunks(512) {
            let sub = StreamChunk {
                events: batch.to_vec(),
                power_events: Vec::new(),
                watermark: chunk.watermark,
            };
            engine.ingest_on(&ch.send(&sub), StreamSide::Left).unwrap();
        }
        let t0 = Instant::now();
        let receipt = server.checkpoint(t).unwrap();
        checkpoint_secs = checkpoint_secs.min(t0.elapsed().as_secs_f64());
        sealed_bytes = receipt.sealed_bytes;
        let vault = server.vault().clone();
        drop(server);
        let replacement =
            StreamServer::new(ServerConfig::default().with_cores(2).with_vault(vault));
        let t0 = Instant::now();
        replacement
            .restore_tenant(t, TenantConfig::new("state", QUOTA), pipeline("state"), 0)
            .unwrap();
        restore_secs = restore_secs.min(t0.elapsed().as_secs_f64());
    }
    StateRow {
        buffered_events: events,
        sealed_kb: sealed_bytes as f64 / 1024.0,
        checkpoint_ms: checkpoint_secs * 1e3,
        restore_ms: restore_secs * 1e3,
        restore_mbps: sealed_bytes as f64 / restore_secs / 1e6,
    }
}

fn main() {
    let rounds: u32 =
        std::env::var("SBT_RECOVERY_GATE_ITERS").ok().and_then(|v| v.parse().ok()).unwrap_or(11);
    let max_overhead = env_f64("SBT_RECOVERY_GATE_MAX_OVERHEAD", 0.05);
    let min_replay_ratio = env_f64("SBT_RECOVERY_GATE_REPLAY_MIN", 0.5);

    let mut failures: Vec<String> = Vec::new();
    let all = multi_tenant_streams(1, WINDOWS, EVENTS_PER_WINDOW, 16, 42).remove(0);

    // --- recovery time vs state size ------------------------------------
    let state: Vec<StateRow> =
        [2_000usize, 8_000, 32_000].iter().map(|&e| state_row(e, rounds.min(3))).collect();

    // --- replay-suffix throughput + checkpoint overhead, interleaved ----
    // Round-robin the three variants (plain serve, checkpoint-policy serve,
    // kill-and-restart replay) so each samples the same host-speed
    // neighborhoods; keep each variant's best round.
    let cut = WINDOWS as usize / 2;
    let suffix_events: usize = all[cut..].iter().map(|c| c.len()).sum();
    let total_events: usize = all.iter().map(|c| c.len()).sum();
    let mut plain_secs = f64::INFINITY;
    let mut ckpt_secs = f64::INFINITY;
    let mut replay_secs = f64::INFINITY;
    // Paired (same-round) checkpointed/plain ratios: adjacent runs see the
    // same host speed, so the pairing cancels drift that independent
    // best-of minima can't. Gated on the median — min would be negatively
    // biased (it always finds one lucky round), mean is an outlier magnet.
    let mut paired_ratios: Vec<f64> = Vec::new();
    let mut checkpoints_taken = 0u64;
    let mut oracle: Vec<u64> = Vec::new();
    let mut replayed: Vec<u64> = Vec::new();
    for _ in 0..rounds {
        // Plain: no checkpoint policy.
        let server = StreamServer::new(ServerConfig::default().with_cores(2));
        let t = server.admit(TenantConfig::new("plain", QUOTA), pipeline("plain")).unwrap();
        let t0 = Instant::now();
        server.serve(vec![stream(t, &all)]).unwrap();
        let round_plain = t0.elapsed().as_secs_f64();
        plain_secs = plain_secs.min(round_plain);
        let chain = server.verifier_keys(t).unwrap();
        oracle = server
            .engine(t)
            .unwrap()
            .results()
            .iter()
            .map(|m| {
                let plain = m.open_with(chain.latest()).unwrap();
                u64::from_le_bytes(plain[..8].try_into().unwrap())
            })
            .collect();

        // Checkpointed: one amortized checkpoint per window.
        let server = StreamServer::new(ServerConfig::default().with_cores(2));
        let t = server
            .admit(
                TenantConfig::new("ckpt", QUOTA)
                    .with_checkpoint_every_records((CKPT_EVERY_WINDOWS * EVENTS_PER_WINDOW) as u64),
                pipeline("ckpt"),
            )
            .unwrap();
        let t0 = Instant::now();
        let report = server.serve(vec![stream(t, &all)]).unwrap();
        let round_ckpt = t0.elapsed().as_secs_f64();
        ckpt_secs = ckpt_secs.min(round_ckpt);
        paired_ratios.push(round_ckpt / round_plain);
        checkpoints_taken = report.per_tenant[0].checkpoints_taken;

        // Kill-and-restart: serve the prefix, checkpoint, crash, restore on
        // a replacement, time the replayed suffix.
        let server = StreamServer::new(ServerConfig::default().with_cores(2));
        let t = server.admit(TenantConfig::new("replay", QUOTA), pipeline("replay")).unwrap();
        server.serve(vec![stream(t, &all[..cut])]).unwrap();
        server.checkpoint(t).unwrap();
        let vault = server.vault().clone();
        drop(server);
        let replacement =
            StreamServer::new(ServerConfig::default().with_cores(2).with_vault(vault));
        let restored = replacement
            .restore_tenant(t, TenantConfig::new("replay", QUOTA), pipeline("replay"), 0)
            .unwrap();
        let fired = restored.next_unexecuted as usize;
        let t0 = Instant::now();
        replacement.serve(vec![stream(t, &all[fired..])]).unwrap();
        replay_secs = replay_secs.min(t0.elapsed().as_secs_f64());
        let chain = replacement.verifier_keys(t).unwrap();
        replayed = replacement
            .engine(t)
            .unwrap()
            .results()
            .iter()
            .map(|m| {
                let plain = m.open_with(chain.latest()).unwrap();
                u64::from_le_bytes(plain[..8].try_into().unwrap())
            })
            .collect();
        if fired != cut {
            failures.push(format!(
                "restore resumed at window {fired}, expected the checkpoint cut {cut}"
            ));
        }
    }
    if replayed != oracle[cut..] {
        failures.push("replayed suffix output diverged from the uninterrupted run".to_string());
    }
    if checkpoints_taken == 0 {
        failures.push("checkpoint policy took no checkpoints during serve".to_string());
    }

    let uninterrupted_kevps = total_events as f64 / plain_secs / 1e3;
    let replay_kevps = suffix_events as f64 / replay_secs / 1e3;
    // Replay throughput against the uninterrupted per-event rate.
    let replay_ratio = replay_kevps / uninterrupted_kevps;
    paired_ratios.sort_by(|a, b| a.total_cmp(b));
    let overhead = paired_ratios[paired_ratios.len() / 2] - 1.0;

    println!("=== recovery gate ===");
    println!("state size -> recovery:");
    for r in &state {
        println!(
            "  {:6} buffered events  {:8.1} sealed KB   checkpoint {:6.2} ms   restore {:6.2} ms ({:.0} MB/s)",
            r.buffered_events, r.sealed_kb, r.checkpoint_ms, r.restore_ms, r.restore_mbps
        );
    }
    println!(
        "replay:  uninterrupted {uninterrupted_kevps:7.0} Kev/s   replayed suffix {replay_kevps:7.0} Kev/s   ({replay_ratio:.2}x, min {min_replay_ratio:.2}x)"
    );
    println!(
        "ckpt:    plain {:.4} s   checkpointed {:.4} s   overhead {:+.2}% over {} checkpoints (max {:.0}%)",
        plain_secs,
        ckpt_secs,
        overhead * 100.0,
        checkpoints_taken,
        max_overhead * 100.0
    );

    if replay_ratio < min_replay_ratio {
        failures.push(format!(
            "replay throughput is only {replay_ratio:.2}x uninterrupted (required ≥ {min_replay_ratio:.2}x)"
        ));
    }
    if overhead > max_overhead {
        failures.push(format!(
            "checkpointing costs {:.2}% over the plain run (allowed ≤ {:.2}%)",
            overhead * 100.0,
            max_overhead * 100.0
        ));
    }

    let report = RecoveryReport {
        generated_by: "cargo run --release -p sbt_bench --bin recovery_gate",
        state,
        replay: ReplayRow {
            suffix_events,
            uninterrupted_kevps,
            replay_kevps,
            replay_ratio,
            min_replay_ratio,
        },
        overhead: OverheadRow {
            batch_events: BATCH,
            checkpoints_taken,
            plain_secs,
            checkpointed_secs: ckpt_secs,
            overhead,
            max_overhead,
        },
        pass: failures.is_empty(),
    };
    match serde_json::to_string_pretty(&report) {
        Ok(json) => {
            if let Err(e) = std::fs::write("BENCH_recovery.json", json + "\n") {
                eprintln!("could not write BENCH_recovery.json: {e}");
            } else {
                eprintln!("(recovery record written to BENCH_recovery.json)");
            }
        }
        Err(e) => eprintln!("could not serialize recovery report: {e}"),
    }
    sbt_bench::dump_json("recovery_gate", &report);

    if !report.pass {
        for f in &failures {
            eprintln!("recovery gate FAILED: {f}");
        }
        std::process::exit(1);
    }
    println!("recovery gate OK");
}
