//! Figure 10: TEE memory usage with and without consumption hints, for the
//! Filter, WinSum and TopK benchmarks (the no-hint allocator places all
//! outputs of the same producer in one uGroup and uses up to ~35% more
//! memory).
//!
//! Run with `cargo run --release -p sbt-bench --bin fig10_hints`.

use sbt_bench::{drive, print_table, BenchId, RunScale};
use sbt_engine::{Engine, EngineConfig, EngineVariant, StreamSide};
use serde::Serialize;

#[derive(Serialize)]
struct HintRow {
    bench: String,
    with_hints_mb: f64,
    without_hints_mb: f64,
    increase_pct: f64,
}

fn run(bench: BenchId, scale: RunScale, use_hints: bool) -> (f64, f64) {
    let mut config = EngineConfig::for_variant(EngineVariant::Sbt, 8);
    if !use_hints {
        config = config.without_hints();
    }
    let engine = Engine::new(config, bench.pipeline(scale.batch_events));
    let chunks = bench.stream(scale.windows, scale.events_per_window, 42);
    drive(&engine, chunks, EngineVariant::Sbt, scale.batch_events, StreamSide::Left);
    let m = engine.metrics();
    (m.avg_memory_bytes() as f64 / 1e6, m.peak_memory_bytes as f64 / 1e6)
}

fn main() {
    let scale = RunScale::from_env();
    let benches = [BenchId::Filter, BenchId::WinSum, BenchId::TopK];
    let mut rows = Vec::new();
    let mut table = Vec::new();
    for bench in benches {
        let (_, with_peak) = run(bench, scale, true);
        let (_, without_peak) = run(bench, scale, false);
        let increase = 100.0 * (without_peak / with_peak.max(0.001) - 1.0);
        table.push(vec![
            bench.name().to_string(),
            format!("{:.1}", with_peak),
            format!("{:.1}", without_peak),
            format!("{:+.1}%", increase),
        ]);
        rows.push(HintRow {
            bench: bench.name().to_string(),
            with_hints_mb: with_peak,
            without_hints_mb: without_peak,
            increase_pct: increase,
        });
    }
    print_table(
        "Figure 10 — peak TEE memory with vs without consumption hints (8 cores)",
        &["benchmark", "with hints (MB)", "w/o hints (MB)", "increase"],
        &table,
    );
    println!("\nExpectation from the paper: the hint-less allocator uses up to ~35% more memory.");
    sbt_bench::dump_json("fig10_hints", &rows);
}
