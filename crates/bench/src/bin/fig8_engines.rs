//! Figure 8: StreamBox-TZ versus commodity insecure engines (Flink-like,
//! Esper-like, SensorBee-like) on windowed aggregation (WinSum), reported as
//! MB/s on a log scale in the paper.
//!
//! Run with `cargo run --release -p sbt-bench --bin fig8_engines`.

use sbt_baselines::{CommodityEngine, CommodityKind};
use sbt_bench::{print_table, run_benchmark, BenchId, RunScale};
use sbt_engine::EngineVariant;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct EngineRow {
    engine: String,
    mb_per_sec: f64,
    mevents_per_sec: f64,
}

fn main() {
    let scale = RunScale::from_env();
    let cores = 8;
    let mut rows: Vec<EngineRow> = Vec::new();

    // StreamBox-TZ (full variant, encrypted ingress) on the WinSum pipeline,
    // plus the ClearIngress variant: the paper's HiKey decrypts with NEON
    // crypto instructions, which this repository's portable software AES
    // cannot match, so the ClearIngress row shows the engine's throughput
    // when ingress decryption is not the bottleneck.
    let sbt = run_benchmark(BenchId::WinSum, EngineVariant::Sbt, cores, scale);
    rows.push(EngineRow {
        engine: "StreamBox-TZ".to_string(),
        mb_per_sec: sbt.mb_per_sec,
        mevents_per_sec: sbt.mevents_per_sec,
    });
    let clear = run_benchmark(BenchId::WinSum, EngineVariant::SbtClearIngress, cores, scale);
    rows.push(EngineRow {
        engine: "StreamBox-TZ (ClearIngress)".to_string(),
        mb_per_sec: clear.mb_per_sec,
        mevents_per_sec: clear.mevents_per_sec,
    });

    // Commodity engines run the same event stream directly (cleartext, no
    // TEE — they are the insecure comparison points).
    let chunks = BenchId::WinSum.stream(scale.windows, scale.events_per_window, 42);
    let events: Vec<sbt_types::Event> =
        chunks.iter().flat_map(|c| c.events.iter().copied()).collect();
    let bytes = (events.len() * sbt_types::EVENT_BYTES) as f64;
    for kind in [CommodityKind::FlinkLike, CommodityKind::EsperLike, CommodityKind::SensorBeeLike] {
        let engine = CommodityEngine::new(kind, cores);
        let start = Instant::now();
        let sums = engine.run_winsum(&events);
        let elapsed = start.elapsed().as_secs_f64();
        assert_eq!(sums.len(), scale.windows as usize);
        rows.push(EngineRow {
            engine: kind.label().to_string(),
            mb_per_sec: bytes / 1e6 / elapsed,
            mevents_per_sec: events.len() as f64 / 1e6 / elapsed,
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.engine.clone(),
                format!("{:.1}", r.mb_per_sec),
                format!("{:.2}", r.mevents_per_sec),
            ]
        })
        .collect();
    print_table(
        "Figure 8 — WinSum throughput, StreamBox-TZ vs commodity engines (8 cores)",
        &["engine", "MB/s", "Mevents/s"],
        &table,
    );
    let sbt_mb = rows[0].mb_per_sec;
    for r in rows.iter().skip(1) {
        println!("StreamBox-TZ / {}: {:.1}x", r.engine, sbt_mb / r.mb_per_sec);
    }
    sbt_bench::dump_json("fig8_engines", &rows);
}
