//! Multi-tenant server scaling: aggregate throughput and per-tenant output
//! delay as the number of pipelines multiplexed over one shared TEE grows —
//! swept across serving disciplines.
//!
//! For each scheduler in `SBT_SCHED` (default `wrr,drr`) and each tenant
//! count N in `SBT_TENANTS` (default `1,4,16`), the harness brings up one
//! `StreamServer` (one platform, one data plane, one work-stealing
//! executor), admits N tenants — each with a WinSum pipeline, an equal
//! share of the secure carve-out as its quota, and weight 1 — and serves
//! every tenant an independent stream with a disjoint key range, encrypted
//! under the tenant's own derived source key. After the run it reports
//! aggregate throughput and per-tenant delays, and verifies each tenant's
//! audit trail independently under the tenant's keychain (tenant tag, epoch,
//! signatures, segment sequence, then symbolic replay against the tenant's
//! declared pipeline). Trail authentication fans out over a verifier-side
//! executor pool — the cloud verifier's own machine, not the enclave's —
//! falling back to the serial walk for trails below the fan-out floor.
//!
//! When both schedulers are swept, the run **fails** (exit 1) if deficit
//! round-robin's aggregate throughput regresses more than 10% below the
//! weighted-round-robin barrier baseline at any tenant count — the CI gate
//! for the executor + DRR substrate.
//!
//! `SBT_CHURN=1` switches to the **churn scenario**: tenants are admitted,
//! served a window, then one is evicted, one rekeyed, one quota-resized and
//! a newcomer admitted into the freed reservation mid-sweep; a second
//! window is served and *every* trail — including the departed tenant's —
//! must verify under its keychain, or the run exits nonzero.
//!
//! Run with `cargo run --release -p sbt_bench --bin fig_server_scaling`.
//! `SBT_TENANTS=1,4,16` overrides the sweep; `SBT_SCHED=drr` picks one
//! scheduler; `SBT_FULL=1` scales the streams up.

use sbt_attest::{verify_tenant_trail_parallel, LogSegment, Verifier};
use sbt_bench::{dump_json, print_table};
use sbt_crypto::MasterSecret;
use sbt_engine::Executor;
use sbt_engine::{Operator, Pipeline};
use sbt_server::{Scheduler, ServerConfig, StreamServer, TenantConfig, TenantStream};
use sbt_types::TenantId;
use sbt_workloads::datasets::multi_tenant_streams;
use sbt_workloads::generator::{Generator, GeneratorConfig};
use sbt_workloads::transport::Channel;
use serde::Serialize;
use std::sync::Arc;

#[derive(Serialize)]
struct ScalingRow {
    scheduler: String,
    tenants: usize,
    aggregate_mevents_per_sec: f64,
    events: u64,
    avg_delay_ms: f64,
    max_delay_ms: f64,
    backpressure_signals: u64,
    rejected_batches: u64,
    trails_verified: usize,
    /// Per-tenant watermark-to-window-emit latency quantiles from the
    /// telemetry histograms (tracing is enabled for the whole sweep).
    window_emit_latencies: Vec<sbt_telemetry::TenantLatencyRow>,
}

fn sweep_from_env() -> Vec<usize> {
    std::env::var("SBT_TENANTS")
        .ok()
        .map(|s| s.split(',').filter_map(|t| t.trim().parse().ok()).collect())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![1, 4, 16])
}

fn schedulers_from_env() -> Vec<Scheduler> {
    match std::env::var("SBT_SCHED") {
        Err(_) => vec![Scheduler::WeightedRoundRobin, Scheduler::DeficitRoundRobin],
        // A typo must not silently shrink the sweep (and with it the
        // WRR-vs-DRR regression gate): reject unknown names loudly.
        Ok(s) => s
            .split(',')
            .map(|t| {
                Scheduler::from_name(t).unwrap_or_else(|| {
                    eprintln!("unknown scheduler {t:?} in SBT_SCHED (expected wrr,drr)");
                    std::process::exit(2);
                })
            })
            .collect(),
    }
}

fn winsum_pipeline(name: &str, batch: usize) -> Pipeline {
    Pipeline::new(name).then(Operator::WindowSum).target_delay_ms(60_000).batch_events(batch)
}

fn run_tenant_count(
    scheduler: Scheduler,
    tenants: usize,
    windows: u32,
    events_per_window: usize,
    batch: usize,
) -> ScalingRow {
    let cores = 4;
    let secure_mem: u64 = 256 * 1024 * 1024;
    let server = StreamServer::new(
        ServerConfig::default()
            .with_cores(cores)
            .with_secure_mem(secure_mem)
            .with_max_tenants(tenants),
    );
    server.telemetry().set_enabled(true);
    let master = MasterSecret::demo();
    let quota = secure_mem / tenants as u64;
    let ids: Vec<_> = (0..tenants)
        .map(|t| {
            server
                .admit(
                    TenantConfig::new(&format!("tenant-{t}"), quota),
                    winsum_pipeline(&format!("winsum-{t}"), batch),
                )
                .expect("admission within quota")
        })
        .collect();
    let loads = multi_tenant_streams(tenants, windows, events_per_window, 64, 42);
    let streams: Vec<TenantStream> = ids
        .iter()
        .zip(loads)
        .map(|(id, chunks)| TenantStream {
            tenant: *id,
            generator: Generator::new(
                GeneratorConfig { batch_events: batch },
                Channel::for_tenant(&master, *id, 0),
                chunks,
            ),
        })
        .collect();
    let report = server.serve_with(streams, scheduler).expect("serve completes");

    // Verify every tenant's audit trail independently, each under its own
    // derived keychain, fanned over the verifier's own worker pool.
    let verify_pool = Executor::new(cores);
    let mut trails_verified = 0;
    for id in &ids {
        let keychain = server.verifier_keys(*id).expect("admitted tenant has a keychain");
        let engine = server.engine(*id).unwrap();
        let segments = Arc::new(engine.drain_audit_segments());
        let records = verify_tenant_trail_parallel(&segments, *id, &keychain, &verify_pool)
            .expect("tenant trail authenticates");
        let replay = Verifier::new(engine.pipeline().spec()).replay(&records);
        assert!(replay.is_correct(), "tenant {id} replay violations: {:?}", replay.violations);
        trails_verified += 1;
    }

    let window_emit_latencies =
        server.telemetry().latency_rows().into_iter().filter(|r| r.kind == "window_emit").collect();

    let delays: Vec<f64> = report.per_tenant.iter().map(|t| t.avg_delay_ms).collect();
    ScalingRow {
        scheduler: scheduler.name().to_string(),
        tenants,
        aggregate_mevents_per_sec: report.aggregate_events_per_sec() / 1e6,
        events: report.aggregate_events(),
        avg_delay_ms: delays.iter().sum::<f64>() / delays.len().max(1) as f64,
        max_delay_ms: report.per_tenant.iter().map(|t| t.max_delay_ms).fold(0.0, f64::max),
        backpressure_signals: report.per_tenant.iter().map(|t| t.backpressure_signals).sum(),
        rejected_batches: report.per_tenant.iter().map(|t| t.rejected_batches).sum(),
        trails_verified,
        window_emit_latencies,
    }
}

/// One tenant's view of the churn scenario: accumulated trail plus the key
/// epoch its next traffic must encrypt under.
struct ChurnTenant {
    id: TenantId,
    epoch: u32,
    trail: Vec<LogSegment>,
}

/// The churn scenario: 4 tenants serve window 0; then tenant 0 is evicted,
/// tenant 1 rekeyed, tenant 2 quota-resized and a newcomer admitted into
/// the freed reservation; windows 1 of the survivors + newcomer are served;
/// finally every trail (departed tenant included) must verify.
fn run_churn(scheduler: Scheduler, events_per_window: usize) -> Vec<Vec<String>> {
    let secure_mem: u64 = 256 * 1024 * 1024;
    let server = StreamServer::new(
        ServerConfig::default().with_cores(4).with_secure_mem(secure_mem).with_max_tenants(8),
    );
    let master = MasterSecret::demo();
    let batch = (events_per_window / 4).max(1);
    let quota = secure_mem / 8;
    let mut tenants: Vec<ChurnTenant> = (0..4)
        .map(|t| ChurnTenant {
            id: server
                .admit(
                    TenantConfig::new(&format!("churn-{t}"), quota),
                    winsum_pipeline(&format!("churn-{t}"), batch),
                )
                .expect("admission within quota"),
            epoch: 0,
            trail: Vec::new(),
        })
        .collect();
    // Two windows per tenant, served in two phases with churn in between.
    let loads = multi_tenant_streams(5, 2, events_per_window, 64, 1234);

    // One serve phase: every current tenant streams its chunk row's given
    // window (rows are tied to tenant ids so key ranges stay disjoint
    // across churn), then accumulated trails are drained.
    let serve_phase =
        |server: &Arc<StreamServer>, tenants: &mut Vec<ChurnTenant>, window: usize| {
            let streams: Vec<TenantStream> = tenants
                .iter()
                .map(|t| {
                    let row = (t.id.0 as usize - 1).min(loads.len() - 1);
                    TenantStream {
                        tenant: t.id,
                        generator: Generator::new(
                            GeneratorConfig { batch_events: batch },
                            Channel::for_tenant(&master, t.id, t.epoch),
                            vec![loads[row][window].clone()],
                        ),
                    }
                })
                .collect();
            let report = server.serve_with(streams, scheduler).expect("churn serve completes");
            for t in tenants.iter_mut() {
                if let Some(engine) = server.engine(t.id) {
                    t.trail.extend(engine.drain_audit_segments());
                }
            }
            report
        };

    // Phase 1: everyone serves window 0.
    serve_phase(&server, &mut tenants, 0);

    // Churn: evict tenant 0 mid-sweep...
    let evicted = tenants.remove(0);
    let before = server.unreserved_quota();
    let departure = server.evict(evicted.id).expect("evict admitted tenant");
    assert_eq!(server.unreserved_quota(), before + quota, "eviction recovers the reservation");
    let mut evicted_trail = evicted.trail;
    evicted_trail.extend(departure.trail);
    // ...rekey tenant 1, resize tenant 2, admit a newcomer into the freed
    // reservation.
    let rekeyed = server.rekey(tenants[0].id).expect("rekey admitted tenant");
    tenants[0].epoch = rekeyed;
    server.resize_quota(tenants[1].id, quota * 2).expect("resize within carve-out");
    let newcomer = server
        .admit(TenantConfig::new("churn-new", quota), winsum_pipeline("churn-new", batch))
        .expect("newcomer fits the freed reservation");
    tenants.push(ChurnTenant { id: newcomer, epoch: 0, trail: Vec::new() });

    // Phase 2: survivors + newcomer serve window 1. Chunk row 4 feeds the
    // newcomer (its own disjoint key range); the newcomer's "window 0" is
    // empty, which is fine — empty windows egress nothing.
    serve_phase(&server, &mut tenants, 1);

    // Verification: every live trail under its keychain (the rekeyed one
    // spans two epochs), and the departed tenant's trail under its final-
    // epoch keychain, ending in the departure record — all through the
    // parallel verifier, the same entry point the scaling sweep gates.
    let verify_pool = Executor::new(4);
    let mut rows = Vec::new();
    for t in &mut tenants {
        let trail = Arc::new(std::mem::take(&mut t.trail));
        let keychain = server.verifier_keys(t.id).expect("live keychain");
        let records = verify_tenant_trail_parallel(&trail, t.id, &keychain, &verify_pool)
            .expect("live tenant trail authenticates");
        let replay = Verifier::new(server.engine(t.id).unwrap().pipeline().spec()).replay(&records);
        assert!(replay.is_correct(), "churn tenant {} violations: {:?}", t.id, replay.violations);
        rows.push(vec![
            scheduler.name().to_string(),
            t.id.to_string(),
            format!("epoch {}", t.epoch),
            "live".to_string(),
            format!("{} segments ok", trail.len()),
        ]);
    }
    let evicted_trail = Arc::new(evicted_trail);
    let keychain = server.verifier_keys(evicted.id).expect("departed keychain stays derivable");
    let records = verify_tenant_trail_parallel(&evicted_trail, evicted.id, &keychain, &verify_pool)
        .expect("departed tenant trail authenticates");
    let replay = Verifier::new(winsum_pipeline("churn-0", batch).spec()).replay(&records);
    assert!(replay.is_correct(), "departed tenant violations: {:?}", replay.violations);
    assert!(replay.departed, "departed trail must end with a departure record");
    rows.push(vec![
        scheduler.name().to_string(),
        evicted.id.to_string(),
        format!("epoch {}", departure.final_epoch),
        "evicted".to_string(),
        format!("{} segments ok", evicted_trail.len()),
    ]);
    rows
}

fn main() {
    let full = std::env::var("SBT_FULL").map(|v| v == "1").unwrap_or(false);
    let churn = std::env::var("SBT_CHURN").map(|v| v == "1").unwrap_or(false);
    let (windows, events_per_window) = if full { (4u32, 200_000usize) } else { (2, 20_000) };
    let schedulers = schedulers_from_env();

    if churn {
        let mut rows = Vec::new();
        for &s in &schedulers {
            rows.extend(run_churn(s, events_per_window));
        }
        print_table(
            "Server churn — admit / evict / rekey / resize mid-sweep, all trails verified",
            &["sched", "tenant", "epoch", "state", "trail"],
            &rows,
        );
        println!(
            "\nEvery trail verified under its tenant's keychain, including the evicted \
             tenant's; its quota reservation was recovered for the newcomer."
        );
        return;
    }

    let sweep = sweep_from_env();
    // Short runs are dominated by cold-start noise (thread spawn, page
    // faults); measure each cell a few times and keep the best, which
    // estimates capability rather than luck. `SBT_REPS` overrides.
    let reps: usize = std::env::var("SBT_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if full { 1 } else { 3 })
        .max(1);

    let fixed_batch = (events_per_window / 4).max(1);
    let rows: Vec<ScalingRow> = schedulers
        .iter()
        .flat_map(|&s| {
            sweep.iter().map(move |&n| {
                (0..reps)
                    .map(|_| run_tenant_count(s, n, windows, events_per_window, fixed_batch))
                    .max_by(|a, b| {
                        a.aggregate_mevents_per_sec.total_cmp(&b.aggregate_mevents_per_sec)
                    })
                    .expect("at least one rep")
            })
        })
        .collect();

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scheduler.clone(),
                r.tenants.to_string(),
                format!("{:.3}", r.aggregate_mevents_per_sec),
                r.events.to_string(),
                format!("{:.1}", r.avg_delay_ms),
                format!("{:.1}", r.max_delay_ms),
                r.backpressure_signals.to_string(),
                r.rejected_batches.to_string(),
                format!("{}/{}", r.trails_verified, r.tenants),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Server scaling — N tenants over one shared TEE ({windows} windows x \
             {events_per_window} events each per tenant)"
        ),
        &[
            "sched",
            "tenants",
            "aggregate Mevents/s",
            "events",
            "avg delay ms",
            "max delay ms",
            "backpressure",
            "rejected",
            "trails ok",
        ],
        &table,
    );
    println!(
        "\nAggregate throughput should grow with tenant count until the 4-worker executor \
         saturates; every tenant's audit trail must verify independently."
    );

    // Per-tenant tail latency from the telemetry histograms: each tenant's
    // watermark-to-window-emit distribution, recorded allocation-free during
    // the sweep above.
    let ms = |nanos: u64| format!("{:.2}", nanos as f64 / 1e6);
    let lat_table: Vec<Vec<String>> = rows
        .iter()
        .flat_map(|r| {
            r.window_emit_latencies.iter().map(move |l| {
                vec![
                    r.scheduler.clone(),
                    r.tenants.to_string(),
                    format!("t{}", l.tenant),
                    l.count.to_string(),
                    ms(l.p50_nanos),
                    ms(l.p95_nanos),
                    ms(l.p99_nanos),
                    ms(l.max_nanos),
                ]
            })
        })
        .collect();
    print_table(
        "Per-tenant window-emit latency (telemetry histograms)",
        &["sched", "tenants", "tenant", "windows", "p50 ms", "p95 ms", "p99 ms", "max ms"],
        &lat_table,
    );
    dump_json("fig_server_scaling", &rows);

    // Adaptive world-switch batching under multi-tenancy: size each
    // tenant's ingest batches from the calibrated switch cost instead of a
    // fixed window fraction and compare aggregate throughput at the largest
    // tenant count of the sweep.
    let adaptive_batch = sbt_engine::AdaptiveBatcher::new(
        &sbt_tz::CostModel::hikey(),
        false,
        sbt_types::EVENT_BYTES,
        60_000,
    )
    .events_per_batch()
    .min(windows as usize * events_per_window);
    let n = *sweep.last().unwrap();
    let sched = *schedulers.last().unwrap();
    let best_of = |batch: usize| {
        (0..reps)
            .map(|_| run_tenant_count(sched, n, windows, events_per_window, batch))
            .map(|r| r.aggregate_mevents_per_sec)
            .fold(0.0, f64::max)
    };
    let fixed_tput = best_of(fixed_batch);
    let adaptive_tput = best_of(adaptive_batch);
    println!(
        "\nadaptive batching ({}, {n} tenants): {adaptive_tput:.3} Mevents/s at \
         {adaptive_batch}-event batches vs {fixed_tput:.3} at fixed {fixed_batch} ({:+.1}%)",
        sched.name(),
        100.0 * (adaptive_tput / fixed_tput.max(f64::MIN_POSITIVE) - 1.0)
    );

    // Regression gate: with both schedulers swept, DRR must stay within 10%
    // of the WRR barrier baseline at every tenant count.
    let mut failed = false;
    for &n in &sweep {
        let throughput_of = |name: &str| {
            rows.iter()
                .find(|r| r.scheduler == name && r.tenants == n)
                .map(|r| r.aggregate_mevents_per_sec)
        };
        if let (Some(wrr), Some(drr)) = (throughput_of("wrr"), throughput_of("drr")) {
            let verdict = if drr >= wrr { "faster" } else { "slower" };
            println!(
                "gate: {n:3} tenants — drr {drr:.3} vs wrr {wrr:.3} Mevents/s ({verdict}, \
                 {:+.1}%)",
                (drr / wrr - 1.0) * 100.0
            );
            if drr < wrr * 0.9 {
                eprintln!(
                    "FAIL: DRR aggregate throughput at {n} tenants regressed more than 10% \
                     below the WRR baseline ({drr:.3} < 0.9 x {wrr:.3} Mevents/s)"
                );
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
