//! Multi-tenant server scaling: aggregate throughput and per-tenant output
//! delay as the number of pipelines multiplexed over one shared TEE grows —
//! swept across serving disciplines.
//!
//! For each scheduler in `SBT_SCHED` (default `wrr,drr`) and each tenant
//! count N in `SBT_TENANTS` (default `1,4,16`), the harness brings up one
//! `StreamServer` (one platform, one data plane, one work-stealing
//! executor), admits N tenants — each with a WinSum pipeline, an equal
//! share of the secure carve-out as its quota, and weight 1 — and serves
//! every tenant an independent stream with a disjoint key range. After the
//! run it reports aggregate throughput and per-tenant delays, and verifies
//! each tenant's audit trail independently (tenant tag, signatures, segment
//! sequence, then symbolic replay against the tenant's declared pipeline).
//!
//! When both schedulers are swept, the run **fails** (exit 1) if deficit
//! round-robin's aggregate throughput regresses more than 10% below the
//! weighted-round-robin barrier baseline at any tenant count — the CI gate
//! for the executor + DRR substrate.
//!
//! Run with `cargo run --release -p sbt_bench --bin fig_server_scaling`.
//! `SBT_TENANTS=1,4,16` overrides the sweep; `SBT_SCHED=drr` picks one
//! scheduler; `SBT_FULL=1` scales the streams up.

use sbt_attest::{verify_tenant_trail, Verifier};
use sbt_bench::{dump_json, print_table};
use sbt_engine::{Operator, Pipeline};
use sbt_server::{Scheduler, ServerConfig, StreamServer, TenantConfig, TenantStream};
use sbt_workloads::datasets::multi_tenant_streams;
use sbt_workloads::generator::{Generator, GeneratorConfig};
use sbt_workloads::transport::Channel;
use serde::Serialize;

#[derive(Serialize)]
struct ScalingRow {
    scheduler: String,
    tenants: usize,
    aggregate_mevents_per_sec: f64,
    events: u64,
    avg_delay_ms: f64,
    max_delay_ms: f64,
    backpressure_signals: u64,
    rejected_batches: u64,
    trails_verified: usize,
}

fn sweep_from_env() -> Vec<usize> {
    std::env::var("SBT_TENANTS")
        .ok()
        .map(|s| s.split(',').filter_map(|t| t.trim().parse().ok()).collect())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![1, 4, 16])
}

fn schedulers_from_env() -> Vec<Scheduler> {
    match std::env::var("SBT_SCHED") {
        Err(_) => vec![Scheduler::WeightedRoundRobin, Scheduler::DeficitRoundRobin],
        // A typo must not silently shrink the sweep (and with it the
        // WRR-vs-DRR regression gate): reject unknown names loudly.
        Ok(s) => s
            .split(',')
            .map(|t| {
                Scheduler::from_name(t).unwrap_or_else(|| {
                    eprintln!("unknown scheduler {t:?} in SBT_SCHED (expected wrr,drr)");
                    std::process::exit(2);
                })
            })
            .collect(),
    }
}

fn run_tenant_count(
    scheduler: Scheduler,
    tenants: usize,
    windows: u32,
    events_per_window: usize,
) -> ScalingRow {
    let cores = 4;
    let secure_mem: u64 = 256 * 1024 * 1024;
    let server = StreamServer::new(
        ServerConfig::default()
            .with_cores(cores)
            .with_secure_mem(secure_mem)
            .with_max_tenants(tenants),
    );
    let quota = secure_mem / tenants as u64;
    let batch = (events_per_window / 4).max(1);
    let ids: Vec<_> = (0..tenants)
        .map(|t| {
            let pipeline = Pipeline::new(&format!("winsum-{t}"))
                .then(Operator::WindowSum)
                .target_delay_ms(60_000)
                .batch_events(batch);
            server
                .admit(TenantConfig::new(&format!("tenant-{t}"), quota), pipeline)
                .expect("admission within quota")
        })
        .collect();
    let loads = multi_tenant_streams(tenants, windows, events_per_window, 64, 42);
    let streams: Vec<TenantStream> = ids
        .iter()
        .zip(loads)
        .map(|(id, chunks)| TenantStream {
            tenant: *id,
            generator: Generator::new(
                GeneratorConfig { batch_events: batch },
                Channel::encrypted_demo(),
                chunks,
            ),
        })
        .collect();
    let report = server.serve_with(streams, scheduler).expect("serve completes");

    // Verify every tenant's audit trail independently.
    let (_, _, signing) = server.cloud_keys();
    let mut trails_verified = 0;
    for id in &ids {
        let engine = server.engine(*id).unwrap();
        let segments = engine.drain_audit_segments();
        let records =
            verify_tenant_trail(&segments, *id, &signing).expect("tenant trail authenticates");
        let replay = Verifier::new(engine.pipeline().spec()).replay(&records);
        assert!(replay.is_correct(), "tenant {id} replay violations: {:?}", replay.violations);
        trails_verified += 1;
    }

    let delays: Vec<f64> = report.per_tenant.iter().map(|t| t.avg_delay_ms).collect();
    ScalingRow {
        scheduler: scheduler.name().to_string(),
        tenants,
        aggregate_mevents_per_sec: report.aggregate_events_per_sec() / 1e6,
        events: report.aggregate_events(),
        avg_delay_ms: delays.iter().sum::<f64>() / delays.len().max(1) as f64,
        max_delay_ms: report.per_tenant.iter().map(|t| t.max_delay_ms).fold(0.0, f64::max),
        backpressure_signals: report.per_tenant.iter().map(|t| t.backpressure_signals).sum(),
        rejected_batches: report.per_tenant.iter().map(|t| t.rejected_batches).sum(),
        trails_verified,
    }
}

fn main() {
    let full = std::env::var("SBT_FULL").map(|v| v == "1").unwrap_or(false);
    let (windows, events_per_window) = if full { (4u32, 200_000usize) } else { (2, 20_000) };
    let sweep = sweep_from_env();
    let schedulers = schedulers_from_env();
    // Short runs are dominated by cold-start noise (thread spawn, page
    // faults); measure each cell a few times and keep the best, which
    // estimates capability rather than luck. `SBT_REPS` overrides.
    let reps: usize = std::env::var("SBT_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if full { 1 } else { 3 })
        .max(1);

    let rows: Vec<ScalingRow> = schedulers
        .iter()
        .flat_map(|&s| {
            sweep.iter().map(move |&n| {
                (0..reps)
                    .map(|_| run_tenant_count(s, n, windows, events_per_window))
                    .max_by(|a, b| {
                        a.aggregate_mevents_per_sec.total_cmp(&b.aggregate_mevents_per_sec)
                    })
                    .expect("at least one rep")
            })
        })
        .collect();

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scheduler.clone(),
                r.tenants.to_string(),
                format!("{:.3}", r.aggregate_mevents_per_sec),
                r.events.to_string(),
                format!("{:.1}", r.avg_delay_ms),
                format!("{:.1}", r.max_delay_ms),
                r.backpressure_signals.to_string(),
                r.rejected_batches.to_string(),
                format!("{}/{}", r.trails_verified, r.tenants),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Server scaling — N tenants over one shared TEE ({windows} windows x \
             {events_per_window} events each per tenant)"
        ),
        &[
            "sched",
            "tenants",
            "aggregate Mevents/s",
            "events",
            "avg delay ms",
            "max delay ms",
            "backpressure",
            "rejected",
            "trails ok",
        ],
        &table,
    );
    println!(
        "\nAggregate throughput should grow with tenant count until the 4-worker executor \
         saturates; every tenant's audit trail must verify independently."
    );
    dump_json("fig_server_scaling", &rows);

    // Regression gate: with both schedulers swept, DRR must stay within 10%
    // of the WRR barrier baseline at every tenant count.
    let mut failed = false;
    for &n in &sweep {
        let throughput_of = |name: &str| {
            rows.iter()
                .find(|r| r.scheduler == name && r.tenants == n)
                .map(|r| r.aggregate_mevents_per_sec)
        };
        if let (Some(wrr), Some(drr)) = (throughput_of("wrr"), throughput_of("drr")) {
            let verdict = if drr >= wrr { "faster" } else { "slower" };
            println!(
                "gate: {n:3} tenants — drr {drr:.3} vs wrr {wrr:.3} Mevents/s ({verdict}, \
                 {:+.1}%)",
                (drr / wrr - 1.0) * 100.0
            );
            if drr < wrr * 0.9 {
                eprintln!(
                    "FAIL: DRR aggregate throughput at {n} tenants regressed more than 10% \
                     below the WRR baseline ({drr:.3} < 0.9 x {wrr:.3} Mevents/s)"
                );
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
