//! Figure 7: throughput of the six benchmarks as a function of CPU cores
//! for the four engine variants, plus steady TEE memory consumption.
//!
//! Also prints the §9.2 derived comparisons: security overhead
//! (ClearIngress vs Insecure), ingress-decryption overhead (SBT vs
//! ClearIngress), and the trusted-IO advantage (SBT vs IOviaOS).
//!
//! Run with `cargo run --release -p sbt-bench --bin fig7_throughput`
//! (set `SBT_FULL=1` for the paper's 1 M-event windows).

use sbt_bench::{print_table, run_benchmark, BenchId, RunResult, RunScale};
use sbt_engine::EngineVariant;

fn main() {
    let scale = RunScale::from_env();
    let cores = [2usize, 4, 8];
    let mut all: Vec<RunResult> = Vec::new();

    for bench in BenchId::ALL {
        let mut rows = Vec::new();
        for variant in EngineVariant::ALL {
            for &c in &cores {
                let r = run_benchmark(bench, variant, c, scale);
                rows.push(vec![
                    r.variant.clone(),
                    c.to_string(),
                    format!("{:.2}", r.mevents_per_sec),
                    format!("{:.1}", r.mb_per_sec),
                    format!("{:.1}", r.avg_delay_ms),
                    format!("{:.0}", r.avg_memory_mb),
                    format!("{:.0}", r.peak_memory_mb),
                ]);
                all.push(r);
            }
        }
        print_table(
            &format!(
                "Figure 7 — {} (target delay {} ms, {} events/window)",
                bench.name(),
                bench.target_delay_ms(),
                scale.events_per_window
            ),
            &["variant", "cores", "Mevents/s", "MB/s", "avg delay ms", "avg mem MB", "peak MB"],
            &rows,
        );
    }

    // Derived overhead comparisons at the maximum core count.
    let max_cores = *cores.last().unwrap();
    let find = |bench: BenchId, variant: EngineVariant| {
        all.iter()
            .find(|r| {
                r.bench == bench.name() && r.variant == variant.label() && r.cores == max_cores
            })
            .cloned()
            .expect("all combinations were run")
    };
    let mut overhead_rows = Vec::new();
    for bench in BenchId::ALL {
        let sbt = find(bench, EngineVariant::Sbt);
        let clear = find(bench, EngineVariant::SbtClearIngress);
        let via_os = find(bench, EngineVariant::SbtIoViaOs);
        let insecure = find(bench, EngineVariant::Insecure);
        let security_overhead = 100.0 * (1.0 - clear.mevents_per_sec / insecure.mevents_per_sec);
        let decrypt_overhead = 100.0 * (1.0 - sbt.mevents_per_sec / clear.mevents_per_sec);
        let trusted_io_gain = 100.0 * (sbt.mevents_per_sec / via_os.mevents_per_sec - 1.0);
        overhead_rows.push(vec![
            bench.name().to_string(),
            format!("{:.1}%", security_overhead),
            format!("{:.1}%", decrypt_overhead),
            format!("{:.1}%", trusted_io_gain),
        ]);
    }
    print_table(
        &format!("Section 9.2/9.3 — overheads at {max_cores} cores"),
        &[
            "benchmark",
            "security overhead (Clear vs Insecure)",
            "decryption overhead (SBT vs Clear)",
            "trusted-IO gain (SBT vs IOviaOS)",
        ],
        &overhead_rows,
    );

    sbt_bench::dump_json("fig7_throughput", &all);
}
