//! Figure 7: throughput of the six benchmarks as a function of CPU cores
//! for the four engine variants, plus steady TEE memory consumption.
//!
//! Also prints the §9.2 derived comparisons: security overhead
//! (ClearIngress vs Insecure), ingress-decryption overhead (SBT vs
//! ClearIngress), and the trusted-IO advantage (SBT vs IOviaOS).
//!
//! Run with `cargo run --release -p sbt-bench --bin fig7_throughput`
//! (set `SBT_FULL=1` for the paper's 1 M-event windows).

use sbt_bench::{print_table, run_benchmark, BenchId, RunResult, RunScale};
use sbt_engine::{AdaptiveBatcher, EngineVariant};
use sbt_tz::CostModel;

fn main() {
    let scale = RunScale::from_env();
    let cores = [2usize, 4, 8];
    let mut all: Vec<RunResult> = Vec::new();

    for bench in BenchId::ALL {
        let mut rows = Vec::new();
        for variant in EngineVariant::ALL {
            for &c in &cores {
                let r = run_benchmark(bench, variant, c, scale);
                rows.push(vec![
                    r.variant.clone(),
                    c.to_string(),
                    format!("{:.2}", r.mevents_per_sec),
                    format!("{:.1}", r.mb_per_sec),
                    format!("{:.1}", r.avg_delay_ms),
                    format!("{:.0}", r.avg_memory_mb),
                    format!("{:.0}", r.peak_memory_mb),
                ]);
                all.push(r);
            }
        }
        print_table(
            &format!(
                "Figure 7 — {} (target delay {} ms, {} events/window)",
                bench.name(),
                bench.target_delay_ms(),
                scale.events_per_window
            ),
            &["variant", "cores", "Mevents/s", "MB/s", "avg delay ms", "avg mem MB", "peak MB"],
            &rows,
        );
    }

    // Derived overhead comparisons at the maximum core count.
    let max_cores = *cores.last().unwrap();
    let find = |bench: BenchId, variant: EngineVariant| {
        all.iter()
            .find(|r| {
                r.bench == bench.name() && r.variant == variant.label() && r.cores == max_cores
            })
            .cloned()
            .expect("all combinations were run")
    };
    let mut overhead_rows = Vec::new();
    for bench in BenchId::ALL {
        let sbt = find(bench, EngineVariant::Sbt);
        let clear = find(bench, EngineVariant::SbtClearIngress);
        let via_os = find(bench, EngineVariant::SbtIoViaOs);
        let insecure = find(bench, EngineVariant::Insecure);
        let security_overhead = 100.0 * (1.0 - clear.mevents_per_sec / insecure.mevents_per_sec);
        let decrypt_overhead = 100.0 * (1.0 - sbt.mevents_per_sec / clear.mevents_per_sec);
        let trusted_io_gain = 100.0 * (sbt.mevents_per_sec / via_os.mevents_per_sec - 1.0);
        overhead_rows.push(vec![
            bench.name().to_string(),
            format!("{:.1}%", security_overhead),
            format!("{:.1}%", decrypt_overhead),
            format!("{:.1}%", trusted_io_gain),
        ]);
    }
    print_table(
        &format!("Section 9.2/9.3 — overheads at {max_cores} cores"),
        &[
            "benchmark",
            "security overhead (Clear vs Insecure)",
            "decryption overhead (SBT vs Clear)",
            "trusted-IO gain (SBT vs IOviaOS)",
        ],
        &overhead_rows,
    );

    sbt_bench::dump_json("fig7_throughput", &all);

    // Adaptive world-switch batching: the batcher derives an ingest batch
    // size from the calibrated switch cost and the pipeline's delay budget;
    // sweep it against fixed small-batch regimes on the ingest-bound
    // benchmark. Measured at 4 cores — the boundary-dominated configuration
    // (at higher core counts a workstation hides the per-core share of the
    // switch cost behind wall-clock parallelism, which the HiKey's in-order
    // cores do not).
    let bench = BenchId::WinSum;
    let adaptive_cores = 4usize;
    let batcher = AdaptiveBatcher::new(&CostModel::hikey(), false, bench.event_bytes(), 60_000);
    let adaptive = batcher.events_per_batch();
    let regimes = [("fixed-tiny", 500usize), ("fixed-small", 2_000), ("adaptive", adaptive)];
    let runs: Vec<RunResult> = regimes
        .iter()
        .map(|&(_, batch)| {
            run_benchmark(
                bench,
                EngineVariant::Sbt,
                adaptive_cores,
                RunScale { batch_events: batch, ..scale },
            )
        })
        .collect();
    let adaptive_tput = runs.last().unwrap().mevents_per_sec;
    let adaptive_rows: Vec<Vec<String>> = regimes
        .iter()
        .zip(&runs)
        .map(|(&(label, batch), r)| {
            vec![
                label.to_string(),
                if label == "adaptive" { format!("{batch} (chosen)") } else { batch.to_string() },
                format!("{:.2}", r.mevents_per_sec),
                format!("{:+.1}%", 100.0 * (adaptive_tput / r.mevents_per_sec - 1.0)),
                format!("{:.1}", r.avg_delay_ms),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Adaptive batching — {} on {} ({adaptive_cores} cores, switch cost {} ns)",
            bench.name(),
            EngineVariant::Sbt.label(),
            CostModel::hikey().switch_nanos()
        ),
        &["regime", "batch events", "Mevents/s", "adaptive gain", "avg delay ms"],
        &adaptive_rows,
    );
    sbt_bench::dump_json(
        "fig7_adaptive_batching",
        &regimes.iter().map(|(l, _)| l.to_string()).zip(runs).collect::<Vec<_>>(),
    );
}
