//! Figure 11: 128-way merge over dynamically growing buffers — uArray
//! (in-place growth backed by the TEE pager) versus a `std::vector`-style
//! relocating buffer. The paper measures uArray about 4× faster.
//!
//! Run with `cargo run --release -p sbt-bench --bin fig11_uarray`.

use sbt_baselines::growth::multiway_merge_relocating_stats;
use sbt_bench::print_table;
use sbt_tz::{CostModel, SecureMemory, TzStats};
use sbt_uarray::{TeePager, UArray, UArrayId};
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

#[derive(Serialize)]
struct MergeRow {
    container: String,
    seconds: f64,
    relocation_overhead_s: f64,
}

/// Build the 128 sorted runs of the microbenchmark (512 KB each at paper
/// scale: 128K 32-bit integers, stored here as u64 for the shared kernels).
fn make_runs(run_len: usize) -> Vec<Vec<u64>> {
    (0..128)
        .map(|r| {
            let mut v: Vec<u64> = (0..run_len as u64)
                .map(|i| (i.wrapping_mul(2654435761) ^ (r as u64) << 17) & 0xFFFF_FFFF)
                .collect();
            v.sort_unstable();
            v
        })
        .collect()
}

/// N-way merge using uArrays as the growing output buffers: pairwise merges
/// where each output uArray grows in place, committing pages through the
/// TEE pager.
fn merge_with_uarrays(runs: &[Vec<u64>], pager: &TeePager) -> (Vec<u64>, u64) {
    let mut current: Vec<Vec<u64>> = runs.to_vec();
    let mut next_id = 0u64;
    let mut paging_nanos = 0u64;
    while current.len() > 1 {
        let mut next = Vec::with_capacity(current.len().div_ceil(2));
        let mut iter = current.chunks(2);
        for pair in &mut iter {
            match pair {
                [a, b] => {
                    let mut out: UArray<u64> =
                        UArray::with_reservation(UArrayId(next_id), a.len() + b.len());
                    next_id += 1;
                    let (mut i, mut j) = (0, 0);
                    while i < a.len() && j < b.len() {
                        if a[i] <= b[j] {
                            out.append(a[i], pager).expect("secure memory");
                            i += 1;
                        } else {
                            out.append(b[j], pager).expect("secure memory");
                            j += 1;
                        }
                    }
                    out.extend_from_slice(&a[i..], pager).expect("secure memory");
                    out.extend_from_slice(&b[j..], pager).expect("secure memory");
                    paging_nanos += out.paging_nanos();
                    let merged = out.as_slice().to_vec();
                    out.retire();
                    out.reclaim(pager);
                    next.push(merged);
                }
                [a] => next.push(a.clone()),
                _ => unreachable!(),
            }
        }
        current = next;
    }
    (current.pop().unwrap_or_default(), paging_nanos)
}

fn main() {
    let full = std::env::var("SBT_FULL").map(|v| v == "1").unwrap_or(false);
    let run_len: usize = if full { 128 * 1024 } else { 32 * 1024 };
    let runs = make_runs(run_len);
    let total: usize = runs.iter().map(|r| r.len()).sum();

    // uArray variant: growth backed by the TEE pager (cheap page commits).
    let cost = CostModel::hikey();
    let pager =
        TeePager::new(Arc::new(SecureMemory::new(1 << 30, 90)), Arc::new(TzStats::new()), cost);
    let start = Instant::now();
    let (merged_ua, paging_nanos) = merge_with_uarrays(&runs, &pager);
    let uarray_secs = start.elapsed().as_secs_f64() + paging_nanos as f64 / 1e9;
    assert_eq!(merged_ua.len(), total);

    // std::vector variant: relocating growth. Every intermediate merge level
    // allocates fresh buffers the commodity OS must fault in and zero, and
    // every capacity doubling copies the live prefix; both costs come from
    // the same cost model the TEE side is charged with (which charges the
    // much cheaper in-TEE page commits instead, and no relocation at all).
    let start = Instant::now();
    let (merged_vec, growth) = multiway_merge_relocating_stats(&runs);
    let os_paging = cost.os_paging_nanos(growth.touched_bytes.div_ceil(4096)) as f64 / 1e9;
    let relocation_penalty = cost.relocation_nanos(growth.relocated_bytes) as f64 / 1e9;
    let vec_secs = start.elapsed().as_secs_f64() + os_paging + relocation_penalty;
    assert_eq!(merged_vec.len(), total);
    assert_eq!(merged_ua, merged_vec);

    let rows = vec![
        MergeRow {
            container: "uArray".to_string(),
            seconds: uarray_secs,
            relocation_overhead_s: paging_nanos as f64 / 1e9,
        },
        MergeRow {
            container: "std::vector".to_string(),
            seconds: vec_secs,
            relocation_overhead_s: os_paging + relocation_penalty,
        },
    ];
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.container.clone(),
                format!("{:.3}", r.seconds),
                format!("{:.3}", r.relocation_overhead_s),
            ]
        })
        .collect();
    print_table(
        &format!("Figure 11 — 128-way merge of {run_len}-integer runs"),
        &["container", "execution time (s)", "growth overhead (s)"],
        &table,
    );
    println!("std::vector / uArray: {:.1}x (paper reports ~4x)", vec_secs / uarray_secs);
    sbt_bench::dump_json("fig11_uarray", &rows);
}
