//! Figure 12: columnar compression of audit records — raw versus compressed
//! upload bandwidth for WinSum and Power at two input batch sizes (10 K and
//! 100 K events), plus the comparison against a gzip-like general-purpose
//! compressor. The paper reports 5x–6.7x compression, about 1.9x better
//! than gzip.
//!
//! Run with `cargo run --release -p sbt-bench --bin fig12_compression`.

use sbt_attest::record::AuditRecord;
use sbt_attest::{compress_records, decompress_records, lz77};
use sbt_bench::{drive, print_table, BenchId, RunScale};
use sbt_engine::{Engine, EngineConfig, EngineVariant, StreamSide};
use serde::Serialize;

#[derive(Serialize)]
struct CompressionRow {
    bench: String,
    batch_events: usize,
    records_per_sec: f64,
    raw_kb_per_sec: f64,
    compressed_kb_per_sec: f64,
    ratio: f64,
    gzip_like_ratio: f64,
}

fn run(bench: BenchId, batch_events: usize, scale: RunScale) -> CompressionRow {
    let engine =
        Engine::new(EngineConfig::for_variant(EngineVariant::Sbt, 8), bench.pipeline(batch_events));
    let chunks = bench.stream(scale.windows, scale.events_per_window, 42);
    drive(&engine, chunks, EngineVariant::Sbt, batch_events, StreamSide::Left);

    // Decompress the uploaded segments back into the raw record stream so we
    // can compare codecs on identical input.
    let segments = engine.drain_audit_segments();
    let records: Vec<AuditRecord> = segments
        .iter()
        .flat_map(|s| decompress_records(&s.compressed).expect("segments decode"))
        .collect();
    let raw_bytes = AuditRecord::raw_size(&records);
    let columnar = compress_records(&records);
    let mut raw_rows = Vec::new();
    for r in &records {
        r.to_row_bytes(&mut raw_rows);
    }
    let gzip_like = lz77::compress(&raw_rows);

    // The stream covers `windows` seconds of event time; normalize to per
    // second of stream.
    let stream_secs = scale.windows as f64;
    CompressionRow {
        bench: bench.name().to_string(),
        batch_events,
        records_per_sec: records.len() as f64 / stream_secs,
        raw_kb_per_sec: raw_bytes as f64 / 1024.0 / stream_secs,
        compressed_kb_per_sec: columnar.len() as f64 / 1024.0 / stream_secs,
        ratio: raw_bytes as f64 / columnar.len().max(1) as f64,
        gzip_like_ratio: raw_bytes as f64 / gzip_like.len().max(1) as f64,
    }
}

fn main() {
    // Audit-record rates are per second of stream time, so this harness
    // favours many windows over huge windows: the record stream reaches a
    // steady state and the codec sees enough records to amortize headers.
    let base = RunScale::from_env();
    let scale = RunScale {
        windows: if base.events_per_window >= 1_000_000 { 10 } else { 20 },
        events_per_window: base.events_per_window.min(200_000),
        batch_events: base.batch_events,
    };
    let mut rows = Vec::new();
    let mut table = Vec::new();
    for bench in [BenchId::WinSum, BenchId::Power] {
        for batch in [10_000usize, 100_000] {
            let batch = batch.min(scale.events_per_window);
            let row = run(bench, batch, scale);
            table.push(vec![
                row.bench.clone(),
                format!("{}K", row.batch_events / 1000),
                format!("{:.0}", row.records_per_sec),
                format!("{:.2}", row.raw_kb_per_sec),
                format!("{:.2}", row.compressed_kb_per_sec),
                format!("{:.1}x", row.ratio),
                format!("{:.1}x", row.gzip_like_ratio),
            ]);
            rows.push(row);
        }
    }
    print_table(
        "Figure 12 — audit-record compression (per second of stream time)",
        &[
            "benchmark",
            "batch",
            "records/s",
            "raw KB/s",
            "compressed KB/s",
            "columnar ratio",
            "gzip-like ratio",
        ],
        &table,
    );
    println!(
        "\nExpectation from the paper: 5x-6.7x columnar compression, ~1.9x better than gzip;\n\
         smaller batches and simpler pipelines generate records (and savings) at higher rates."
    );
    sbt_bench::dump_json("fig12_compression", &rows);
}
