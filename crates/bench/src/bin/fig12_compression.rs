//! Figure 12: columnar compression of audit records — raw versus compressed
//! upload bandwidth for WinSum and Power at two input batch sizes (10 K and
//! 100 K events), plus the comparison against a gzip-like general-purpose
//! compressor. The paper reports 5x–6.7x compression, about 1.9x better
//! than gzip.
//!
//! Since the streaming-codec rewrite the figure also reproduces the codec
//! upgrade itself: every row quotes the legacy batch (v1) codec and the
//! streaming (v2) `ColumnarEncoder` side by side — compression ratio and
//! encode throughput at the data plane's 256-record segment granularity —
//! so the ≥2x encode win is part of the reproduced evaluation.
//!
//! Run with `cargo run --release -p sbt-bench --bin fig12_compression`.

use sbt_attest::record::AuditRecord;
use sbt_attest::{compress_records, decompress_records, lz77, ColumnarEncoder};
use sbt_bench::{best_secs, drive, print_table, BenchId, RunScale};
use sbt_engine::{Engine, EngineConfig, EngineVariant, StreamSide};
use serde::Serialize;

/// The data plane's default `audit_flush_threshold`.
const SEGMENT_RECORDS: usize = 256;

#[derive(Serialize)]
struct CompressionRow {
    bench: String,
    batch_events: usize,
    records_per_sec: f64,
    raw_kb_per_sec: f64,
    compressed_kb_per_sec: f64,
    ratio: f64,
    streaming_ratio: f64,
    gzip_like_ratio: f64,
    encode_mb_per_sec_batch: f64,
    encode_mb_per_sec_streaming: f64,
}

fn run(bench: BenchId, batch_events: usize, scale: RunScale) -> CompressionRow {
    let engine =
        Engine::new(EngineConfig::for_variant(EngineVariant::Sbt, 8), bench.pipeline(batch_events));
    let chunks = bench.stream(scale.windows, scale.events_per_window, 42);
    drive(&engine, chunks, EngineVariant::Sbt, batch_events, StreamSide::Left);

    // Decompress the uploaded segments back into the raw record stream so we
    // can compare codecs on identical input.
    let segments = engine.drain_audit_segments();
    let records: Vec<AuditRecord> = segments
        .iter()
        .flat_map(|s| decompress_records(&s.compressed).expect("segments decode"))
        .collect();
    let raw_bytes = AuditRecord::raw_size(&records);

    // Both codec generations at production segment granularity.
    let batch_segments: Vec<Vec<u8>> =
        records.chunks(SEGMENT_RECORDS).map(compress_records).collect();
    let mut encoder = ColumnarEncoder::with_capacity(SEGMENT_RECORDS);
    let streaming_segments: Vec<Vec<u8>> = records
        .chunks(SEGMENT_RECORDS)
        .map(|chunk| {
            for r in chunk {
                encoder.append(r);
            }
            encoder.seal()
        })
        .collect();
    let columnar: usize = batch_segments.iter().map(Vec::len).sum();
    let streaming: usize = streaming_segments.iter().map(Vec::len).sum();

    let batch_secs = best_secs(10, || {
        for chunk in records.chunks(SEGMENT_RECORDS) {
            std::hint::black_box(compress_records(chunk));
        }
    });
    let mut out = Vec::new();
    let streaming_secs = best_secs(10, || {
        for chunk in records.chunks(SEGMENT_RECORDS) {
            for r in chunk {
                encoder.append(r);
            }
            out.clear();
            encoder.seal_into(&mut out);
            std::hint::black_box(&out);
        }
    });

    let mut raw_rows = Vec::new();
    for r in &records {
        r.to_row_bytes(&mut raw_rows);
    }
    let gzip_like = lz77::compress(&raw_rows);

    // The stream covers `windows` seconds of event time; normalize to per
    // second of stream.
    let stream_secs = scale.windows as f64;
    CompressionRow {
        bench: bench.name().to_string(),
        batch_events,
        records_per_sec: records.len() as f64 / stream_secs,
        raw_kb_per_sec: raw_bytes as f64 / 1024.0 / stream_secs,
        compressed_kb_per_sec: streaming as f64 / 1024.0 / stream_secs,
        ratio: raw_bytes as f64 / columnar.max(1) as f64,
        streaming_ratio: raw_bytes as f64 / streaming.max(1) as f64,
        gzip_like_ratio: raw_bytes as f64 / gzip_like.len().max(1) as f64,
        encode_mb_per_sec_batch: raw_bytes as f64 / batch_secs / 1e6,
        encode_mb_per_sec_streaming: raw_bytes as f64 / streaming_secs / 1e6,
    }
}

fn main() {
    // Audit-record rates are per second of stream time, so this harness
    // favours many windows over huge windows: the record stream reaches a
    // steady state and the codec sees enough records to amortize headers.
    let base = RunScale::from_env();
    let scale = RunScale {
        windows: if base.events_per_window >= 1_000_000 { 10 } else { 20 },
        events_per_window: base.events_per_window.min(200_000),
        batch_events: base.batch_events,
    };
    let mut rows = Vec::new();
    let mut table = Vec::new();
    for bench in [BenchId::WinSum, BenchId::Power] {
        for batch in [10_000usize, 100_000] {
            let batch = batch.min(scale.events_per_window);
            let row = run(bench, batch, scale);
            table.push(vec![
                row.bench.clone(),
                format!("{}K", row.batch_events / 1000),
                format!("{:.0}", row.records_per_sec),
                format!("{:.2}", row.raw_kb_per_sec),
                format!("{:.2}", row.compressed_kb_per_sec),
                format!("{:.1}x", row.ratio),
                format!("{:.1}x", row.streaming_ratio),
                format!("{:.1}x", row.gzip_like_ratio),
                format!("{:.0}", row.encode_mb_per_sec_batch),
                format!("{:.0}", row.encode_mb_per_sec_streaming),
            ]);
            rows.push(row);
        }
    }
    print_table(
        "Figure 12 — audit-record compression (per second of stream time; old vs new codec)",
        &[
            "benchmark",
            "batch",
            "records/s",
            "raw KB/s",
            "compressed KB/s",
            "v1 ratio",
            "v2 ratio",
            "gzip-like ratio",
            "v1 enc MB/s",
            "v2 enc MB/s",
        ],
        &table,
    );
    println!(
        "\nExpectation from the paper: 5x-6.7x columnar compression, ~1.9x better than gzip;\n\
         smaller batches and simpler pipelines generate records (and savings) at higher rates.\n\
         The streaming (v2) codec must match or beat the batch (v1) ratio while encoding ≥2x\n\
         faster at the 256-record segment granularity (see the codec_gate CI binary)."
    );
    sbt_bench::dump_json("fig12_compression", &rows);
}
