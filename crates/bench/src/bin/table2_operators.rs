//! Table 2: the trusted primitives and the declarative operators they
//! constitute.
//!
//! Run with `cargo run -p sbt-bench --bin table2_operators`.

use sbt_bench::print_table;
use sbt_types::PrimitiveKind;

fn main() {
    let primitives: Vec<Vec<String>> = PrimitiveKind::TRUSTED_PRIMITIVES
        .iter()
        .map(|p| vec![format!("{p:?}"), p.code().to_string()])
        .collect();
    print_table(
        &format!(
            "Table 2 — the {} trusted primitives exported by the data plane",
            PrimitiveKind::TRUSTED_PRIMITIVES.len()
        ),
        &["primitive", "op code"],
        &primitives,
    );

    let operators = vec![
        ("Windowing", "Segment"),
        ("GroupByKey / SumByKey / AggregateByKey", "Sort + Merge + SumCnt"),
        ("AvgPerKey", "Sort + Merge + SumCnt"),
        ("CountByKey", "Sort + Merge + CountPerKey"),
        ("MedianByKey", "Sort + Merge + MedianPerKey"),
        ("Distinct", "Sort + Merge + Unique"),
        ("TopKPerKey", "Sort + Merge + TopKPerKey"),
        ("CountByWindow", "Concat + Count"),
        ("Windowed aggregation (WinSum)", "Concat + Sum"),
        ("Windowed average / min / max / median", "Concat + Average / MinMax / Median"),
        ("Filter", "FilterBand / FilterTime"),
        ("Sample", "Sample"),
        ("Projection", "Project"),
        ("TempJoin", "Sort + Merge + Join"),
        ("Union", "Union"),
    ];
    let rows: Vec<Vec<String>> =
        operators.iter().map(|(o, p)| vec![o.to_string(), p.to_string()]).collect();
    print_table(
        "Table 2 — declarative operators and the primitives they compile to",
        &["operator (Spark-Streaming-style)", "trusted primitives"],
        &rows,
    );
}
