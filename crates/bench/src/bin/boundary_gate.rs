//! CI gate for the measured TEE boundary.
//!
//! Drives the WinSum pipeline (encrypted ingress) at fixed batch-size
//! regimes and at the size the adaptive batcher derives from the calibrated
//! cost model, then reports boundary *events* per ingested event — world
//! switches, bytes copied across the boundary, secure pages committed —
//! from the platform's live counters rather than model arithmetic. The run
//! fails (exit 1) when:
//!
//! * world switches per 1 K events on the adaptive regime exceed the
//!   recorded baseline (`SBT_BOUNDARY_GATE_SWITCHES_PER_KEVENT`),
//! * via-OS ingress copies more bytes per event than the recorded baseline
//!   (`SBT_BOUNDARY_GATE_COPIED_BYTES_PER_EVENT`),
//! * trusted-IO ingress copies *any* bytes across the boundary (the
//!   zero-copy invariant), or
//! * adaptive batching loses its amortization gain over the small fixed
//!   batch regime (`SBT_BOUNDARY_GATE_MIN_GAIN`, a throughput ratio), or
//! * on the 8-worker pool, adaptive batches split into per-worker decrypt
//!   lanes fall behind fixed 1 K batches
//!   (`SBT_BOUNDARY_GATE_MIN_PARALLEL_GAIN`), exceed the switch budget, or
//!   change the via-OS copy profile — the lane split must stay inside the
//!   single crossing per batch.
//!
//! Besides the gate verdict it writes `BENCH_boundary.json` at the repo
//! root — a committed, machine-readable record of the host calibration and
//! the per-regime boundary profile — plus the usual copy under
//! `target/evaluation/`.
//!
//! Run with `cargo run --release -p sbt_bench --bin boundary_gate`.

use sbt_bench::{drive, print_table, BenchId, RunScale};
use sbt_engine::{Engine, EngineConfig, EngineVariant, StreamSide};
use sbt_tz::{BoundaryEvents, Calibration, CostModel};
use serde::Serialize;

/// Boundary profile of one (variant, worker count, batch size) regime.
#[derive(Serialize)]
struct RegimeRow {
    label: String,
    variant: String,
    workers: usize,
    batch_events: usize,
    events: u64,
    mevents_per_sec: f64,
    switches_per_kevent: f64,
    copied_bytes_per_event: f64,
    pages_per_kevent: f64,
    /// Platform-wide counters over the run (authoritative).
    boundary: BoundaryEvents,
    /// The gateway's own per-tenant metering of the same run; `switches`
    /// and `copied_bytes` must agree with the platform view.
    gateway_switches: u64,
    gateway_copied_bytes: u64,
    gateway_invocations: u64,
}

/// Everything the gate measured, serialized to `BENCH_boundary.json`.
#[derive(Serialize)]
struct BoundaryReport {
    generated_by: &'static str,
    host_calibration: Calibration,
    hikey_model: CostModel,
    adaptive_batch_events: usize,
    scale: RunScale,
    regimes: Vec<RegimeRow>,
    gates: GateVerdict,
}

#[derive(Serialize)]
struct GateVerdict {
    max_switches_per_kevent: f64,
    max_copied_bytes_per_event: f64,
    min_adaptive_gain: f64,
    min_parallel_gain: f64,
    measured_switches_per_kevent: f64,
    measured_copied_bytes_per_event: f64,
    measured_adaptive_gain: f64,
    /// Throughput of the 8-worker adaptive regime over 8-worker fixed-1K.
    measured_parallel_gain: f64,
    pass: bool,
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

fn run_regime(
    label: &str,
    variant: EngineVariant,
    workers: usize,
    batch: usize,
    scale: RunScale,
) -> RegimeRow {
    let engine =
        Engine::new(EngineConfig::for_variant(variant, workers), BenchId::WinSum.pipeline(batch));
    let chunks = BenchId::WinSum.stream(scale.windows, scale.events_per_window, 42);
    let tz_before = engine.platform().stats().snapshot();
    drive(&engine, chunks, variant, batch, StreamSide::Left);
    let metrics = engine.metrics();
    let boundary = engine.platform().stats().snapshot().delta_since(&tz_before).boundary_events();
    let gateway = engine.boundary_events();
    let events = metrics.events_ingested;
    let per_kevent = |x: u64| x as f64 * 1_000.0 / events.max(1) as f64;
    RegimeRow {
        label: label.to_string(),
        variant: variant.label().to_string(),
        workers,
        batch_events: batch,
        events,
        mevents_per_sec: metrics.events_per_sec() / 1e6,
        switches_per_kevent: per_kevent(boundary.switches),
        copied_bytes_per_event: boundary.copied_bytes as f64 / events.max(1) as f64,
        pages_per_kevent: per_kevent(boundary.pages_committed),
        boundary,
        gateway_switches: gateway.switches,
        gateway_copied_bytes: gateway.copied_bytes,
        gateway_invocations: gateway.invocations,
    }
}

fn main() {
    // Calibrate first: the adaptive regimes exist to show that a batch size
    // derived from measured switch costs amortizes the boundary, so the
    // measurement belongs in the committed record.
    let calibration = CostModel::calibrate();
    let hikey = CostModel::hikey();
    println!(
        "host calibration (1 GHz reference clock): switch proxy {} ns, copy {} ns/page, \
         os commit {} ns/page, tee commit {} ns/page",
        calibration.switch_proxy_nanos,
        calibration.copy_nanos_per_page,
        calibration.os_page_commit_nanos,
        calibration.tee_page_commit_nanos,
    );
    println!(
        "hikey reference: switch {} ns; calibrated host: switch {} ns",
        hikey.switch_nanos(),
        calibration.model.switch_nanos(),
    );

    let scale = RunScale::from_env();
    // The engines in this gate run the HiKey model (the platform the paper
    // measures); ask one what batch size its adaptive batcher derives.
    let probe = Engine::new(
        EngineConfig::for_variant(EngineVariant::Sbt, 4),
        BenchId::WinSum.pipeline(scale.batch_events),
    );
    let batcher = probe.adaptive_batcher(BenchId::WinSum.event_bytes());
    let adaptive = batcher.events_per_batch();
    drop(probe);
    println!(
        "adaptive batcher: {} ns fixed boundary cost per batch -> {} events/batch \
         ({:.2}% boundary overhead)",
        batcher.fixed_nanos(),
        adaptive,
        batcher.overhead_fraction(adaptive) * 100.0,
    );

    let small = 1_000usize;
    let regimes = vec![
        run_regime("fixed-small", EngineVariant::Sbt, 4, small, scale),
        run_regime("fixed-mid", EngineVariant::Sbt, 4, scale.batch_events, scale),
        run_regime("adaptive", EngineVariant::Sbt, 4, adaptive, scale),
        run_regime("fixed-mid/via-os", EngineVariant::SbtIoViaOs, 4, scale.batch_events, scale),
        run_regime("adaptive/via-os", EngineVariant::SbtIoViaOs, 4, adaptive, scale),
        // Multi-core regime: the same adaptive batch size, but an 8-wide
        // worker pool so every ingest batch splits into 8 decrypt lanes
        // inside the single crossing. Gated against fixed-1K at the same
        // pool width — sub-batching must pay for itself without adding
        // switches or copies.
        run_regime("fixed-small-8w", EngineVariant::Sbt, 8, small, scale),
        run_regime("parallel-adaptive", EngineVariant::Sbt, 8, adaptive, scale),
        run_regime("parallel-adaptive/via-os", EngineVariant::SbtIoViaOs, 8, adaptive, scale),
    ];

    let table: Vec<Vec<String>> = regimes
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                r.variant.clone(),
                r.workers.to_string(),
                r.batch_events.to_string(),
                format!("{:.3}", r.mevents_per_sec),
                format!("{:.2}", r.switches_per_kevent),
                format!("{:.2}", r.copied_bytes_per_event),
                format!("{:.3}", r.pages_per_kevent),
                r.boundary.invocations.to_string(),
            ]
        })
        .collect();
    print_table(
        &format!(
            "TEE boundary profile — WinSum, {} windows x {} events",
            scale.windows, scale.events_per_window
        ),
        &[
            "regime",
            "variant",
            "workers",
            "batch",
            "Mevents/s",
            "switches/Kevent",
            "copied B/event",
            "pages/Kevent",
            "invocations",
        ],
        &table,
    );

    // Recorded baselines (quick scale, HiKey model). The adaptive regime
    // makes ~4 crossings per 100 K-event batch plus one watermark/egress
    // crossing per window, well under 0.1 switches per 1 K events; via-OS
    // ingress copies exactly the 12-byte wire record per event. Margins are
    // ~25% so CI noise cannot trip the counters, which are deterministic.
    let max_switches = env_f64("SBT_BOUNDARY_GATE_SWITCHES_PER_KEVENT", 0.125);
    let max_copied = env_f64("SBT_BOUNDARY_GATE_COPIED_BYTES_PER_EVENT", 15.0);
    let min_gain = env_f64("SBT_BOUNDARY_GATE_MIN_GAIN", 1.05);
    let min_parallel_gain = env_f64("SBT_BOUNDARY_GATE_MIN_PARALLEL_GAIN", 1.0);

    let adaptive_row = &regimes[2];
    let small_row = &regimes[0];
    let via_os_row = &regimes[4];
    let small_8w_row = &regimes[5];
    let parallel_row = &regimes[6];
    let parallel_via_os_row = &regimes[7];
    let gain = adaptive_row.mevents_per_sec / small_row.mevents_per_sec.max(f64::MIN_POSITIVE);
    let parallel_gain =
        parallel_row.mevents_per_sec / small_8w_row.mevents_per_sec.max(f64::MIN_POSITIVE);

    let mut failures = Vec::new();
    if adaptive_row.switches_per_kevent > max_switches {
        failures.push(format!(
            "adaptive regime made {:.3} world switches per 1K events (baseline {max_switches})",
            adaptive_row.switches_per_kevent
        ));
    }
    if via_os_row.copied_bytes_per_event > max_copied {
        failures.push(format!(
            "via-OS ingress copied {:.2} bytes/event across the boundary (baseline {max_copied})",
            via_os_row.copied_bytes_per_event
        ));
    }
    for r in regimes.iter().filter(|r| r.variant == EngineVariant::Sbt.label()) {
        if r.boundary.copied_bytes != 0 {
            failures.push(format!(
                "trusted-IO regime {:?} copied {} bytes across the boundary (must be zero-copy)",
                r.label, r.boundary.copied_bytes
            ));
        }
    }
    if gain < min_gain {
        failures.push(format!(
            "adaptive batching gained only {:.3}x over {small}-event batches (minimum {min_gain}x)",
            gain
        ));
    }
    // The multi-core gates: at an 8-wide pool, adaptive batches split into
    // per-worker decrypt lanes must at least match fixed-1K throughput, stay
    // under the switch budget, and leave the copy profile untouched — lanes
    // must not add crossings or copies.
    if parallel_gain < min_parallel_gain {
        failures.push(format!(
            "parallel-adaptive reached only {:.3}x of {small}-event batches on the 8-worker \
             pool (minimum {min_parallel_gain}x)",
            parallel_gain
        ));
    }
    if parallel_row.switches_per_kevent > max_switches {
        failures.push(format!(
            "parallel-adaptive made {:.3} world switches per 1K events (baseline {max_switches})",
            parallel_row.switches_per_kevent
        ));
    }
    if parallel_via_os_row.copied_bytes_per_event != via_os_row.copied_bytes_per_event {
        failures.push(format!(
            "sub-batching changed via-OS copies: {:.2} B/event at 8 workers vs {:.2} at 4 \
             (the lane split must live inside the one crossing)",
            parallel_via_os_row.copied_bytes_per_event, via_os_row.copied_bytes_per_event
        ));
    }
    // The gateway's per-tenant metering and the platform's global counters
    // watch the same boundary; disagreement means a crossing went unmetered.
    for r in &regimes {
        if r.gateway_switches != r.boundary.switches
            || r.gateway_copied_bytes != r.boundary.copied_bytes
        {
            failures.push(format!(
                "gateway metering disagrees with platform counters on {:?}: \
                 {}sw/{}B vs {}sw/{}B",
                r.label,
                r.gateway_switches,
                r.gateway_copied_bytes,
                r.boundary.switches,
                r.boundary.copied_bytes
            ));
        }
    }

    let verdict = GateVerdict {
        max_switches_per_kevent: max_switches,
        max_copied_bytes_per_event: max_copied,
        min_adaptive_gain: min_gain,
        min_parallel_gain,
        measured_switches_per_kevent: adaptive_row.switches_per_kevent,
        measured_copied_bytes_per_event: via_os_row.copied_bytes_per_event,
        measured_adaptive_gain: gain,
        measured_parallel_gain: parallel_gain,
        pass: failures.is_empty(),
    };
    println!(
        "\ngate: adaptive {:.3} switches/Kevent (max {max_switches}), via-OS {:.2} B/event \
         (max {max_copied}), adaptive gain {gain:.2}x over {small}-event batches (min {min_gain}x)",
        verdict.measured_switches_per_kevent, verdict.measured_copied_bytes_per_event,
    );
    println!(
        "gate: 8-worker parallel-adaptive {:.3} Mev/s vs fixed-{small} {:.3} Mev/s \
         ({parallel_gain:.2}x, min {min_parallel_gain}x), {:.3} switches/Kevent",
        parallel_row.mevents_per_sec,
        small_8w_row.mevents_per_sec,
        parallel_row.switches_per_kevent,
    );

    let report = BoundaryReport {
        generated_by: "cargo run --release -p sbt_bench --bin boundary_gate",
        host_calibration: calibration,
        hikey_model: hikey,
        adaptive_batch_events: adaptive,
        scale,
        regimes,
        gates: verdict,
    };
    // The committed record at the repo root (cargo run's working directory
    // is the workspace root), plus the usual evaluation copy.
    match serde_json::to_string_pretty(&report) {
        Ok(json) => {
            if let Err(e) = std::fs::write("BENCH_boundary.json", json + "\n") {
                eprintln!("could not write BENCH_boundary.json: {e}");
            } else {
                eprintln!("(boundary record written to BENCH_boundary.json)");
            }
        }
        Err(e) => eprintln!("could not serialize boundary report: {e}"),
    }
    sbt_bench::dump_json("boundary_gate", &report);

    if !report.gates.pass {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!("boundary gate passed");
}
