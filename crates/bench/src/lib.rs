//! Shared harness code for regenerating the StreamBox-TZ evaluation
//! (§9, Figures 7–12 and Tables 1–4).
//!
//! Each figure/table has a dedicated binary under `src/bin/`; this library
//! holds what they share: the six benchmark definitions (workload +
//! pipeline + target delay), a runner that drives an engine variant over a
//! generated stream and collects metrics, and small helpers for printing
//! result tables and dumping JSON for post-processing.
//!
//! Scale: by default the harnesses run a reduced-but-representative scale so
//! the whole suite completes in minutes on a laptop. Set `SBT_FULL=1` to run
//! the paper's scale (1 M events per 1-second window).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sbt_engine::metrics::EngineMetrics;
use sbt_engine::{Engine, EngineConfig, EngineVariant, IngestStatus, Pipeline, StreamSide};
use sbt_workloads::datasets::{
    intel_lab_stream, power_grid_stream, synthetic_stream, taxi_stream, StreamChunk,
};
use sbt_workloads::generator::{Generator, GeneratorConfig, Offer};
use sbt_workloads::transport::{Channel, ChannelConfig, WireFormat};
use serde::Serialize;
use std::sync::Arc;

/// The six benchmarks of §9.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum BenchId {
    /// Top values per key (500 ms target delay).
    TopK,
    /// Counting unique taxis (200 ms).
    Distinct,
    /// Temporal join of two streams (250 ms).
    Join,
    /// Windowed aggregation over sensor values (20 ms).
    WinSum,
    /// 1%-selectivity filtering (10 ms).
    Filter,
    /// Power-grid high-load analysis over 16-byte events (600 ms).
    Power,
}

impl BenchId {
    /// All six benchmarks in the order Figure 7 presents them.
    pub const ALL: [BenchId; 6] = [
        BenchId::TopK,
        BenchId::Distinct,
        BenchId::Join,
        BenchId::WinSum,
        BenchId::Filter,
        BenchId::Power,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            BenchId::TopK => "TopK",
            BenchId::Distinct => "Distinct",
            BenchId::Join => "Join",
            BenchId::WinSum => "WinSum",
            BenchId::Filter => "Filter",
            BenchId::Power => "Power",
        }
    }

    /// The paper's target output delay for this benchmark, in milliseconds.
    pub fn target_delay_ms(&self) -> u32 {
        match self {
            BenchId::TopK => 500,
            BenchId::Distinct => 200,
            BenchId::Join => 250,
            BenchId::WinSum => 20,
            BenchId::Filter => 10,
            BenchId::Power => 600,
        }
    }

    /// Bytes per event for this benchmark's stream.
    pub fn event_bytes(&self) -> usize {
        match self {
            BenchId::Power => sbt_types::POWER_EVENT_BYTES,
            _ => sbt_types::EVENT_BYTES,
        }
    }

    /// The declarative pipeline for this benchmark.
    pub fn pipeline(&self, batch_events: usize) -> Pipeline {
        let p = match self {
            BenchId::TopK => Pipeline::topk_benchmark(10),
            BenchId::Distinct => Pipeline::distinct_benchmark(),
            BenchId::Join => Pipeline::join_benchmark(),
            BenchId::WinSum => Pipeline::winsum_benchmark(),
            // 1% selectivity over uniform u32 values.
            BenchId::Filter => Pipeline::filter_benchmark(0, u32::MAX / 100),
            BenchId::Power => Pipeline::power_benchmark(),
        };
        // Harness-scale runs relax the delay target: the simulated switch
        // costs are real, but debug builds and tiny windows would otherwise
        // dominate the check. The benches still *report* delays against the
        // paper target.
        p.batch_events(batch_events).target_delay_ms(60_000)
    }

    /// Generate this benchmark's stream.
    pub fn stream(&self, windows: u32, events_per_window: usize, seed: u64) -> Vec<StreamChunk> {
        match self {
            BenchId::TopK => synthetic_stream(windows, events_per_window, 1_000, seed),
            BenchId::Distinct => taxi_stream(windows, events_per_window, seed),
            BenchId::Join => synthetic_stream(windows, events_per_window, 10_000, seed),
            BenchId::WinSum => intel_lab_stream(windows, events_per_window, seed),
            BenchId::Filter => synthetic_stream(windows, events_per_window, 100_000, seed),
            BenchId::Power => power_grid_stream(windows, events_per_window, 40, 20, seed),
        }
    }
}

/// Parameters of one harness run.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct RunScale {
    /// Number of 1-second windows to stream.
    pub windows: u32,
    /// Events per window.
    pub events_per_window: usize,
    /// Events per input batch.
    pub batch_events: usize,
}

impl RunScale {
    /// The paper's scale: 1 M events per window, 100 K-event batches.
    pub fn paper() -> Self {
        RunScale { windows: 6, events_per_window: 1_000_000, batch_events: 100_000 }
    }

    /// The default harness scale (fast enough for CI / laptops).
    pub fn quick() -> Self {
        RunScale { windows: 4, events_per_window: 100_000, batch_events: 20_000 }
    }

    /// Select scale from the `SBT_FULL` environment variable.
    pub fn from_env() -> Self {
        if std::env::var("SBT_FULL").map(|v| v == "1").unwrap_or(false) {
            RunScale::paper()
        } else {
            RunScale::quick()
        }
    }
}

/// Result row of one engine run.
#[derive(Debug, Clone, Serialize)]
pub struct RunResult {
    /// Which benchmark ran.
    pub bench: String,
    /// Which engine variant ran it.
    pub variant: String,
    /// Worker threads used.
    pub cores: usize,
    /// Throughput in millions of events per second.
    pub mevents_per_sec: f64,
    /// Throughput in MB/s of ingested payload.
    pub mb_per_sec: f64,
    /// Mean output delay in milliseconds.
    pub avg_delay_ms: f64,
    /// Maximum output delay in milliseconds.
    pub max_delay_ms: f64,
    /// Mean steady-state TEE memory in MB.
    pub avg_memory_mb: f64,
    /// Peak TEE memory in MB.
    pub peak_memory_mb: f64,
    /// Events processed.
    pub events: u64,
    /// Backpressure signals observed.
    pub backpressure: u64,
}

/// Build a source channel for a variant (encrypted when the variant expects
/// encrypted ingress).
pub fn channel_for(variant: EngineVariant) -> Channel {
    if variant.encrypted_ingress() {
        Channel::encrypted_demo()
    } else {
        Channel::new(
            ChannelConfig { format: WireFormat::Cleartext, bandwidth_bytes_per_sec: None },
            [7u8; 16],
            [9u8; 16],
        )
    }
}

/// Drive `engine` with the chunks of one benchmark on one stream side.
///
/// Batches belonging to one window are ingested together through
/// [`Engine::ingest_many`], which spreads ingestion (including decryption
/// inside the TEE) over the worker pool — the control plane's task
/// parallelism applies to ingestion as well as to operators.
pub fn drive(
    engine: &Arc<Engine>,
    chunks: Vec<StreamChunk>,
    variant: EngineVariant,
    batch_events: usize,
    side: StreamSide,
) {
    let mut generator =
        Generator::new(GeneratorConfig { batch_events }, channel_for(variant), chunks);
    let mut pending = Vec::new();
    while let Some(offer) = generator.next_offer() {
        match offer {
            Offer::Batch(delivery) => pending.push(delivery),
            Offer::Watermark(wm) => {
                match engine.ingest_many(std::mem::take(&mut pending), side) {
                    Ok(IngestStatus::Accepted) | Ok(IngestStatus::Backpressure) => {}
                    Err(e) => panic!("ingest failed: {e}"),
                }
                engine.advance_watermark_on(wm, side).expect("watermark advance");
            }
        }
    }
    if !pending.is_empty() {
        engine.ingest_many(pending, side).expect("trailing ingest");
    }
}

/// Run one benchmark on one engine variant and core count.
pub fn run_benchmark(
    bench: BenchId,
    variant: EngineVariant,
    cores: usize,
    scale: RunScale,
) -> RunResult {
    let pipeline = bench.pipeline(scale.batch_events);
    let engine = Engine::new(EngineConfig::for_variant(variant, cores), pipeline);
    let chunks = bench.stream(scale.windows, scale.events_per_window, 42);
    if bench == BenchId::Join {
        // Feed the same stream shape (different seed) to the right side,
        // interleaving window by window so both sides' watermarks advance.
        let right = bench.stream(scale.windows, scale.events_per_window, 43);
        for (lc, rc) in chunks.into_iter().zip(right) {
            drive(&engine, vec![lc], variant, scale.batch_events, StreamSide::Left);
            drive(&engine, vec![rc], variant, scale.batch_events, StreamSide::Right);
        }
    } else {
        drive(&engine, chunks, variant, scale.batch_events, StreamSide::Left);
    }
    let metrics = engine.metrics();
    summarize(bench, variant, cores, &metrics)
}

/// Convert engine metrics into a result row.
pub fn summarize(
    bench: BenchId,
    variant: EngineVariant,
    cores: usize,
    metrics: &EngineMetrics,
) -> RunResult {
    RunResult {
        bench: bench.name().to_string(),
        variant: variant.label().to_string(),
        cores,
        mevents_per_sec: metrics.events_per_sec() / 1e6,
        mb_per_sec: metrics.mb_per_sec(),
        avg_delay_ms: metrics.avg_delay_ms(),
        max_delay_ms: metrics.max_delay_ms(),
        avg_memory_mb: metrics.avg_memory_bytes() as f64 / 1e6,
        peak_memory_mb: metrics.peak_memory_bytes as f64 / 1e6,
        events: metrics.events_ingested,
        backpressure: metrics.backpressure_events,
    }
}

/// A realistic synthetic audit-record stream for codec benchmarking: per
/// window, `batches_per_window` partitions flow through ingress → windowing
/// → sort, then a pairwise merge tree, a sum, and an egress, with a
/// watermark per window — the record mix and monotone id/timestamp shape a
/// real pipeline produces. Shared by the codec benches and the CI
/// throughput gate so they measure identical input.
pub fn synthetic_audit_records(
    windows: u32,
    batches_per_window: u32,
) -> Vec<sbt_attest::AuditRecord> {
    use sbt_attest::{AuditRecord, DataRef, UArrayRef};
    let mut records = Vec::new();
    let mut id = 0u32;
    let mut ts = 0u32;
    let fresh = |id: &mut u32| {
        let r = UArrayRef(*id);
        *id += 1;
        r
    };
    for w in 0..windows {
        let mut sorted = Vec::new();
        for _ in 0..batches_per_window {
            let ingress = fresh(&mut id);
            records.push(AuditRecord::Ingress { ts_ms: ts, data: DataRef::UArray(ingress) });
            let windowed = fresh(&mut id);
            records.push(AuditRecord::Windowing {
                ts_ms: ts + 1,
                input: ingress,
                win_no: w as u16,
                output: windowed,
            });
            let s = fresh(&mut id);
            records.push(AuditRecord::Execution {
                ts_ms: ts + 2,
                op: sbt_types::PrimitiveKind::Sort,
                inputs: [windowed].into(),
                outputs: [s].into(),
                hints: vec![],
            });
            sorted.push(s);
            ts += 3;
        }
        records.push(AuditRecord::Ingress { ts_ms: ts, data: DataRef::Watermark((w + 1) * 1000) });
        while sorted.len() > 1 {
            let a = sorted.remove(0);
            let b = sorted.remove(0);
            let m = fresh(&mut id);
            records.push(AuditRecord::Execution {
                ts_ms: ts,
                op: sbt_types::PrimitiveKind::Merge,
                inputs: [a, b].into(),
                outputs: [m].into(),
                hints: vec![],
            });
            sorted.push(m);
            ts += 1;
        }
        let out = fresh(&mut id);
        records.push(AuditRecord::Execution {
            ts_ms: ts,
            op: sbt_types::PrimitiveKind::SumCnt,
            inputs: [sorted[0]].into(),
            outputs: [out].into(),
            hints: vec![],
        });
        records.push(AuditRecord::Egress { ts_ms: ts + 1, data: out });
        ts += 2;
    }
    records
}

/// Best-of-N wall-clock timing of `f` (with one untimed warm-up call),
/// returning seconds per call. Shared by the codec gate and the figure
/// binaries so timing methodology stays in one place.
pub fn best_secs<F: FnMut()>(iters: u32, mut f: F) -> f64 {
    f();
    let mut best = f64::MAX;
    for _ in 0..iters {
        let start = std::time::Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Print a header + rows as an aligned text table.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", fmt_row(&header.iter().map(|h| h.to_string()).collect::<Vec<_>>()));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Write a JSON results file under `target/evaluation/`.
pub fn dump_json<T: Serialize>(name: &str, value: &T) {
    let dir = std::path::Path::new("target/evaluation");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join(format!("{name}.json"));
        if let Ok(json) = serde_json::to_string_pretty(value) {
            let _ = std::fs::write(&path, json);
            eprintln!("(results written to {})", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_cover_the_six_benchmarks() {
        assert_eq!(BenchId::ALL.len(), 6);
        for b in BenchId::ALL {
            assert!(!b.name().is_empty());
            assert!(b.target_delay_ms() > 0);
            assert!(b.event_bytes() == 12 || b.event_bytes() == 16);
            let p = b.pipeline(1_000);
            assert_eq!(p.batch_size(), 1_000);
            let chunks = b.stream(1, 100, 7);
            assert_eq!(chunks.len(), 1);
            assert_eq!(chunks[0].len(), 100);
        }
    }

    #[test]
    fn scales() {
        let q = RunScale::quick();
        let p = RunScale::paper();
        assert!(p.events_per_window > q.events_per_window);
        assert_eq!(p.events_per_window, 1_000_000);
    }

    #[test]
    fn quick_run_of_winsum_produces_sane_metrics() {
        let scale = RunScale { windows: 2, events_per_window: 5_000, batch_events: 2_500 };
        let result = run_benchmark(BenchId::WinSum, EngineVariant::Sbt, 2, scale);
        assert_eq!(result.events, 10_000);
        assert!(result.mevents_per_sec > 0.0);
        assert!(result.mb_per_sec > 0.0);
        assert!(result.peak_memory_mb > 0.0);
    }

    #[test]
    fn quick_run_of_join_and_power_work() {
        let scale = RunScale { windows: 1, events_per_window: 2_000, batch_events: 1_000 };
        let join = run_benchmark(BenchId::Join, EngineVariant::SbtClearIngress, 2, scale);
        assert_eq!(join.events, 4_000); // both sides
        let power = run_benchmark(BenchId::Power, EngineVariant::Sbt, 2, scale);
        assert_eq!(power.events, 2_000);
    }
}
