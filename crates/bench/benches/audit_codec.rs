//! Criterion benchmarks for the audit-record codec (columnar compression,
//! decompression, and the gzip-like baseline) and the verifier's replay rate.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sbt_attest::record::{AuditRecord, DataRef, UArrayRef};
use sbt_attest::{compress_records, decompress_records, lz77, PipelineSpec, Verifier};
use sbt_types::PrimitiveKind;

/// A realistic audit stream: per window, several batches flow through
/// ingress → windowing → sort → merge → sum → egress.
fn make_records(windows: u32, batches_per_window: u32) -> Vec<AuditRecord> {
    let mut records = Vec::new();
    let mut id = 0u32;
    let mut ts = 0u32;
    let fresh = |id: &mut u32| {
        let r = UArrayRef(*id);
        *id += 1;
        r
    };
    for w in 0..windows {
        let mut sorted = Vec::new();
        for _ in 0..batches_per_window {
            let ingress = fresh(&mut id);
            records.push(AuditRecord::Ingress { ts_ms: ts, data: DataRef::UArray(ingress) });
            let windowed = fresh(&mut id);
            records.push(AuditRecord::Windowing {
                ts_ms: ts + 1,
                input: ingress,
                win_no: w as u16,
                output: windowed,
            });
            let s = fresh(&mut id);
            records.push(AuditRecord::Execution {
                ts_ms: ts + 2,
                op: PrimitiveKind::Sort,
                inputs: vec![windowed],
                outputs: vec![s],
                hints: vec![],
            });
            sorted.push(s);
            ts += 3;
        }
        records.push(AuditRecord::Ingress { ts_ms: ts, data: DataRef::Watermark((w + 1) * 1000) });
        while sorted.len() > 1 {
            let a = sorted.remove(0);
            let b = sorted.remove(0);
            let m = fresh(&mut id);
            records.push(AuditRecord::Execution {
                ts_ms: ts,
                op: PrimitiveKind::Merge,
                inputs: vec![a, b],
                outputs: vec![m],
                hints: vec![],
            });
            sorted.push(m);
            ts += 1;
        }
        let out = fresh(&mut id);
        records.push(AuditRecord::Execution {
            ts_ms: ts,
            op: PrimitiveKind::Sum,
            inputs: vec![sorted[0]],
            outputs: vec![out],
            hints: vec![],
        });
        records.push(AuditRecord::Egress { ts_ms: ts + 2, data: out });
        ts += 5;
    }
    records
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("audit_codec");
    group.sample_size(10);
    let records = make_records(100, 10);
    let raw: Vec<u8> = {
        let mut buf = Vec::new();
        for r in &records {
            r.to_row_bytes(&mut buf);
        }
        buf
    };
    group.throughput(Throughput::Elements(records.len() as u64));
    group.bench_function("columnar_compress", |b| b.iter(|| compress_records(&records)));
    let compressed = compress_records(&records);
    group.bench_function("columnar_decompress", |b| {
        b.iter(|| decompress_records(&compressed).unwrap())
    });
    group.bench_function("gzip_like_compress", |b| b.iter(|| lz77::compress(&raw)));
    group.finish();
}

fn bench_verifier(c: &mut Criterion) {
    let mut group = c.benchmark_group("verifier_replay");
    group.sample_size(10);
    let records = make_records(200, 10);
    let spec = PipelineSpec::new("winsum", vec![PrimitiveKind::Sort, PrimitiveKind::Sum], 10_000);
    group.throughput(Throughput::Elements(records.len() as u64));
    group.bench_function("replay", |b| {
        let verifier = Verifier::new(spec.clone());
        b.iter(|| {
            let report = verifier.replay(&records);
            assert!(report.is_correct());
            report
        })
    });
    group.finish();
}

criterion_group!(benches, bench_codec, bench_verifier);
criterion_main!(benches);
