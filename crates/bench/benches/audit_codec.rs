//! Criterion benchmarks for the audit-record codec (columnar compression,
//! decompression, and the gzip-like baseline) and the verifier's replay rate.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sbt_attest::{
    compress_records, decompress_records, lz77, ColumnarEncoder, PipelineSpec, Verifier,
};
use sbt_bench::synthetic_audit_records;
use sbt_types::PrimitiveKind;

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("audit_codec");
    group.sample_size(10);
    let records = synthetic_audit_records(100, 10);
    let raw: Vec<u8> = {
        let mut buf = Vec::new();
        for r in &records {
            r.to_row_bytes(&mut buf);
        }
        buf
    };
    group.throughput(Throughput::Elements(records.len() as u64));
    group.bench_function("columnar_compress", |b| b.iter(|| compress_records(&records)));
    let compressed = compress_records(&records);
    group.bench_function("columnar_decompress", |b| {
        b.iter(|| decompress_records(&compressed).unwrap())
    });
    group.bench_function("gzip_like_compress", |b| b.iter(|| lz77::compress(&raw)));
    let mut encoder = ColumnarEncoder::with_capacity(records.len());
    let mut out = Vec::new();
    group.bench_function("columnar_compress_streaming", |b| {
        b.iter(|| {
            for r in &records {
                encoder.append(r);
            }
            out.clear();
            encoder.seal_into(&mut out);
            std::hint::black_box(&out);
        })
    });
    let streaming = sbt_attest::compress_records_streaming(&records);
    group.bench_function("columnar_decompress_streaming", |b| {
        b.iter(|| decompress_records(&streaming).unwrap())
    });
    group.finish();
}

fn bench_verifier(c: &mut Criterion) {
    let mut group = c.benchmark_group("verifier_replay");
    group.sample_size(10);
    let records = synthetic_audit_records(200, 10);
    let spec =
        PipelineSpec::new("winsum", vec![PrimitiveKind::Sort, PrimitiveKind::SumCnt], 10_000);
    group.throughput(Throughput::Elements(records.len() as u64));
    group.bench_function("replay", |b| {
        let verifier = Verifier::new(spec.clone());
        b.iter(|| {
            let report = verifier.replay(&records);
            assert!(report.is_correct());
            report
        })
    });
    group.finish();
}

criterion_group!(benches, bench_codec, bench_verifier);
criterion_main!(benches);
