//! Criterion benchmarks for the remaining trusted primitives: grouped
//! aggregation, top-k, filtering, joins and segmentation.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sbt_primitives::{
    filter_band, join_by_key, segment_by_window, sort_events_by_key, sum_count_per_key,
    top_k_per_key, unique_keys,
};
use sbt_types::{Duration, Event, WindowSpec};

fn make_events(n: usize, keys: u32) -> Vec<Event> {
    (0..n)
        .map(|i| {
            Event::new(
                ((i as u64 * 2654435761) % keys as u64) as u32,
                (i % 65_536) as u32,
                ((i * 1000) / n.max(1)) as u32,
            )
        })
        .collect()
}

fn bench_grouped(c: &mut Criterion) {
    let mut group = c.benchmark_group("grouped_primitives");
    group.sample_size(10);
    let n = 200_000;
    let events = make_events(n, 1_000);
    let sorted = sort_events_by_key(&events);
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("sum_count_per_key", |b| b.iter(|| sum_count_per_key(&sorted)));
    group.bench_function("unique_keys", |b| b.iter(|| unique_keys(&sorted)));
    group.bench_function("top_k_per_key_k10", |b| b.iter(|| top_k_per_key(&sorted, 10)));
    group.bench_function("groupby_end_to_end", |b| {
        b.iter(|| sum_count_per_key(&sort_events_by_key(&events)))
    });
    group.finish();
}

fn bench_scans(c: &mut Criterion) {
    let mut group = c.benchmark_group("scan_primitives");
    group.sample_size(10);
    let n = 500_000;
    let events = make_events(n, 100_000);
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("filter_band_1pct", |b| {
        b.iter(|| filter_band(&events, 0, 655)); // ~1% of the 0..65536 value range
    });
    let spec = WindowSpec::fixed(Duration::from_millis(100));
    group.bench_function("segment_10_windows", |b| b.iter(|| segment_by_window(&events, &spec)));
    group.finish();
}

fn bench_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("join_primitive");
    group.sample_size(10);
    let left = sort_events_by_key(&make_events(100_000, 10_000));
    let right = sort_events_by_key(&make_events(100_000, 10_000));
    group.throughput(Throughput::Elements(200_000));
    group.bench_function("sort_merge_join_100k_x_100k", |b| b.iter(|| join_by_key(&left, &right)));
    group.finish();
}

criterion_group!(benches, bench_grouped, bench_scans, bench_join);
criterion_main!(benches);
