//! Criterion benchmarks for the Sort/Merge trusted primitives versus the
//! generic comparison sorts the paper compares against (§9.3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sbt_primitives::{merge_sorted_u64, multiway_merge_u64, sort_events_by_key, vector_sort_u64};
use sbt_types::Event;

fn make_u64s(n: usize) -> Vec<u64> {
    (0..n as u64).map(|i| (i.wrapping_mul(2654435761)) & 0xFFFF_FFFF).collect()
}

fn make_events(n: usize) -> Vec<Event> {
    (0..n).map(|i| Event::new(((i * 2654435761) % 1000) as u32, i as u32, 0)).collect()
}

fn bench_sort(c: &mut Criterion) {
    let mut group = c.benchmark_group("sort_u64");
    group.sample_size(10);
    for &n in &[64_000usize, 256_000] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("vectorized", n), &n, |b, &n| {
            let data = make_u64s(n);
            b.iter(|| {
                let mut v = data.clone();
                vector_sort_u64(&mut v);
                v
            });
        });
        group.bench_with_input(BenchmarkId::new("std_unstable", n), &n, |b, &n| {
            let data = make_u64s(n);
            b.iter(|| {
                let mut v = data.clone();
                v.sort_unstable();
                v
            });
        });
    }
    group.finish();
}

fn bench_event_sort(c: &mut Criterion) {
    let mut group = c.benchmark_group("sort_events_by_key");
    group.sample_size(10);
    {
        let n = 100_000usize;
        group.throughput(Throughput::Elements(n as u64));
        let events = make_events(n);
        group.bench_with_input(BenchmarkId::new("vectorized", n), &n, |b, _| {
            b.iter(|| sort_events_by_key(&events));
        });
        group.bench_with_input(BenchmarkId::new("std_by_key", n), &n, |b, _| {
            b.iter(|| {
                let mut v = events.clone();
                v.sort_by_key(|e| e.key);
                v
            });
        });
    }
    group.finish();
}

fn bench_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge");
    group.sample_size(10);
    let mut a = make_u64s(100_000);
    let mut b_run = make_u64s(100_000);
    a.sort_unstable();
    b_run.sort_unstable();
    group.throughput(Throughput::Elements(200_000));
    group.bench_function("two_way_200k", |b| {
        b.iter(|| merge_sorted_u64(&a, &b_run));
    });

    let runs: Vec<Vec<u64>> = (0..16)
        .map(|_| {
            let mut r = make_u64s(20_000);
            r.sort_unstable();
            r
        })
        .collect();
    group.throughput(Throughput::Elements(16 * 20_000));
    group.bench_function("multiway_16x20k", |b| {
        b.iter(|| multiway_merge_u64(&runs));
    });
    group.finish();
}

criterion_group!(benches, bench_sort, bench_event_sort, bench_merge);
criterion_main!(benches);
