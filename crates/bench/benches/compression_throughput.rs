//! Audit-log compression throughput: MB/s of the gzip-like LZ77+Huffman
//! baseline (encode and decode) over realistic audit-record row bytes, with
//! both generations of the domain-specific columnar codec alongside — the
//! legacy batch (format-v1) codec and the streaming (format-v2)
//! `ColumnarEncoder`. Columnar entries run at the data plane's production
//! segment granularity (256-record flush threshold), which is the rate the
//! ingest path actually experiences; whole-stream entries are kept for the
//! large-batch comparison. This anchors the ROADMAP's audit-log-compression
//! numbers: codec work must beat these rates at equal-or-better ratios.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sbt_attest::{compress_records, decompress_records, lz77, ColumnarEncoder};
use sbt_bench::synthetic_audit_records;

/// The data plane's default `audit_flush_threshold`.
const SEGMENT_RECORDS: usize = 256;

fn bench_compression_throughput(c: &mut Criterion) {
    let records = synthetic_audit_records(50, 32);
    let mut rows = Vec::new();
    for r in &records {
        r.to_row_bytes(&mut rows);
    }
    let raw_bytes = rows.len() as u64;

    let mut group = c.benchmark_group("audit_compression");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(raw_bytes));

    // The gzip-like LZ77+Huffman baseline, encode and decode.
    group.bench_function("lz77_huffman_encode", |b| b.iter(|| lz77::compress(&rows)));
    let lz = lz77::compress(&rows);
    group.bench_function("lz77_huffman_decode", |b| {
        b.iter(|| lz77::decompress(&lz).expect("round-trips"))
    });

    // The legacy batch columnar codec at production segment granularity.
    group.bench_function("columnar_encode", |b| {
        b.iter(|| {
            for chunk in records.chunks(SEGMENT_RECORDS) {
                std::hint::black_box(compress_records(chunk));
            }
        })
    });
    let col_segments: Vec<Vec<u8>> =
        records.chunks(SEGMENT_RECORDS).map(compress_records).collect();
    group.bench_function("columnar_decode", |b| {
        b.iter(|| {
            for seg in &col_segments {
                std::hint::black_box(decompress_records(seg).expect("round-trips"));
            }
        })
    });

    // The streaming encoder on the same segments, reused across seals as
    // the audit log uses it.
    let mut encoder = ColumnarEncoder::with_capacity(SEGMENT_RECORDS);
    let mut out = Vec::new();
    group.bench_function("columnar_encode_streaming", |b| {
        b.iter(|| {
            for chunk in records.chunks(SEGMENT_RECORDS) {
                for r in chunk {
                    encoder.append(r);
                }
                out.clear();
                encoder.seal_into(&mut out);
                std::hint::black_box(&out);
            }
        })
    });
    let v2_segments: Vec<Vec<u8>> = records
        .chunks(SEGMENT_RECORDS)
        .map(|chunk| {
            for r in chunk {
                encoder.append(r);
            }
            encoder.seal()
        })
        .collect();
    group.bench_function("columnar_decode_streaming", |b| {
        b.iter(|| {
            for seg in &v2_segments {
                std::hint::black_box(decompress_records(seg).expect("round-trips"));
            }
        })
    });

    // Whole-stream single-segment variants for the large-batch comparison.
    group.bench_function("columnar_encode_onebatch", |b| b.iter(|| compress_records(&records)));
    group.bench_function("columnar_encode_streaming_onebatch", |b| {
        b.iter(|| {
            for r in &records {
                encoder.append(r);
            }
            out.clear();
            encoder.seal_into(&mut out);
            std::hint::black_box(&out);
        })
    });
    group.finish();

    let col: usize = col_segments.iter().map(Vec::len).sum();
    let v2: usize = v2_segments.iter().map(Vec::len).sum();
    println!(
        "audit_compression: raw {} B, lz77+huffman {} B ({:.1}x), columnar v1 {} B ({:.1}x), \
         columnar v2 streaming {} B ({:.1}x) [{}-record segments]",
        raw_bytes,
        lz.len(),
        raw_bytes as f64 / lz.len().max(1) as f64,
        col,
        raw_bytes as f64 / col.max(1) as f64,
        v2,
        raw_bytes as f64 / v2.max(1) as f64,
        SEGMENT_RECORDS,
    );
}

criterion_group!(benches, bench_compression_throughput);
criterion_main!(benches);
