//! Audit-log compression throughput: MB/s of the gzip-like LZ77+Huffman
//! baseline (encode and decode) over realistic audit-record row bytes, with
//! the domain-specific columnar codec alongside for comparison. This gives
//! the ROADMAP's audit-log-compression direction its baseline numbers: any
//! future codec work must beat these rates at equal-or-better ratios.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sbt_attest::record::{AuditRecord, DataRef, UArrayRef};
use sbt_attest::{compress_records, decompress_records, lz77};
use sbt_types::PrimitiveKind;

/// A realistic audit stream in row format: per window, several batches flow
/// through ingress → windowing → sort → merge → sum → egress.
fn make_row_bytes(windows: u32, batches_per_window: u32) -> (Vec<AuditRecord>, Vec<u8>) {
    let mut records = Vec::new();
    let mut id = 0u32;
    let mut ts = 0u32;
    let mut fresh = || {
        let r = UArrayRef(id);
        id += 1;
        r
    };
    for w in 0..windows {
        let mut sorted = Vec::new();
        for _ in 0..batches_per_window {
            let ingress = fresh();
            records.push(AuditRecord::Ingress { ts_ms: ts, data: DataRef::UArray(ingress) });
            let windowed = fresh();
            records.push(AuditRecord::Windowing {
                ts_ms: ts + 1,
                input: ingress,
                win_no: w as u16,
                output: windowed,
            });
            let s = fresh();
            records.push(AuditRecord::Execution {
                ts_ms: ts + 2,
                op: PrimitiveKind::Sort,
                inputs: vec![windowed],
                outputs: vec![s],
                hints: vec![],
            });
            sorted.push(s);
            ts += 3;
        }
        while sorted.len() > 1 {
            let a = sorted.remove(0);
            let b = sorted.remove(0);
            let m = fresh();
            records.push(AuditRecord::Execution {
                ts_ms: ts,
                op: PrimitiveKind::Merge,
                inputs: vec![a, b],
                outputs: vec![m],
                hints: vec![],
            });
            sorted.push(m);
            ts += 1;
        }
        let out = fresh();
        records.push(AuditRecord::Execution {
            ts_ms: ts,
            op: PrimitiveKind::SumCnt,
            inputs: vec![sorted[0]],
            outputs: vec![out],
            hints: vec![],
        });
        records.push(AuditRecord::Egress { ts_ms: ts + 1, data: out });
        ts += 2;
    }
    let mut rows = Vec::new();
    for r in &records {
        r.to_row_bytes(&mut rows);
    }
    (records, rows)
}

fn bench_compression_throughput(c: &mut Criterion) {
    let (records, rows) = make_row_bytes(50, 32);
    let raw_bytes = rows.len() as u64;

    let mut group = c.benchmark_group("audit_compression");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(raw_bytes));

    // The gzip-like LZ77+Huffman baseline, encode and decode.
    group.bench_function("lz77_huffman_encode", |b| b.iter(|| lz77::compress(&rows)));
    let lz = lz77::compress(&rows);
    group.bench_function("lz77_huffman_decode", |b| {
        b.iter(|| lz77::decompress(&lz).expect("round-trips"))
    });

    // The domain-specific columnar codec on the same records.
    group.bench_function("columnar_encode", |b| b.iter(|| compress_records(&records)));
    let col = compress_records(&records);
    group.bench_function("columnar_decode", |b| {
        b.iter(|| decompress_records(&col).expect("round-trips"))
    });
    group.finish();

    println!(
        "audit_compression: raw {} B, lz77+huffman {} B ({:.1}x), columnar {} B ({:.1}x)",
        raw_bytes,
        lz.len(),
        raw_bytes as f64 / lz.len().max(1) as f64,
        col.len(),
        raw_bytes as f64 / col.len().max(1) as f64,
    );
}

criterion_group!(benches, bench_compression_throughput);
criterion_main!(benches);
