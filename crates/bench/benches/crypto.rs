//! Criterion benchmarks for the crypto substrate on the data path:
//! AES-128-CTR (ingress decryption / egress encryption), SHA-256 and
//! HMAC-SHA-256 (egress signing and audit-segment authentication).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sbt_crypto::{hmac_sha256, sha256, AesCtr, SigningKey};

fn bench_aes_ctr(c: &mut Criterion) {
    let mut group = c.benchmark_group("aes128_ctr");
    group.sample_size(10);
    for &size in &[64 * 1024usize, 1024 * 1024] {
        let data = vec![0xA5u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("encrypt_{}kb", size / 1024), |b| {
            let ctr = AesCtr::new(&[7u8; 16], &[9u8; 16]);
            b.iter(|| ctr.encrypt(&data));
        });
    }
    group.finish();
}

fn bench_hashes(c: &mut Criterion) {
    let mut group = c.benchmark_group("hashes");
    group.sample_size(10);
    let data = vec![0x5Au8; 256 * 1024];
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("sha256_256kb", |b| b.iter(|| sha256(&data)));
    group.bench_function("hmac_sha256_256kb", |b| b.iter(|| hmac_sha256(b"key", &data)));
    group.bench_function("sign_and_verify_256kb", |b| {
        let key = SigningKey::new(b"edge-cloud-key");
        b.iter(|| {
            let sig = key.sign(&data);
            assert!(key.verify(&data, &sig));
        })
    });
    group.finish();
}

criterion_group!(benches, bench_aes_ctr, bench_hashes);
criterion_main!(benches);
