//! Criterion benchmark behind Figure 11: growing output buffers during an
//! N-way merge — uArray in-place growth versus std::vector-style relocation.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sbt_baselines::growth::multiway_merge_relocating;
use sbt_tz::{CostModel, SecureMemory, TzStats};
use sbt_uarray::{TeePager, UArray, UArrayId};
use std::sync::Arc;

fn make_runs(count: usize, run_len: usize) -> Vec<Vec<u64>> {
    (0..count)
        .map(|r| {
            let mut v: Vec<u64> = (0..run_len as u64)
                .map(|i| (i.wrapping_mul(2654435761) ^ ((r as u64) << 17)) & 0xFFFF_FFFF)
                .collect();
            v.sort_unstable();
            v
        })
        .collect()
}

fn merge_with_uarrays(runs: &[Vec<u64>], pager: &TeePager) -> Vec<u64> {
    let mut current: Vec<Vec<u64>> = runs.to_vec();
    let mut id = 0u64;
    while current.len() > 1 {
        let mut next = Vec::with_capacity(current.len().div_ceil(2));
        for pair in current.chunks(2) {
            match pair {
                [a, b] => {
                    let mut out: UArray<u64> =
                        UArray::with_reservation(UArrayId(id), a.len() + b.len());
                    id += 1;
                    let (mut i, mut j) = (0, 0);
                    while i < a.len() && j < b.len() {
                        if a[i] <= b[j] {
                            out.append(a[i], pager).unwrap();
                            i += 1;
                        } else {
                            out.append(b[j], pager).unwrap();
                            j += 1;
                        }
                    }
                    out.extend_from_slice(&a[i..], pager).unwrap();
                    out.extend_from_slice(&b[j..], pager).unwrap();
                    let merged = out.as_slice().to_vec();
                    out.retire();
                    out.reclaim(pager);
                    next.push(merged);
                }
                [a] => next.push(a.clone()),
                _ => unreachable!(),
            }
        }
        current = next;
    }
    current.pop().unwrap_or_default()
}

fn bench_growth(c: &mut Criterion) {
    let mut group = c.benchmark_group("multiway_merge_growth");
    group.sample_size(10);
    let runs = make_runs(32, 16_384);
    let total: usize = runs.iter().map(|r| r.len()).sum();
    group.throughput(Throughput::Elements(total as u64));

    group.bench_function("uarray_in_place", |b| {
        let pager = TeePager::new(
            Arc::new(SecureMemory::new(1 << 30, 90)),
            Arc::new(TzStats::new()),
            CostModel::hikey(),
        );
        b.iter(|| merge_with_uarrays(&runs, &pager));
    });
    group.bench_function("vector_relocating", |b| {
        b.iter(|| multiway_merge_relocating(&runs));
    });
    group.finish();
}

criterion_group!(benches, bench_growth);
criterion_main!(benches);
