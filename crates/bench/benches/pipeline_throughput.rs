//! Criterion benchmark of end-to-end pipeline throughput (a scaled-down
//! companion of the Figure 7 harness, runnable under `cargo bench`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sbt_bench::{drive, BenchId, RunScale};
use sbt_engine::{Engine, EngineConfig, EngineVariant, StreamSide};

fn bench_pipelines(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_throughput");
    group.sample_size(10);
    let scale = RunScale { windows: 2, events_per_window: 50_000, batch_events: 10_000 };
    for bench in [BenchId::WinSum, BenchId::TopK, BenchId::Filter] {
        for variant in [EngineVariant::Sbt, EngineVariant::Insecure] {
            group.throughput(Throughput::Elements(
                scale.windows as u64 * scale.events_per_window as u64,
            ));
            group.bench_with_input(
                BenchmarkId::new(bench.name(), variant.label()),
                &variant,
                |b, &variant| {
                    b.iter(|| {
                        let engine = Engine::new(
                            EngineConfig::for_variant(variant, 4),
                            bench.pipeline(scale.batch_events),
                        );
                        let chunks = bench.stream(scale.windows, scale.events_per_window, 42);
                        drive(&engine, chunks, variant, scale.batch_events, StreamSide::Left);
                        engine.results().len()
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_pipelines);
criterion_main!(benches);
