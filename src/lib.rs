//! StreamBox-TZ in Rust: secure stream analytics at the edge with a
//! (simulated) ARM TrustZone TEE.
//!
//! This crate is the public façade of the workspace: it re-exports the
//! pieces an application developer uses to declare and run pipelines, the
//! cloud-side verification API, and — behind module paths — the substrates
//! (simulated TrustZone platform, uArray memory manager, trusted primitives,
//! crypto, workloads, baselines) for users who want to build on them
//! directly.
//!
//! # Quick start
//!
//! ```
//! use streambox_tz::prelude::*;
//!
//! // Declare a pipeline: 1-second windows, per-key sums, 500 ms target.
//! let pipeline = Pipeline::new("quickstart")
//!     .then(Operator::SumByKey)
//!     .target_delay_ms(500)
//!     .batch_events(5_000);
//!
//! // Run it on a simulated 4-core TrustZone edge platform.
//! let engine = Engine::new(EngineConfig::for_variant(EngineVariant::Sbt, 4), pipeline);
//!
//! // Stream one window of synthetic telemetry through an encrypted link.
//! let chunks = synthetic_stream(1, 20_000, 64, 7);
//! let mut generator = Generator::new(
//!     GeneratorConfig { batch_events: 5_000 },
//!     Channel::encrypted_demo(),
//!     chunks,
//! );
//! while let Some(offer) = generator.next_offer() {
//!     match offer {
//!         Offer::Batch(batch) => { engine.ingest(&batch).unwrap(); }
//!         Offer::Watermark(wm) => engine.advance_watermark(wm).unwrap(),
//!     }
//! }
//! assert_eq!(engine.results().len(), 1);
//!
//! // The cloud verifier replays the audit log and attests correctness.
//! let records: Vec<_> = engine
//!     .drain_audit_segments()
//!     .iter()
//!     .flat_map(|s| decompress_records(&s.compressed).unwrap())
//!     .collect();
//! let report = Verifier::new(engine.pipeline().spec()).replay(&records);
//! assert!(report.is_correct());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use sbt_attest as attest;
pub use sbt_baselines as baselines;
pub use sbt_crypto as crypto;
pub use sbt_dataplane as dataplane;
pub use sbt_engine as engine;
pub use sbt_primitives as primitives;
pub use sbt_server as server;
pub use sbt_telemetry as telemetry;
pub use sbt_types as types;
pub use sbt_tz as tz;
pub use sbt_uarray as uarray;
pub use sbt_workloads as workloads;

/// Everything needed to declare, run and verify a pipeline — or to serve
/// many of them multi-tenant over one shared TEE.
pub mod prelude {
    pub use sbt_attest::{
        decompress_records, verify_tenant_trail, verify_tenant_trail_parallel, DepartureReason,
        PipelineSpec, VerificationReport, Verifier, VerifyPool,
    };
    pub use sbt_crypto::{KeySet, MasterSecret, TenantKeychain, VerifierKeySet};
    pub use sbt_dataplane::EgressMessage;
    pub use sbt_engine::{
        CycleCost, Engine, EngineConfig, EngineVariant, Executor, IngestStatus, Operator, Pipeline,
        StreamSide, TaskSet, WindowTicket,
    };
    pub use sbt_server::{
        AdmissionError, DepartureReport, DrrAccounting, LifecycleError, Scheduler, ServeReport,
        ServerConfig, StreamServer, TenantConfig, TenantStream,
    };
    pub use sbt_telemetry::{
        FlightDump, FlightReason, LatencyKind, MetricsRegistry, SpanKind, TelemetrySnapshot,
        TenantLatencyRow,
    };
    pub use sbt_types::{Duration, Event, EventTime, PowerEvent, TenantId, Watermark, WindowSpec};
    pub use sbt_workloads::datasets::{
        intel_lab_stream, multi_tenant_streams, power_grid_stream, synthetic_stream, taxi_stream,
    };
    pub use sbt_workloads::generator::{Generator, GeneratorConfig, Offer};
    pub use sbt_workloads::transport::{Channel, ChannelConfig, WireFormat};
}
