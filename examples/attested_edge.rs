//! End-to-end attestation: run a pipeline on the edge, upload the compressed
//! audit log, and replay it on the cloud verifier — first for an honest run,
//! then for a tampered log, showing how correctness and freshness violations
//! are surfaced (§7).
//!
//! Run with `cargo run --release --example attested_edge`.

use streambox_tz::attest::record::AuditRecord;
use streambox_tz::attest::Violation;
use streambox_tz::prelude::*;

fn run_edge() -> (Vec<AuditRecord>, PipelineSpec, usize) {
    let pipeline = Pipeline::new("attested-winsum")
        .then(Operator::WindowSum)
        .target_delay_ms(10_000)
        .batch_events(10_000);
    let engine = Engine::new(EngineConfig::for_variant(EngineVariant::Sbt, 4), pipeline);
    let chunks = intel_lab_stream(3, 50_000, 11);
    let mut generator =
        Generator::new(GeneratorConfig { batch_events: 10_000 }, Channel::encrypted_demo(), chunks);
    while let Some(offer) = generator.next_offer() {
        match offer {
            Offer::Batch(batch) => {
                engine.ingest(&batch).expect("ingest");
            }
            Offer::Watermark(wm) => engine.advance_watermark(wm).expect("watermark"),
        }
    }
    let segments = engine.drain_audit_segments();
    // The audit segments are signed inside the TEE; the cloud checks the
    // signatures before replaying.
    let signing = engine.data_plane().cloud_keys().2;
    let mut records = Vec::new();
    let mut compressed = 0usize;
    let mut raw = 0usize;
    for segment in &segments {
        assert!(segment.verify(&signing), "audit segment signature must verify");
        compressed += segment.compressed.len();
        raw += segment.raw_bytes;
        records.extend(decompress_records(&segment.compressed).expect("segment decodes"));
    }
    println!(
        "edge produced {} audit records in {} segments ({} B raw -> {} B compressed, {:.1}x)",
        records.len(),
        segments.len(),
        raw,
        compressed,
        raw as f64 / compressed.max(1) as f64
    );
    (records, engine.pipeline().spec(), engine.results().len())
}

fn main() {
    let (records, spec, results) = run_edge();
    println!("edge externalized {results} window results\n");

    // Honest replay.
    let verifier = Verifier::new(spec.clone());
    let report = verifier.replay(&records);
    println!(
        "honest log:    correct = {}, results attested = {}, max delay = {} ms, misleading hints = {}",
        report.is_correct(),
        report.egressed,
        report.freshness.max_delay_ms(),
        report.misleading_hints
    );
    assert!(report.is_correct());

    // Attack 1: the compromised control plane silently drops a window's
    // processing (remove one windowing record and everything derived from it
    // — here just the windowing record suffices for detection).
    let mut tampered: Vec<AuditRecord> = records.clone();
    if let Some(pos) = tampered.iter().position(|r| matches!(r, AuditRecord::Windowing { .. })) {
        tampered.remove(pos);
    }
    let report = verifier.replay(&tampered);
    let dropped_data_detected =
        report.violations.iter().any(|v| matches!(v, Violation::UnwindowedIngress(_)));
    println!(
        "dropped data:  correct = {}, violations = {} (unwindowed ingress detected: {})",
        report.is_correct(),
        report.violations.len(),
        dropped_data_detected
    );
    assert!(dropped_data_detected);

    // Attack 2: results delayed far beyond the freshness target.
    let mut stale = records.clone();
    for r in &mut stale {
        if let AuditRecord::Egress { ts_ms, .. } = r {
            *ts_ms += 120_000;
        }
    }
    let strict = Verifier::new(PipelineSpec::new(&spec.name, spec.stages.clone(), 1_000));
    let report = strict.replay(&stale);
    let stale_detected =
        report.violations.iter().any(|v| matches!(v, Violation::StaleResult { .. }));
    println!(
        "stale results: correct = {}, stale-result violations detected: {}",
        report.is_correct(),
        stale_detected
    );
    assert!(stale_detected);
}
