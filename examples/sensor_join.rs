//! Temporal join of two sensor streams: correlate, within each 1-second
//! window, readings from two different sensor fleets that observed the same
//! asset (same key), as an industrial-monitoring scenario would (§1's
//! predictive-maintenance motivation; the Join benchmark of §9.2).
//!
//! Run with `cargo run --release --example sensor_join`.

use streambox_tz::prelude::*;

fn main() {
    let pipeline = Pipeline::new("vibration-x-temperature")
        .then(Operator::TempJoin)
        .target_delay_ms(250)
        .batch_events(10_000);
    let engine = Engine::new(EngineConfig::for_variant(EngineVariant::Sbt, 8), pipeline);

    // Two fleets reporting on the same 2 000 machine ids: a vibration stream
    // and a temperature stream, 50 K events per second each.
    let vibration = synthetic_stream(3, 50_000, 2_000, 500);
    let temperature = synthetic_stream(3, 50_000, 2_000, 501);

    // Interleave the two sides window by window so both watermarks advance
    // together (the engine joins on the minimum watermark).
    for (left, right) in vibration.into_iter().zip(temperature) {
        for (side, chunk) in [(StreamSide::Left, left), (StreamSide::Right, right)] {
            let mut generator = Generator::new(
                GeneratorConfig { batch_events: 10_000 },
                Channel::encrypted_demo(),
                vec![chunk],
            );
            while let Some(offer) = generator.next_offer() {
                match offer {
                    Offer::Batch(batch) => {
                        engine.ingest_on(&batch, side).expect("ingest");
                    }
                    Offer::Watermark(wm) => {
                        engine.advance_watermark_on(wm, side).expect("watermark")
                    }
                }
            }
        }
    }

    let (key, nonce, signing) = engine.data_plane().cloud_keys();
    for (w, msg) in engine.results().iter().enumerate() {
        let plain = msg.open(&key, &nonce, &signing).expect("signature verifies");
        // Joined pairs are uploaded as (key: u32, packed values: u64).
        let pairs = plain.len() / 12;
        println!("window {w}: {pairs} correlated (vibration, temperature) readings");
    }

    let m = engine.metrics();
    println!(
        "\njoined {} events total at {:.2} M events/s, avg delay {:.1} ms, peak TEE memory {:.1} MB",
        m.events_ingested,
        m.events_per_sec() / 1e6,
        m.avg_delay_ms(),
        m.peak_memory_bytes as f64 / 1e6
    );
}
