//! Quick start: declare a per-key aggregation pipeline, run it on the
//! simulated TrustZone edge platform, and read the results back as the
//! cloud consumer would.
//!
//! Run with `cargo run --release --example quickstart`.

use streambox_tz::prelude::*;

fn main() {
    // 1. Declare the pipeline (Figure 2(c) style): 1-second event-time
    //    windows, per-key sum/count aggregation, 500 ms freshness target.
    let pipeline = Pipeline::new("quickstart")
        .fixed_window(Duration::from_secs(1))
        .then(Operator::SumByKey)
        .target_delay_ms(500)
        .batch_events(10_000);

    // 2. Create the engine on a simulated 4-core edge board with TrustZone.
    //    The full StreamBox-TZ variant ingests encrypted data over trusted IO.
    let engine = Engine::new(EngineConfig::for_variant(EngineVariant::Sbt, 4), pipeline);

    // 3. Stream three windows of synthetic telemetry (50 K events each, 64
    //    sensor keys) over an encrypted source→edge link.
    let chunks = synthetic_stream(3, 50_000, 64, 2024);
    let mut generator =
        Generator::new(GeneratorConfig { batch_events: 10_000 }, Channel::encrypted_demo(), chunks);
    while let Some(offer) = generator.next_offer() {
        match offer {
            Offer::Batch(batch) => {
                engine.ingest(&batch).expect("ingest");
            }
            Offer::Watermark(wm) => engine.advance_watermark(wm).expect("watermark"),
        }
    }

    // 4. The cloud consumer decrypts and verifies each egressed result.
    let (key, nonce, signing) = engine.data_plane().cloud_keys();
    println!("windows completed: {}", engine.results().len());
    for (i, msg) in engine.results().iter().enumerate() {
        let plain = msg.open(&key, &nonce, &signing).expect("signature verifies");
        let aggregates = plain.len() / 20; // key(4) + sum(8) + count(8)
        let first_key = u32::from_le_bytes(plain[0..4].try_into().unwrap());
        let first_sum = u64::from_le_bytes(plain[4..12].try_into().unwrap());
        println!("window {i}: {aggregates} keys, e.g. key {first_key} -> sum {first_sum}");
    }

    // 5. Engine-side metrics: throughput, delay, TEE memory.
    let m = engine.metrics();
    println!(
        "throughput: {:.2} M events/s ({:.1} MB/s), avg delay {:.1} ms, peak TEE memory {:.1} MB",
        m.events_per_sec() / 1e6,
        m.mb_per_sec(),
        m.avg_delay_ms(),
        m.peak_memory_bytes as f64 / 1e6
    );
}
