//! Power-grid load analysis: the paper's motivating scenario (§2.2) and its
//! Power benchmark. Smart plugs across houses report power samples; the edge
//! groups them per (house, plug) each second and reports per-plug average
//! loads, from which the cloud derives which houses have the most high-power
//! plugs.
//!
//! Run with `cargo run --release --example power_grid`.

use std::collections::HashMap;
use streambox_tz::prelude::*;

fn main() {
    // Pipeline: 1-second windows, per-(house,plug) average power, 600 ms
    // target delay. The 16-byte power events are projected to the generic
    // layout inside the TEE (key = house<<16 | plug).
    let pipeline = Pipeline::new("power-grid")
        .then(Operator::AvgPerKey)
        .target_delay_ms(600)
        .batch_events(20_000);
    let engine = Engine::new(EngineConfig::for_variant(EngineVariant::Sbt, 8), pipeline);

    // 40 houses with 20 plugs each, 100 K samples per second, 4 seconds.
    let chunks = power_grid_stream(4, 100_000, 40, 20, 7);
    let mut generator =
        Generator::new(GeneratorConfig { batch_events: 20_000 }, Channel::encrypted_demo(), chunks);
    while let Some(offer) = generator.next_offer() {
        match offer {
            Offer::Batch(batch) => {
                engine.ingest(&batch).expect("ingest");
            }
            Offer::Watermark(wm) => engine.advance_watermark(wm).expect("watermark"),
        }
    }

    // Cloud side: decrypt per-plug aggregates and find, per window, the
    // houses with the most plugs above the global average (the paper's
    // Power query).
    let (key, nonce, signing) = engine.data_plane().cloud_keys();
    for (w, msg) in engine.results().iter().enumerate() {
        let plain = msg.open(&key, &nonce, &signing).expect("signature verifies");
        let plugs: Vec<(u32, u64, u64)> = plain
            .chunks_exact(20)
            .map(|c| {
                (
                    u32::from_le_bytes(c[0..4].try_into().unwrap()),
                    u64::from_le_bytes(c[4..12].try_into().unwrap()),
                    u64::from_le_bytes(c[12..20].try_into().unwrap()),
                )
            })
            .collect();
        let global_avg: f64 = {
            let (sum, cnt) =
                plugs.iter().fold((0u64, 0u64), |(s, c), (_, ps, pc)| (s + ps, c + pc));
            sum as f64 / cnt.max(1) as f64
        };
        let mut high_per_house: HashMap<u32, u32> = HashMap::new();
        for (packed_key, sum, cnt) in &plugs {
            let house = packed_key >> 16;
            let plug_avg = *sum as f64 / (*cnt).max(1) as f64;
            if plug_avg > global_avg {
                *high_per_house.entry(house).or_default() += 1;
            }
        }
        let mut ranked: Vec<(u32, u32)> = high_per_house.into_iter().collect();
        ranked.sort_by_key(|(house, n)| (std::cmp::Reverse(*n), *house));
        let top: Vec<String> =
            ranked.iter().take(3).map(|(h, n)| format!("house {h} ({n} plugs)")).collect();
        println!(
            "window {w}: {} plugs reporting, global avg {:.1} W, most high-power: {}",
            plugs.len(),
            global_avg,
            top.join(", ")
        );
    }

    let m = engine.metrics();
    println!(
        "\nprocessed {} power samples at {:.2} M events/s, peak TEE memory {:.1} MB",
        m.events_ingested,
        m.events_per_sec() / 1e6,
        m.peak_memory_bytes as f64 / 1e6
    );
}
