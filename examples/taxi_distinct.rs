//! Counting unique taxis: the Distinct benchmark over a taxi-trip-like
//! stream with ~11 K distinct taxi ids (§9.2). Each second, the edge reports
//! the set of distinct taxis observed, and only that compact result leaves
//! the TEE.
//!
//! Run with `cargo run --release --example taxi_distinct`.

use streambox_tz::prelude::*;

fn main() {
    let pipeline = Pipeline::new("taxi-distinct")
        .then(Operator::Distinct)
        .target_delay_ms(200)
        .batch_events(25_000);
    let engine = Engine::new(EngineConfig::for_variant(EngineVariant::Sbt, 8), pipeline);

    // 5 windows of 200 K trip events each, skewed over ~11 K taxi ids.
    let chunks = taxi_stream(5, 200_000, 99);
    let mut generator =
        Generator::new(GeneratorConfig { batch_events: 25_000 }, Channel::encrypted_demo(), chunks);
    while let Some(offer) = generator.next_offer() {
        match offer {
            Offer::Batch(batch) => {
                if let Ok(IngestStatus::Backpressure) = engine.ingest(&batch) {
                    // A real deployment would slow the source down here.
                    eprintln!("(backpressure signalled)");
                }
            }
            Offer::Watermark(wm) => engine.advance_watermark(wm).expect("watermark"),
        }
    }

    let (key, nonce, signing) = engine.data_plane().cloud_keys();
    for (w, msg) in engine.results().iter().enumerate() {
        let plain = msg.open(&key, &nonce, &signing).expect("signature verifies");
        let distinct = plain.len() / 8; // one u64 per distinct taxi id
        println!("window {w}: {distinct} distinct taxis, {} B uploaded", msg.ciphertext.len());
    }

    let m = engine.metrics();
    println!(
        "\nthroughput {:.2} M events/s ({:.1} MB/s), avg output delay {:.1} ms",
        m.events_per_sec() / 1e6,
        m.mb_per_sec(),
        m.avg_delay_ms()
    );
}
